"""Quickstart: two trusted cells, one untrusted cloud.

Creates Alice's and Bob's cells, stores a private note and a photo with
a sticky usage policy, shares the photo through the untrusted cloud,
and shows the recipient cell enforcing the policy (use budget, owner
notification) while the cloud sees only ciphertext.

Run:  python examples/quickstart.py
"""

from repro.core import TrustedCell
from repro.errors import AccessDenied
from repro.hardware import SMARTPHONE
from repro.infrastructure import CloudProvider, CuriousAdversary
from repro.policy import Grant, Obligation, UsagePolicy
from repro.policy.ucon import OBLIGATION_NOTIFY_OWNER, RIGHT_READ
from repro.sharing import SharingPeer, introduce_cells
from repro.sim import World


def main() -> None:
    # One simulated world; an honest-but-curious cloud records all it sees.
    world = World(seed=7)
    adversary = CuriousAdversary()
    cloud = CloudProvider(world, adversary)

    # Two trusted cells (personal data servers on secure hardware).
    alice_cell = TrustedCell(world, "alice-phone", SMARTPHONE)
    bob_cell = TrustedCell(world, "bob-phone", SMARTPHONE)
    alice_cell.register_user("alice", "1234")
    bob_cell.register_user("bob", "5678")
    introduce_cells(alice_cell, bob_cell)  # out-of-band enrollment

    # Alice stores a private note: default policy is owner-only.
    alice = alice_cell.login("alice", "1234")
    alice_cell.store_object(alice, "note", b"dentist on tuesday", kind="note")
    print("alice reads her note:", alice_cell.read_object(alice, "note"))

    # ... and a photo governed by a sticky UCON policy: Bob may read it
    # twice, and Alice is notified on every access.
    photo_policy = UsagePolicy(
        owner="alice",
        grants=(Grant(rights=(RIGHT_READ,), subjects=("bob",)),),
        obligations=(Obligation(OBLIGATION_NOTIFY_OWNER),),
        max_uses=2,
    )
    alice_cell.store_object(
        alice, "photo", b"jpeg:sunset", policy=photo_policy, kind="photo"
    )

    # Share: keys are wrapped for Bob's cell, the envelope goes to the
    # encrypted vault, the offer to Bob's cloud mailbox - all ciphertext.
    alice_peer = SharingPeer(alice_cell, cloud)
    bob_peer = SharingPeer(bob_cell, cloud)
    alice_peer.share_object(
        alice, "photo", bob_cell, Grant(rights=(RIGHT_READ,), subjects=("bob",))
    )
    print("bob imports:", bob_peer.accept_shares())

    # Bob's *own* cell enforces Alice's policy for Bob.
    bob = bob_cell.login("bob", "5678")
    print("bob reads photo:", bob_cell.read_object(bob, "photo"))
    print("bob reads photo:", bob_cell.read_object(bob, "photo"))
    try:
        bob_cell.read_object(bob, "photo")
    except AccessDenied as denied:
        print("third read denied:", denied)

    print("owner notifications queued on bob's cell:", len(bob_cell.outbox))
    print("cloud saw", adversary.stats.bytes_observed, "bytes,",
          adversary.stats.plaintext_bytes_seen, "of them plaintext")


if __name__ == "__main__":
    main()
