"""Pay-As-You-Drive: the GPS tracker that keeps your trips to itself.

A week of driving accumulates inside the car's sensor-class trusted
cell. The government receives only a signed road-pricing fee; the
insurer only signed aggregates (distance, night fraction, premium).
Both verify the meter's signature; neither ever sees a coordinate.

Run:  python examples/payd_insurance.py
"""

from repro.apps import PaydBox
from repro.sim import World
from repro.workloads import CityMap


def main() -> None:
    world = World(seed=5)
    city = CityMap(width=12, height=12)
    box = PaydBox(world, "alice", city, seed=5)

    total_trips = 0
    for day in range(7):
        total_trips += box.record_day(day)
    print(f"one week: {total_trips} trips recorded inside the box")

    fee = box.road_pricing_statement()
    insurer = box.insurer_statement()
    print("government receives :", PaydBox.statement_body(fee))
    print("insurer receives    :", PaydBox.statement_body(insurer))
    print("signatures verify   :",
          fee.verify(box.cell.principal.verify_key)
          and insurer.verify(box.cell.principal.verify_key))

    box.assert_no_trace_leak(fee)
    box.assert_no_trace_leak(insurer)
    print("no raw GPS point appears in either statement")

    # The raw trace is still there - for the owner, inside the box.
    session = box.cell.login("alice", "factory-pin")
    from repro.store import Eq, Query

    stored = box.cell.query_metadata(
        session, Query("objects", where=Eq("kind", "gps-trace"))
    )
    print(f"{len(stored)} raw traces remain sealed in the box "
          f"(query plan: {stored.plan})")


if __name__ == "__main__":
    main()
