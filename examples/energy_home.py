"""The motivation scenario: Alice & Bob's instrumented home.

Wires the Linky-style meter to the home-gateway trusted cell, then
shows each stakeholder exactly what the granularity policies let them
see; demonstrates why those granularities matter by running the NILM
attack on each view; and finishes with the energy butler's monthly
bill comparison.

Run:  python examples/energy_home.py
"""

import random

from repro.apps import HomeMetering, simulate_household_month
from repro.attacks import appliance_detection_f1
from repro.errors import AccessDenied
from repro.sim import World
from repro.store import GRANULARITY_15_MIN
from repro.workloads.energy import STANDARD_APPLIANCES

RATED = {appliance.name: appliance.power_watts
         for appliance in STANDARD_APPLIANCES}


def main() -> None:
    world = World(seed=42)
    home = HomeMetering.build(world, "maison", members=("alice", "bob"),
                              seed=42, sample_period=1)
    print("metering one day at 1 Hz ...")
    trace = home.meter_day(0)
    print(f"  {len(trace.series)} readings, "
          f"{trace.energy_kwh():.1f} kWh, {len(trace.events)} appliance runs")

    # -- who sees what -------------------------------------------------------
    buckets = home.household_view("alice")
    print(f"alice (15-min view): {len(buckets)} buckets, "
          f"evening mean {buckets[76].mean:.0f} W")
    try:
        session = home.gateway.login("alice", "pin-alice")
        home.gateway.read_series(session, "power", 1)
    except AccessDenied as denied:
        print("alice asking for the raw 1s feed:", denied)

    daily = home.game_view()
    print(f"social game (daily view): day-0 total "
          f"{daily[0].sum / 3.6e6:.1f} kWh")
    payload, signature = home.certified_monthly_feed()
    print("utility verifies certified monthly feed:",
          home.verify_certified_feed(payload, signature))

    # -- why the granularities matter: the NILM attack ------------------------
    for label, granularity in (("1 s", 1), ("15 min", GRANULARITY_15_MIN)):
        score = appliance_detection_f1(trace, granularity, RATED)
        print(f"NILM at {label:>6}: appliance-detection F1 = {score.f1:.2f}")

    # -- the energy butler -----------------------------------------------------
    result = simulate_household_month(seed=42, days=30)
    print(f"butler: bill {result.baseline_bill:.2f} -> {result.butler_bill:.2f} "
          f"({result.saving_fraction * 100:.0f}% saving; paper claims 30%)")


if __name__ == "__main__":
    main()
