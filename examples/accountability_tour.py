"""Accountability end to end: notifications, audit trails, defaults.

Alice's cell adopts a citizen-association policy pack (privacy by
default), shares a medical scan with her doctor under the pack's
notify-and-budget template, and then — after the doctor's cell enforced
the policy — receives both the access notifications and the doctor's
encrypted audit trail, verifying the hash chain herself.

Run:  python examples/accountability_tour.py
"""

from repro.core import TrustedCell
from repro.errors import AccessDenied
from repro.hardware import SMARTPHONE
from repro.infrastructure import CloudProvider
from repro.policy import (
    Grant,
    PackPublisher,
    privacy_by_default_templates,
)
from repro.policy.ucon import RIGHT_READ
from repro.sharing import SharingPeer, introduce_cells
from repro.sim import World
from repro.sync import AccountabilityService


def main() -> None:
    world = World(seed=55)
    cloud = CloudProvider(world)
    alice_cell = TrustedCell(world, "alice-cell", SMARTPHONE)
    doctor_cell = TrustedCell(world, "doctor-cell", SMARTPHONE)
    alice_cell.register_user("alice", "pin")
    doctor_cell.register_user("dr-dupont", "pin")
    introduce_cells(alice_cell, doctor_cell)

    # -- defaults from a trusted third party -----------------------------------
    association = PackPublisher("citizens-league", seed=b"league-2012")
    pack = association.publish("privacy-by-default-v1",
                               privacy_by_default_templates())
    alice_cell.adopt_policy_pack(pack, association.verify_key)
    print(f"adopted policy pack {pack.name!r} from {pack.publisher!r}")

    # -- store under the pack's 'medical' template (notify + 3 uses) ------------
    alice = alice_cell.login("alice", "pin")
    alice_cell.store_object(alice, "mri-scan", b"dicom-bytes", kind="medical")

    # share with the doctor: grant rides on top of the template
    SharingPeer(alice_cell, cloud).share_object(
        alice, "mri-scan", doctor_cell,
        Grant(rights=(RIGHT_READ,), subjects=("dr-dupont",)),
    )
    SharingPeer(doctor_cell, cloud).accept_shares()

    # -- the doctor reads until the budget runs out ------------------------------
    doctor = doctor_cell.login("dr-dupont", "pin")
    reads = 0
    try:
        for _ in range(5):
            world.clock.advance(3600)
            doctor_cell.read_object(doctor, "mri-scan")
            reads += 1
    except AccessDenied as denied:
        print(f"doctor's read #{reads + 1} denied: {denied}")
    print(f"doctor read the scan {reads} times (template allows 3)")

    # -- accountability flows back to alice ---------------------------------------
    doctor_service = AccountabilityService(
        doctor_cell, cloud, owner_cell_of={"alice": "alice-cell"}
    )
    alice_service = AccountabilityService(alice_cell, cloud)
    delivered = doctor_service.flush_outbox()
    doctor_service.push_trail("mri-scan", "alice-cell")

    notifications = alice_service.fetch_notifications()
    print(f"alice received {len(notifications)} access notifications "
          f"(delivered {delivered}); first at t={notifications[0]['timestamp']}")
    trail = alice_service.fetch_trails()[0]
    print(f"audit trail from {trail.from_cell}: {len(trail.entries)} entries, "
          f"chain verified: {trail.chain_ok}")
    denied_entries = [e for e in trail.entries if not e.allowed]
    print(f"the trail also shows {len(denied_entries)} denied attempt(s) — "
          "the budget enforcement is itself accountable")


if __name__ == "__main__":
    main()
