"""The personal digital space: one view over all of Alice's cells.

Alice owns a home gateway, a phone, and a PAYD box. This tour builds
her federated digital space, classifies everything by the paper's
origin taxonomy (sensed / external / authored), searches across cells,
runs the self-care agent, and finishes with the device-loss drill:
escrow guardians + the encrypted vault bring a replacement phone back.

Run:  python examples/digital_space_tour.py
"""

import random

from repro.core import DigitalSpace, SelfCare, TrustedCell
from repro.hardware import HOME_GATEWAY, SMARTPHONE
from repro.infrastructure import CloudProvider
from repro.sim import World
from repro.sync import Guardian, VaultClient, enroll_guardians, recover_cell


def main() -> None:
    world = World(seed=33)
    cloud = CloudProvider(world)

    # -- alice's fleet ----------------------------------------------------------
    gateway = TrustedCell(world, "gateway", HOME_GATEWAY)
    phone = TrustedCell(world, "phone", SMARTPHONE)
    for cell in (gateway, phone):
        cell.register_user("alice", "pin")
    gateway_session = gateway.login("alice", "pin")
    phone_session = phone.login("alice", "pin")

    gateway.store_object(gateway_session, "payslip-jan", b"acme:3200",
                         kind="payslip", keywords="acme salary january")
    gateway.store_object(gateway_session, "power-archive", b"...",
                         kind="meter-trace", keywords="energy january archive")
    phone.store_object(phone_session, "photo-ski", b"jpeg",
                       kind="photo", keywords="ski holiday january family")
    phone.store_object(phone_session, "note-ideas", b"build a trusted cell",
                       kind="note", keywords="projects ideas")

    # -- the consistent view -------------------------------------------------------
    space = DigitalSpace("alice")
    space.attach(gateway_session)
    space.attach(phone_session)
    totals = space.totals()
    print(f"digital space: {totals['objects']} objects on "
          f"{totals['cells']} cells, by origin {totals['by_origin']}")
    for hit in space.search(["january"]):
        print(f"  search 'january' -> {hit.object_id} "
              f"({hit.origin}, on {hit.cell})")

    # -- self-care on the phone -----------------------------------------------------
    phone_vault = VaultClient(phone, cloud)
    phone_vault.push_all()
    phone_vault.install_fetcher()
    del phone._envelopes["photo-ski"]  # simulate local storage corruption
    diagnosis = SelfCare(phone).run_once()
    print(f"self-care: healthy={diagnosis.healthy}, "
          f"healed={diagnosis.healed_envelopes}")

    # -- losing the phone --------------------------------------------------------
    guardians = [
        Guardian(TrustedCell(world, f"guardian-{i}", SMARTPHONE))
        for i in range(3)
    ]
    enroll_guardians(phone, guardians, 2, "correct-horse", random.Random(1))
    phone.breach()  # stolen and destroyed
    print("phone lost; recovering from 2 of 3 guardians + the vault ...")
    new_phone, _ = recover_cell(
        world, "phone", SMARTPHONE, guardians[:2], "correct-horse", cloud
    )
    new_phone.register_user("alice", "new-pin")
    new_session = new_phone.login("alice", "new-pin")
    print("restored note:",
          new_phone.read_object(new_session, "note-ideas"))

    # the space accepts the replacement seamlessly (same principal)
    space.detach("phone")
    space.attach(new_session)
    print(f"space after recovery: {space.totals()['objects']} objects")


if __name__ == "__main__":
    main()
