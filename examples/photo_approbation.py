"""The introduction's photo scenario, end to end.

"Whenever you take a picture, your smart phone securely contacts the
personal services of all individuals in the frame of the picture, and
automatically blurs the face of those who request it."

Alice photographs Bob and Carol. Bob's cell has a standing blur rule,
Carol approves as-is; the integrated photo carries Bob blurred. Then
Alice shares it under footnote 6's policy — ten accesses, time-boxed,
owner notified — and Charlie reads it from an untrusted kiosk through
his portable cell, leaving no trace behind.

Run:  python examples/photo_approbation.py
"""

from repro.core import TrustedCell
from repro.errors import AccessDenied
from repro.hardware import SMART_TOKEN, SMARTPHONE
from repro.infrastructure import CloudProvider
from repro.policy import Grant, Obligation, TimeWindow, UsagePolicy
from repro.policy.ucon import OBLIGATION_NOTIFY_OWNER, RIGHT_READ
from repro.sharing import (
    ApprobationService,
    SharingPeer,
    always_approve,
    always_blur,
    integrate_with_approbation,
    introduce_cells,
)
from repro.sim import World
from repro.sync import UntrustedTerminal, VaultClient


def blur(payload: bytes, user: str) -> bytes:
    return payload + f"[{user}:blurred]".encode()


def main() -> None:
    world = World(seed=3)
    cloud = CloudProvider(world)
    alice_cell = TrustedCell(world, "alice-phone", SMARTPHONE)
    bob_cell = TrustedCell(world, "bob-phone", SMARTPHONE)
    carol_cell = TrustedCell(world, "carol-phone", SMARTPHONE)
    charlie_cell = TrustedCell(world, "charlie-token", SMART_TOKEN)
    alice_cell.register_user("alice", "pin")
    charlie_cell.register_user("charlie", "pin")
    introduce_cells(alice_cell, bob_cell, carol_cell, charlie_cell)

    # -- approbation: the frame contains Bob (blur me) and Carol (fine) --------
    final = integrate_with_approbation(
        alice_cell,
        alice_cell.login("alice", "pin"),
        "party-photo",
        b"jpeg:party",
        referenced={
            "bob": ApprobationService(bob_cell, always_blur),
            "carol": ApprobationService(carol_cell, always_approve),
        },
        transform_blur=blur,
    )
    print("integrated photo:", final)

    # -- footnote-6 sharing with Charlie ------------------------------------------
    alice = alice_cell.login("alice", "pin")
    envelope_payload = alice_cell.read_object(alice, "party-photo")
    policy = UsagePolicy(
        owner="alice",
        grants=(Grant(rights=(RIGHT_READ,), subjects=("charlie",)),),
        conditions=(TimeWindow(not_before=0, not_after=366 * 86400),),
        obligations=(Obligation(OBLIGATION_NOTIFY_OWNER),),
        max_uses=10,
    )
    alice_cell.store_object(alice, "party-photo", envelope_payload,
                            policy=policy, kind="photo")
    SharingPeer(alice_cell, cloud).share_object(
        alice, "party-photo", charlie_cell,
        Grant(rights=(RIGHT_READ,), subjects=("charlie",)),
    )
    charlie_peer = SharingPeer(charlie_cell, cloud)
    print("charlie imports:", charlie_peer.accept_shares())

    # -- the internet cafe --------------------------------------------------------
    kiosk = UntrustedTerminal("internet-cafe")
    kiosk.connect(charlie_cell.login("charlie", "pin"))
    reads = 0
    try:
        for _ in range(12):
            kiosk.display("party-photo")
            reads += 1
    except AccessDenied as denied:
        print(f"read #{reads + 1} denied: {denied}")
    kiosk.disconnect()
    print(f"charlie displayed the photo {reads} times (policy allows 10)")
    print("kiosk residue after disconnect:", kiosk.residue())
    print("owner-notification queue on charlie's cell:",
          len(charlie_cell.outbox))


if __name__ == "__main__":
    main()
