"""Shared commons: an epidemiology study over 200 households.

A public-health institute wants to cross-analyze disease and diet (the
paper's epidemiology example). Households opt in per purpose; their
cells participate in two ways, chosen by recipient trustworthiness:

* a *differentially private aggregate* (mean sugary-spending share),
  computed with masked summation plus distributed Gamma noise — the
  institute never sees an individual value;
* a *k-anonymized record release* for the trusted research registry.

Run:  python examples/community_survey.py
"""

import random

from repro.commons import (
    TRANSFORM_DP,
    TRANSFORM_KANON,
    AggregationNode,
    CommonsCoordinator,
    CommonsMember,
    GlobalQuery,
    is_k_anonymous,
    ncp,
)
from repro.workloads import assign_disease, generate_receipts, sweets_share


def main() -> None:
    rng = random.Random(11)
    members = []
    for index in range(200):
        disease = assign_disease(rng)
        receipts = generate_receipts(rng, days=60, disease=disease)
        members.append(
            CommonsMember(
                node=AggregationNode.standalone(f"home-{index}", rng),
                value=sweets_share(receipts),
                record={
                    "qi_age": rng.randint(18, 90),
                    "qi_zip": rng.randint(75000, 75019),
                    "disease": disease,
                },
                opted_in_purposes=(
                    {"epidemiology"} if rng.random() < 0.85 else set()
                ),
                online=rng.random() < 0.95,
            )
        )
    coordinator = CommonsCoordinator(members, rng)

    # -- DP aggregate for the (less trusted) open-data portal -----------------
    query = GlobalQuery("open-data-portal", "epidemiology", TRANSFORM_DP,
                        epsilon=1.0, scale=10_000)
    result = coordinator.run(query)
    true_total = sum(m.value for m in members
                     if "epidemiology" in m.opted_in_purposes and m.online)
    print(f"participants: {result.participants} "
          f"(opted out: {result.opted_out}, offline: {result.offline})")
    print(f"DP total sugary share: {result.value:.2f} "
          f"(true {true_total:.2f}, epsilon=1)")
    print(f"protocol: {result.aggregation.protocol}, "
          f"{result.aggregation.messages} messages, "
          f"{result.aggregation.bytes} bytes")

    # -- k-anonymized records for the trusted registry --------------------------
    release = coordinator.run(
        GlobalQuery("research-registry", "epidemiology", TRANSFORM_KANON, k=10)
    )
    originals = [dict(m.record) for m in members
                 if "epidemiology" in m.opted_in_purposes and m.online]
    print(f"released {len(release.records)} records, "
          f"10-anonymous: {is_k_anonymous(release.records, 10)}, "
          f"NCP loss: {ncp(release.records, originals, ['qi_age', 'qi_zip']):.3f}")

    # The study's finding survives the anonymization:
    by_disease: dict[str, list[float]] = {}
    for member in members:
        if "epidemiology" in member.opted_in_purposes and member.online:
            by_disease.setdefault(member.record["disease"], []).append(member.value)
    for disease in ("diabetes", "none"):
        values = by_disease.get(disease, [])
        mean = sum(values) / len(values) if values else float("nan")
        print(f"mean sugary share | {disease:<9}: {mean:.3f}")


if __name__ == "__main__":
    main()
