"""Identities, credentials and the trust registry.

The sharing requirement: "the user must get a proof of legitimacy for
the credentials exposed by the participants of a data exchange". We
model:

* :class:`Principal` — the public identity of a user or cell
  (signature-verification key + key-exchange element);
* :class:`Credential` — an attribute certificate ("role=insurer",
  "group=family") signed by an authority;
* :class:`CertificateAuthority` — an issuer (employer, hospital,
  citizen association, utility) whose verify key the registry knows;
* :class:`TrustRegistry` — each cell's view of (a) trusted authorities
  and (b) genuine trusted cells (standing in for the secure-hardware
  manufacturer's attestation service).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..crypto.signing import Signature, SigningKey, VerifyKey
from ..errors import ConfigurationError, CredentialError
from ..hardware.tee import AttestationQuote, verify_attestation


@dataclass(frozen=True)
class Principal:
    """Public identity of a user or cell."""

    principal_id: str
    verify_key: VerifyKey
    exchange_public: int

    def fingerprint(self) -> bytes:
        return self.verify_key.fingerprint()


@dataclass(frozen=True)
class Credential:
    """An attribute certificate: issuer vouches subject has attributes."""

    subject: str
    attributes: tuple[tuple[str, Any], ...]
    issuer: str
    not_before: int
    not_after: int
    signature: Signature

    @staticmethod
    def canonical(
        subject: str,
        attributes: tuple[tuple[str, Any], ...],
        issuer: str,
        not_before: int,
        not_after: int,
    ) -> bytes:
        body = {
            "subject": subject,
            "attributes": [list(pair) for pair in attributes],
            "issuer": issuer,
            "not_before": not_before,
            "not_after": not_after,
        }
        return b"credential|" + json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()

    def message(self) -> bytes:
        return self.canonical(
            self.subject, self.attributes, self.issuer, self.not_before, self.not_after
        )

    def attribute_dict(self) -> dict[str, Any]:
        return dict(self.attributes)


class CertificateAuthority:
    """An attribute issuer with its own signing key."""

    def __init__(self, name: str, seed: bytes) -> None:
        if not name:
            raise ConfigurationError("authority name must be non-empty")
        self.name = name
        self._signing_key = SigningKey.from_seed(b"authority|" + seed)

    @property
    def verify_key(self) -> VerifyKey:
        return self._signing_key.public_key()

    def issue(
        self,
        subject: str,
        attributes: dict[str, Any],
        not_before: int,
        not_after: int,
    ) -> Credential:
        """Issue a signed attribute certificate."""
        if not_after < not_before:
            raise ConfigurationError("credential validity window is inverted")
        pairs = tuple(sorted(attributes.items()))
        message = Credential.canonical(subject, pairs, self.name, not_before, not_after)
        return Credential(
            subject=subject,
            attributes=pairs,
            issuer=self.name,
            not_before=not_before,
            not_after=not_after,
            signature=self._signing_key.sign(message),
        )


class TrustRegistry:
    """What one cell trusts: authorities and genuine peer cells."""

    def __init__(self) -> None:
        self._authorities: dict[str, VerifyKey] = {}
        self._principals: dict[str, Principal] = {}

    # -- authorities ----------------------------------------------------------

    def trust_authority(self, name: str, verify_key: VerifyKey) -> None:
        self._authorities[name] = verify_key

    def verify_credential(self, credential: Credential, now: int) -> dict[str, Any]:
        """Validate a credential and return its attributes.

        Raises :class:`CredentialError` for unknown issuers, expired
        windows or bad signatures — never returns partial attributes.
        """
        issuer_key = self._authorities.get(credential.issuer)
        if issuer_key is None:
            raise CredentialError(f"unknown authority {credential.issuer!r}")
        if not credential.not_before <= now <= credential.not_after:
            raise CredentialError(
                f"credential for {credential.subject!r} outside validity window"
            )
        if not issuer_key.verify(credential.message(), credential.signature):
            raise CredentialError(
                f"credential signature for {credential.subject!r} is invalid"
            )
        return credential.attribute_dict()

    def verify_credentials(
        self, subject: str, credentials: list[Credential], now: int
    ) -> dict[str, Any]:
        """Merge attributes from several credentials for one subject.

        Credentials naming a different subject are rejected outright
        (presenting someone else's certificate is an attack, not a
        mistake to skip over).
        """
        attributes: dict[str, Any] = {}
        for credential in credentials:
            if credential.subject != subject:
                raise CredentialError(
                    f"credential subject {credential.subject!r} does not match "
                    f"{subject!r}"
                )
            attributes.update(self.verify_credential(credential, now))
        return attributes

    # -- principals / genuine cells ------------------------------------------

    def enroll_principal(self, principal: Principal) -> None:
        """Record a principal as a genuine trusted cell / known user."""
        self._principals[principal.principal_id] = principal

    def principal(self, principal_id: str) -> Principal:
        try:
            return self._principals[principal_id]
        except KeyError:
            raise CredentialError(f"unknown principal {principal_id!r}") from None

    def knows_principal(self, principal_id: str) -> bool:
        return principal_id in self._principals

    def check_attestation(
        self, principal_id: str, quote: AttestationQuote, nonce: bytes
    ) -> bool:
        """Verify a peer's attestation quote against its enrolled key."""
        principal = self.principal(principal_id)
        return verify_attestation(principal.verify_key, quote, nonce)
