"""Predefined aggregate views over a cell's data.

"None of this data leaves the trusted cell application unless it is
accessed via a predefined set of aggregate queries."

A :class:`AggregateView` is a named, owner-defined query whose *result*
(never the underlying rows) is released to subjects holding the
``aggregate`` right in the view's policy. The view definition is fixed
at registration: a recipient cannot smuggle a more revealing query
through the view mechanism, because the only thing they choose is the
view's name.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AccessDenied, ConfigurationError, NotFoundError, QueryError
from ..policy.ucon import RIGHT_AGGREGATE, UsagePolicy
from ..store.query import Query


@dataclass(frozen=True)
class AggregateView:
    """One predefined aggregate query plus its release policy."""

    name: str
    query: Query
    policy: UsagePolicy

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("view name must be non-empty")
        if not self.query.aggregates:
            raise QueryError(
                f"view {self.name!r} must be an aggregate query "
                "(row-level release is what views exist to prevent)"
            )
        if self.query.project is not None:
            raise QueryError(f"view {self.name!r} cannot project raw fields")


class ViewRegistry:
    """The cell's predefined-view table (mixed into TrustedCell)."""

    def __init__(self) -> None:
        self._views: dict[str, AggregateView] = {}

    def register_view(self, view: AggregateView) -> None:
        if view.name in self._views:
            raise ConfigurationError(f"view {view.name!r} already registered")
        self._views[view.name] = view

    def view(self, name: str) -> AggregateView:
        try:
            return self._views[name]
        except KeyError:
            raise NotFoundError(f"no view named {name!r}") from None

    def view_names(self) -> list[str]:
        return sorted(self._views)


def read_view(cell, session, name: str):
    """Evaluate a predefined view under the caller's session.

    Free function (rather than a method) so the view path visibly goes
    through the same audit/monitor conventions as object reads:
    evaluate policy, audit, run the fixed query, return only aggregate
    rows.
    """
    view = cell.views.view(name)
    context = session.context()
    decision = view.policy.evaluate(
        RIGHT_AGGREGATE,
        context,
        prior_uses=cell.usage_state.uses(f"view:{name}", context.subject),
    )
    if not decision.allowed:
        cell.audit.append(
            cell.world.now, context.subject, f"view:{name}", "read-view",
            False, reason=decision.reason,
        )
        raise AccessDenied(
            f"view {name!r} denied for {context.subject!r}: {decision.reason}"
        )
    if view.policy.max_uses is not None:
        cell.usage_state.record_use(f"view:{name}", context.subject)
    cell._fulfil_obligations(decision, view.policy, f"view:{name}", context)
    cell.audit.append(
        cell.world.now, context.subject, f"view:{name}", "read-view", True
    )
    return cell.catalog.query(view.query)
