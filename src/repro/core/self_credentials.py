"""Self-computed certified credentials.

One of the paper's sharing-challenge ideas: "automatic production of
certified credentials safely computed on the individual's personal
digital space". Instead of asking the employer for an income
certificate, Alice's cell *computes* the fact from her pay slips —
inside the TEE, over data nobody else can see — and signs a statement
that reveals only the predicate's outcome ("monthly net income is at
least 2000"), never the underlying values.

A verifier trusts the statement iff (a) the signature matches an
enrolled genuine cell, and (b) the verifier trusts that genuine cells
evaluate honestly — which is exactly the trust the secure-hardware
premise provides. The statement embeds the evaluation timestamp so
verifiers can demand freshness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..crypto.signing import Signature
from ..errors import ConfigurationError, QueryError
from ..store.query import Aggregate, Query
from .cell import Session, TrustedCell
from .identity import TrustRegistry

_COMPARATORS = {
    ">=": lambda measured, bound: measured >= bound,
    "<=": lambda measured, bound: measured <= bound,
    ">": lambda measured, bound: measured > bound,
    "<": lambda measured, bound: measured < bound,
    "==": lambda measured, bound: measured == bound,
}


@dataclass(frozen=True)
class FactSpec:
    """A predicate over an aggregate of the cell's own data."""

    name: str  # e.g. "income-at-least-2000"
    collection: str
    aggregate: Aggregate
    comparator: str
    bound: float

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ConfigurationError(
                f"unknown comparator {self.comparator!r}; "
                f"known: {sorted(_COMPARATORS)}"
            )

    def describe(self) -> str:
        return (
            f"{self.aggregate.function}({self.aggregate.field}) over "
            f"{self.collection} {self.comparator} {self.bound}"
        )


@dataclass(frozen=True)
class SelfCredential:
    """A signed fact statement (reveals the outcome, not the data)."""

    cell: str
    subject: str
    fact: str
    description: str
    holds: bool
    evaluated_at: int
    signature: Signature

    @staticmethod
    def canonical(cell: str, subject: str, fact: str, description: str,
                  holds: bool, evaluated_at: int) -> bytes:
        body = {
            "cell": cell,
            "subject": subject,
            "fact": fact,
            "description": description,
            "holds": holds,
            "evaluated_at": evaluated_at,
        }
        return b"self-credential|" + json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()

    def message(self) -> bytes:
        return self.canonical(
            self.cell, self.subject, self.fact, self.description,
            self.holds, self.evaluated_at,
        )


def compute_credential(
    cell: TrustedCell, session: Session, spec: FactSpec
) -> SelfCredential:
    """Evaluate a fact over the cell's own data and sign the outcome.

    The aggregate runs through the regular catalog; only the boolean
    outcome enters the statement. The session subject becomes the
    credential's subject (the person the fact is about).
    """
    result = cell.catalog.query(
        Query(spec.collection, aggregates=[spec.aggregate])
    )
    column = f"{spec.aggregate.function}({spec.aggregate.field})"
    measured = result.rows[0].get(column)
    if measured is None or measured != measured:  # None or NaN
        raise QueryError(
            f"fact {spec.name!r}: aggregate produced no value"
        )
    holds = _COMPARATORS[spec.comparator](measured, spec.bound)
    description = spec.describe()
    message = SelfCredential.canonical(
        cell.name, session.subject, spec.name, description, holds,
        cell.world.now,
    )
    credential = SelfCredential(
        cell=cell.name,
        subject=session.subject,
        fact=spec.name,
        description=description,
        holds=holds,
        evaluated_at=cell.world.now,
        signature=cell.tee.keys.sign(message),
    )
    cell.audit.append(
        cell.world.now, session.subject, spec.collection,
        f"self-credential:{spec.name}", True, reason=f"holds={holds}",
    )
    return credential


def verify_self_credential(
    registry: TrustRegistry,
    credential: SelfCredential,
    now: int,
    max_age: int | None = None,
) -> bool:
    """The relying party's check: genuine cell + valid signature +
    freshness. Returns False rather than raising — a rejected
    credential is an everyday event for a verifier."""
    if not registry.knows_principal(credential.cell):
        return False
    if max_age is not None and now - credential.evaluated_at > max_age:
        return False
    principal = registry.principal(credential.cell)
    return principal.verify_key.verify(credential.message(), credential.signature)
