"""The paper's primary contribution: trusted cells and their identity
layer."""

from .cell import ObjectMetadata, Session, TrustedCell
from .digital_space import (
    ORIGIN_AUTHORED,
    ORIGIN_EXTERNAL,
    ORIGIN_SENSED,
    DigitalSpace,
    SpaceEntry,
)
from .identity import (
    CertificateAuthority,
    Credential,
    Principal,
    TrustRegistry,
)
from .ongoing import OngoingUse, open_stream
from .self_credentials import (
    FactSpec,
    SelfCredential,
    compute_credential,
    verify_self_credential,
)
from .selfcare import Diagnosis, SelfCare
from .views import AggregateView

__all__ = [
    "ObjectMetadata",
    "Session",
    "TrustedCell",
    "ORIGIN_AUTHORED",
    "ORIGIN_EXTERNAL",
    "ORIGIN_SENSED",
    "DigitalSpace",
    "SpaceEntry",
    "CertificateAuthority",
    "Credential",
    "Principal",
    "TrustRegistry",
    "Diagnosis",
    "SelfCare",
    "OngoingUse",
    "open_stream",
    "FactSpec",
    "SelfCredential",
    "compute_credential",
    "verify_self_credential",
    "AggregateView",
]
