"""Self-administration: self-tuning, self-diagnosis, self-healing.

"Whatever their complexity, trusted cells should also be designed to
support self-tuning, self-diagnosis and self-healing to minimize the
management burden put on the trusted cell owner."

The :class:`SelfCare` manager runs periodically on the cell's event
loop and performs three duties, each reported in a diagnosis record:

* **self-diagnosis** — verify the audit chain, check that every
  cataloged object has its envelope (locally or fetchable), report
  flash and secure-memory pressure;
* **self-healing** — compact the flash store when stale data passes a
  threshold; refetch missing envelopes through the installed vault
  fetcher;
* **self-tuning** — recommend (and optionally create) a hash index on
  any unindexed field that keeps appearing in equality queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, NotFoundError, TrustedCellsError
from ..policy.audit import AuditLog
from .cell import TrustedCell


@dataclass
class Diagnosis:
    """Outcome of one self-care pass."""

    timestamp: int
    audit_chain_ok: bool
    flash_used_fraction: float
    secure_memory_used_fraction: float
    missing_envelopes: list[str] = field(default_factory=list)
    healed_envelopes: list[str] = field(default_factory=list)
    compacted: bool = False
    index_recommendations: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return self.audit_chain_ok and not self.missing_envelopes


class SelfCare:
    """The cell's housekeeping agent."""

    def __init__(
        self,
        cell: TrustedCell,
        compact_threshold: float = 0.7,
        auto_tune: bool = False,
        query_count_threshold: int = 10,
    ) -> None:
        if not 0.0 < compact_threshold <= 1.0:
            raise ConfigurationError("compact threshold must be in (0, 1]")
        self.cell = cell
        self.compact_threshold = compact_threshold
        self.auto_tune = auto_tune
        self.query_count_threshold = query_count_threshold
        self.history: list[Diagnosis] = []
        self._eq_query_counts: dict[tuple[str, str], int] = {}
        self._handle = None

    # -- observation hook ----------------------------------------------------------

    def observe_equality_query(self, collection: str, field_name: str) -> None:
        """Called by callers (or a wrapper) when an Eq predicate ran."""
        key = (collection, field_name)
        self._eq_query_counts[key] = self._eq_query_counts.get(key, 0) + 1

    # -- one pass -------------------------------------------------------------------

    def run_once(self) -> Diagnosis:
        cell = self.cell
        # -- diagnosis ---------------------------------------------------------
        audit_ok = AuditLog.verify_chain(cell.audit.entries())
        flash = cell.flash
        cell.catalog.store.flush()  # measure what is actually on flash
        flash_used = cell.catalog.store.pages_used / flash.page_count
        secure = cell.tee.secure_memory
        secure_used = (
            secure.used_bytes / secure.capacity_bytes
            if secure.capacity_bytes
            else 0.0
        )
        missing: list[str] = []
        healed: list[str] = []
        for object_id in cell.catalog.collection("objects").record_ids():
            if object_id in cell._envelopes:
                continue
            try:
                cell.envelope_for(object_id)  # may refetch from the vault
                healed.append(object_id)
            except (NotFoundError, TrustedCellsError):
                missing.append(object_id)

        # -- healing: compaction under flash pressure ---------------------------
        compacted = False
        if flash_used >= self.compact_threshold:
            cell.catalog.store.compact()
            compacted = True

        # -- tuning -------------------------------------------------------------
        recommendations = []
        for (collection_name, field_name), count in sorted(
            self._eq_query_counts.items()
        ):
            if count < self.query_count_threshold:
                continue
            collection = cell.catalog.collection(collection_name)
            if field_name in collection.indexed_fields:
                continue
            recommendations.append(f"{collection_name}.{field_name}")
            if self.auto_tune:
                collection.create_hash_index(field_name)

        diagnosis = Diagnosis(
            timestamp=cell.world.now,
            audit_chain_ok=audit_ok,
            flash_used_fraction=flash_used,
            secure_memory_used_fraction=secure_used,
            missing_envelopes=missing,
            healed_envelopes=healed,
            compacted=compacted,
            index_recommendations=recommendations,
        )
        self.history.append(diagnosis)
        cell.audit.append(
            cell.world.now, cell.name, "-", "self-care",
            diagnosis.healthy,
            reason=(f"flash={flash_used:.0%} compacted={compacted} "
                    f"missing={len(missing)}"),
        )
        return diagnosis

    # -- scheduling ------------------------------------------------------------------

    def start(self, period: int = 86400) -> None:
        """Run one pass every ``period`` seconds on the event loop."""
        if self._handle is not None:
            raise ConfigurationError("self-care already started")
        self._handle = self.cell.world.loop.schedule_every(
            period, self.run_once, label=f"self-care {self.cell.name}"
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
