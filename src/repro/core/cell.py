"""The trusted cell: a personal data server on secure hardware.

A :class:`TrustedCell` composes the full stack the paper enumerates:

1. *acquire data and synchronize it with the user's digital space* —
   :meth:`store_object`, :meth:`append_sample`, plus :mod:`repro.sync`;
2. *extract metadata, index it and provide query facilities* — the
   embedded :class:`~repro.store.catalog.Catalog`;
3. *cryptographically protect data* — every object lives in a
   :class:`~repro.policy.sticky.DataEnvelope` under a per-object key
   confined to the TEE;
4. *enforce access and usage control rules* — the reference monitor in
   :meth:`read_object` / :meth:`read_series`: no code path returns
   plaintext without a policy decision;
5. *make all access and usage actions accountable* — every decision
   lands in the hash-chained :class:`~repro.policy.audit.AuditLog`;
6. *participate to computations distributed among trusted cells* —
   hooks used by :mod:`repro.commons`.

Even the cell owner authenticates and "only gets data according to her
privileges": sessions, not identities, access data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..crypto.keys import KeyRing
from ..crypto.primitives import sha256
from ..errors import (
    AccessDenied,
    AuthenticationError,
    ConfigurationError,
    NotFoundError,
    PolicyError,
)
from ..hardware.flash import NandFlash
from ..hardware.profiles import HardwareProfile
from ..hardware.tee import AttestationQuote, TrustedExecutionEnvironment
from ..policy.audit import AuditLog
from ..policy.conditions import AccessContext
from ..policy.sticky import DataEnvelope
from ..policy.ucon import (
    OBLIGATION_AUDIT,
    OBLIGATION_NOTIFY_OWNER,
    RIGHT_READ,
    Decision,
    UsagePolicy,
    private_policy,
)
from ..policy.usage_state import UsageState
from ..sim.world import World
from ..store.catalog import Catalog
from ..store.query import Query, QueryResult
from ..store.timeseries import TimeSeries
from .identity import Credential, Principal, TrustRegistry

# Simulated flash devices are sparse; cap the simulated page range so
# page-count bookkeeping stays cheap regardless of profile.flash_bytes.
_SIM_FLASH_BYTES = 16 * 1024 * 1024


@dataclass
class Session:
    """An authenticated session on one cell."""

    cell: "TrustedCell"
    subject: str
    attributes: dict[str, Any] = field(default_factory=dict)
    location: str | None = None
    purpose: str | None = None

    def context(self) -> AccessContext:
        """The access context for a request made *now*."""
        return AccessContext(
            subject=self.subject,
            timestamp=self.cell.world.now,
            attributes=dict(self.attributes),
            location=self.location,
            purpose=self.purpose,
        )


@dataclass
class ObjectMetadata:
    """Catalog view of one object (never contains the payload)."""

    object_id: str
    owner: str
    version: int
    kind: str
    size: int
    created_at: int
    keywords: str


class TrustedCell:
    """One personal data server on simulated secure hardware."""

    def __init__(
        self,
        world: World,
        name: str,
        profile: HardwareProfile,
        registry: TrustRegistry | None = None,
        key_ring: KeyRing | None = None,
    ) -> None:
        """``key_ring`` lets a replacement device be provisioned with a
        master secret recovered from escrow (see
        :mod:`repro.sync.recovery`); by default a fresh ring is
        generated from the world's seed stream."""
        if not name:
            raise ConfigurationError("cell name must be non-empty")
        self.world = world
        self.name = name
        self.profile = profile
        rng = world.rng(f"cell:{name}")
        self.tee = TrustedExecutionEnvironment(
            profile, key_ring if key_ring is not None else KeyRing.generate(rng)
        )
        flash_bytes = min(profile.flash_bytes, _SIM_FLASH_BYTES)
        self.flash = NandFlash(profile.flash, flash_bytes)
        self.catalog = Catalog(self.flash, profile)
        objects = self.catalog.collection("objects")
        objects.create_hash_index("kind")
        objects.create_ordered_index("created_at")
        self.audit = AuditLog(self.tee.keys.derive("audit"))
        self.usage_state = UsageState()
        self.registry = registry or TrustRegistry()
        # Local mass storage ("optional and potentially untrusted"):
        # holds only sealed envelopes, keyed by object id.
        self._envelopes: dict[str, DataEnvelope] = {}
        self._series: dict[str, TimeSeries] = {}
        self._series_policies: dict[str, dict[int, UsagePolicy]] = {}
        # Predefined aggregate views ("data leaves only via a
        # predefined set of aggregate queries").
        from .views import ViewRegistry

        self.views = ViewRegistry()
        # Adopted policy pack (defaults from a trusted third party).
        self._policy_pack = None
        # Obligation outputs awaiting delivery to data owners.
        self.outbox: list[dict[str, Any]] = []
        # Optional hook installed by the sync layer: fetch a missing
        # envelope from the user's encrypted cloud vault.
        self.envelope_fetcher: Callable[[str], DataEnvelope] | None = None

    # -- identity ------------------------------------------------------------

    @property
    def principal(self) -> Principal:
        """This cell's public identity."""
        keys = self.tee.keys
        return Principal(
            principal_id=self.name,
            verify_key=keys.verify_key,
            exchange_public=keys.exchange_public,
        )

    def attest(self, nonce: bytes) -> AttestationQuote:
        """Produce an attestation quote for a challenger's nonce."""
        return self.tee.attest(nonce)

    # -- local users and sessions ------------------------------------------------

    def register_user(self, user_id: str, pin: str) -> None:
        """Enroll a local user (e.g. Alice and Bob on the gateway)."""
        self.tee.store_secret(f"user:{user_id}", sha256(pin.encode()))

    def login(
        self,
        user_id: str,
        pin: str,
        credentials: list[Credential] | None = None,
        location: str | None = None,
        purpose: str | None = None,
    ) -> Session:
        """Authenticate a local user and open a session.

        Presented credentials are verified against the cell's trust
        registry; their attributes become the session's verified
        attributes.
        """
        stored = self.tee.load_secret(f"user:{user_id}")
        if stored is None or stored != sha256(pin.encode()):
            self.audit.append(
                self.world.now, user_id, "-", "login", False, reason="bad pin"
            )
            raise AuthenticationError(f"authentication failed for {user_id!r}")
        attributes = self.registry.verify_credentials(
            user_id, credentials or [], self.world.now
        )
        self.audit.append(self.world.now, user_id, "-", "login", True)
        return Session(
            cell=self,
            subject=user_id,
            attributes=attributes,
            location=location,
            purpose=purpose,
        )

    def session_for_peer(
        self,
        peer_id: str,
        credentials: list[Credential] | None = None,
        location: str | None = None,
        purpose: str | None = None,
    ) -> Session:
        """A session for a *remote* principal known to the registry.

        Used by the sharing protocol: the recipient cell evaluates the
        sticky policy under the recipient's identity. Requires the peer
        to be enrolled (i.e. its cell attested/was introduced).
        """
        if not self.registry.knows_principal(peer_id):
            raise AuthenticationError(f"unknown peer principal {peer_id!r}")
        attributes = self.registry.verify_credentials(
            peer_id, credentials or [], self.world.now
        )
        return Session(
            cell=self,
            subject=peer_id,
            attributes=attributes,
            location=location,
            purpose=purpose,
        )

    # -- object lifecycle -----------------------------------------------------------

    def store_object(
        self,
        session: Session,
        object_id: str,
        payload: bytes,
        policy: UsagePolicy | None = None,
        kind: str = "document",
        keywords: str = "",
    ) -> ObjectMetadata:
        """Seal and store a new object (or a new version of one).

        When no policy is given, the default comes from the adopted
        policy pack's template for ``kind`` (bound to the session
        subject), falling back to owner-only.
        """
        if policy is None:
            policy = self._default_policy(session.subject, kind)
        version = 1
        if self.catalog.collection("objects").contains(object_id):
            version = self.catalog.collection("objects").get(object_id)["version"] + 1
        key = self.tee.keys.object_key(object_id, version)
        envelope = DataEnvelope.create(key, object_id, version, payload, policy)
        self._envelopes[object_id] = envelope
        metadata = ObjectMetadata(
            object_id=object_id,
            owner=policy.owner,
            version=version,
            kind=kind,
            size=len(payload),
            created_at=self.world.now,
            keywords=keywords,
        )
        self.catalog.collection("objects").insert(
            object_id,
            {
                "owner": metadata.owner,
                "version": metadata.version,
                "kind": metadata.kind,
                "size": metadata.size,
                "created_at": metadata.created_at,
                "keywords": metadata.keywords,
            },
        )
        self.audit.append(
            self.world.now, session.subject, object_id, "store", True,
            reason=f"v{version}",
        )
        self.tee.charge_cpu(len(payload))
        return metadata

    def store_frames(
        self,
        session: Session,
        object_id: str,
        frames: list[bytes],
        policy: UsagePolicy | None = None,
        kind: str = "records",
        keywords: str = "",
    ) -> ObjectMetadata:
        """Seal and store a page's worth of record frames as one object.

        The frames (e.g. one flash page of encoded records) are packed
        and sealed in a single AEAD pass — 4 keyed HMACs for the whole
        bundle instead of 4 per frame — so outsourcing a day of 1 Hz
        samples costs HMACs per *page*, not per record. The sticky
        policy governs every frame in the bundle. The bundle behaves
        like any other object afterwards: it is pushed, fetched,
        version-anchored and policy-checked as one unit.
        """
        if policy is None:
            policy = self._default_policy(session.subject, kind)
        version = 1
        if self.catalog.collection("objects").contains(object_id):
            version = self.catalog.collection("objects").get(object_id)["version"] + 1
        key = self.tee.keys.object_key(object_id, version)
        envelope = DataEnvelope.create_bundle(
            key, object_id, version, frames, policy
        )
        self._envelopes[object_id] = envelope
        total_bytes = sum(len(frame) for frame in frames)
        metadata = ObjectMetadata(
            object_id=object_id,
            owner=policy.owner,
            version=version,
            kind=kind,
            size=total_bytes,
            created_at=self.world.now,
            keywords=keywords,
        )
        self.catalog.collection("objects").insert(
            object_id,
            {
                "owner": metadata.owner,
                "version": metadata.version,
                "kind": metadata.kind,
                "size": metadata.size,
                "created_at": metadata.created_at,
                "keywords": metadata.keywords,
            },
        )
        self.audit.append(
            self.world.now, session.subject, object_id, "store", True,
            reason=f"v{version} bundle[{len(frames)}]",
        )
        self.tee.charge_cpu(total_bytes)
        return metadata

    def adopt_policy_pack(self, pack, publisher_key) -> None:
        """Adopt a signed default-policy pack from a trusted publisher.

        Verification happens here: an unverifiable pack must never
        become the source of defaults. Adopting replaces any previous
        pack; it does not rewrite policies of already-stored objects.
        """
        from ..policy.presets import verify_pack

        verify_pack(pack, publisher_key)
        self._policy_pack = pack
        self.audit.append(
            self.world.now, self.name, "-", "adopt-policy-pack", True,
            reason=f"{pack.name} by {pack.publisher}",
        )

    def _default_policy(self, owner: str, kind: str) -> UsagePolicy:
        if self._policy_pack is not None:
            template = self._policy_pack.template_for(kind)
            if template is not None:
                from ..policy.presets import bind_template

                return bind_template(template, owner)
        return private_policy(owner)

    def object_metadata(self, object_id: str) -> ObjectMetadata:
        """Metadata lookup (no policy check: metadata stays in-cell)."""
        record = self.catalog.collection("objects").get(object_id)
        return ObjectMetadata(
            object_id=object_id,
            owner=record["owner"],
            version=record["version"],
            kind=record["kind"],
            size=record["size"],
            created_at=record["created_at"],
            keywords=record["keywords"],
        )

    def envelope_for(self, object_id: str) -> DataEnvelope:
        """The sealed envelope, from local mass storage or the vault."""
        envelope = self._envelopes.get(object_id)
        if envelope is not None:
            return envelope
        if self.envelope_fetcher is not None:
            envelope = self.envelope_fetcher(object_id)
            self._envelopes[object_id] = envelope
            return envelope
        raise NotFoundError(f"no envelope for {object_id!r} on {self.name!r}")

    def import_envelope(self, envelope: DataEnvelope, kind: str = "shared",
                        keywords: str = "") -> None:
        """Accept a sealed envelope from a peer (sharing protocol).

        Only metadata is derived here; the payload stays sealed until a
        policy-checked read.
        """
        self._envelopes[envelope.object_id] = envelope
        self.catalog.collection("objects").insert(
            envelope.object_id,
            {
                "owner": "",  # learned on first authorized open
                "version": envelope.version,
                "kind": kind,
                "size": envelope.size,
                "created_at": self.world.now,
                "keywords": keywords,
            },
        )

    def read_object(self, session: Session, object_id: str) -> bytes:
        """The reference monitor's read path.

        Opens the envelope inside the TEE, evaluates the sticky policy
        for the session's subject, fulfils obligations, updates
        mutability state, writes the audit trail — and only then
        releases plaintext. Denials raise :class:`AccessDenied`.
        """
        context = session.context()
        metadata = self.catalog.collection("objects").get(object_id)
        envelope = self.envelope_for(object_id)
        key = self.tee.keys.key_for(object_id, metadata["version"])
        payload, policy = envelope.open(key)
        self.tee.charge_cpu(len(payload))
        decision = policy.evaluate(
            RIGHT_READ,
            context,
            prior_uses=self.usage_state.uses(object_id, context.subject),
        )
        if not decision.allowed:
            self.audit.append(
                self.world.now, context.subject, object_id, "read", False,
                reason=decision.reason,
            )
            raise AccessDenied(
                f"read of {object_id!r} denied for {context.subject!r}: "
                f"{decision.reason}"
            )
        if policy.max_uses is not None:
            self.usage_state.record_use(object_id, context.subject)
        self._fulfil_obligations(decision, policy, object_id, context)
        self.audit.append(
            self.world.now, context.subject, object_id, "read", True
        )
        return payload

    def rights_on(self, session: Session, object_id: str) -> set[str]:
        """The rights the session's subject holds on an object."""
        metadata = self.catalog.collection("objects").get(object_id)
        envelope = self.envelope_for(object_id)
        key = self.tee.keys.key_for(object_id, metadata["version"])
        _, policy = envelope.open(key)
        return policy.rights_of(session.context())

    def _fulfil_obligations(
        self,
        decision: Decision,
        policy: UsagePolicy,
        object_id: str,
        context: AccessContext,
    ) -> None:
        """Execute each obligation *before* plaintext is released.

        An unfulfillable obligation must deny the access; here the two
        supported obligations always succeed locally (notification is
        queued durably in the outbox for delivery by the sync layer).
        """
        for obligation in decision.obligations:
            if obligation.kind == OBLIGATION_NOTIFY_OWNER:
                self.outbox.append(
                    {
                        "to": policy.owner,
                        "about": object_id,
                        "subject": context.subject,
                        "timestamp": context.timestamp,
                        "kind": "access-notification",
                    }
                )
            self.audit.append(
                context.timestamp,
                context.subject,
                object_id,
                f"obligation:{obligation.kind}",
                True,
            )

    # -- metadata queries ----------------------------------------------------------

    def query_metadata(self, session: Session, query: Query) -> QueryResult:
        """Query the metadata catalog (audited, but not policy-gated:
        local metadata is the session user's own index)."""
        result = self.catalog.query(query)
        self.audit.append(
            self.world.now, session.subject, query.collection, "query", True,
            reason=result.plan,
        )
        return result

    def register_view(self, view) -> None:
        """Register a predefined aggregate view (owner-side operation)."""
        self.views.register_view(view)

    def read_view(self, session: Session, name: str):
        """Evaluate a predefined aggregate view for a session."""
        from .views import read_view

        return read_view(self, session, name)

    # -- time series ------------------------------------------------------------------

    def register_series(
        self,
        name: str,
        policies: dict[int, UsagePolicy],
    ) -> None:
        """Declare a sensed time series and its per-granularity policies.

        ``policies`` maps a bucket width in seconds to the policy
        governing reads at that granularity — the scenario's "15 min
        aggregates for the household, daily statistics for the game,
        monthly for the utility" is exactly this map. Granularities
        without a policy are denied for everyone (fail closed).
        """
        if name in self._series:
            raise ConfigurationError(f"series {name!r} already registered")
        if not policies:
            raise ConfigurationError("a series needs at least one granularity policy")
        self._series[name] = TimeSeries(name)
        self._series_policies[name] = dict(policies)

    def append_sample(self, name: str, timestamp: int, value: float) -> None:
        """Data acquisition path (trusted source -> cell), no session:
        the sample never crosses a trust boundary here."""
        try:
            self._series[name].append(timestamp, value)
        except KeyError:
            raise NotFoundError(f"no series {name!r} on {self.name!r}") from None

    def series_length(self, name: str) -> int:
        try:
            return len(self._series[name])
        except KeyError:
            raise NotFoundError(f"no series {name!r} on {self.name!r}") from None

    def read_series(
        self,
        session: Session,
        name: str,
        granularity: int,
        start: int | None = None,
        end: int | None = None,
    ):
        """Policy-checked series read at one granularity.

        Returns raw ``(timestamp, value)`` pairs for granularity 1, and
        a list of :class:`~repro.store.timeseries.Bucket` otherwise.
        """
        series = self._series.get(name)
        if series is None:
            raise NotFoundError(f"no series {name!r} on {self.name!r}")
        policy = self._series_policies[name].get(granularity)
        context = session.context()
        if policy is None:
            self.audit.append(
                self.world.now, context.subject, name, f"read-series@{granularity}",
                False, reason="no policy at this granularity",
            )
            raise AccessDenied(
                f"series {name!r} has no policy at granularity {granularity}"
            )
        decision = policy.evaluate(
            RIGHT_READ,
            context,
            prior_uses=self.usage_state.uses(f"series:{name}@{granularity}",
                                             context.subject),
        )
        if not decision.allowed:
            self.audit.append(
                self.world.now, context.subject, name, f"read-series@{granularity}",
                False, reason=decision.reason,
            )
            raise AccessDenied(
                f"series read denied for {context.subject!r}: {decision.reason}"
            )
        if policy.max_uses is not None:
            self.usage_state.record_use(
                f"series:{name}@{granularity}", context.subject
            )
        self._fulfil_obligations(decision, policy, f"series:{name}", context)
        self.audit.append(
            self.world.now, context.subject, name, f"read-series@{granularity}", True
        )
        if start is None:
            start = series.start if len(series) else 0
        if end is None:
            end = (series.end + 1) if len(series) else 0
        self.tee.charge_cpu(len(series))
        if granularity <= 1:
            return series.window(start, end)
        windowed = TimeSeries(name)
        windowed.extend(series.window(start, end))
        return windowed.resample(granularity)

    def archive_series(
        self,
        session: Session,
        name: str,
        granularity: int,
        policy: UsagePolicy | None = None,
    ) -> ObjectMetadata:
        """Persist a series' aggregates as a sealed, queryable object.

        Series samples live in RAM; archiving turns one granularity
        into a durable object in the digital space (syncable, sharable,
        policy-protected like any other object). The archive's policy
        defaults to the policy registered for that granularity — the
        archived view must not be *more* visible than the live one.
        """
        series = self._series.get(name)
        if series is None:
            raise NotFoundError(f"no series {name!r} on {self.name!r}")
        effective = policy or self._series_policies[name].get(granularity)
        if effective is None:
            raise PolicyError(
                f"series {name!r} has no policy at granularity {granularity}; "
                "pass one explicitly to archive"
            )
        buckets = series.resample(granularity)
        payload = repr(
            [(bucket.start, bucket.count, round(bucket.sum, 6))
             for bucket in buckets]
        ).encode()
        return self.store_object(
            session,
            f"series-archive:{name}@{granularity}",
            payload,
            policy=effective,
            kind="series-archive",
            keywords=f"{name} archive granularity {granularity}",
        )

    def certify_aggregates(
        self, name: str, granularity: int
    ) -> tuple[bytes, "object"]:
        """Export a *certified* aggregate series (payload, signature).

        This is the trusted-source output of the motivation section:
        "a certified time series of readings ... for verification,
        billing and network operation". Consumers verify with the
        cell's public key; no session is involved because the output
        policy was fixed at registration time (the cell will only ever
        certify granularities that have a policy).
        """
        series = self._series.get(name)
        if series is None:
            raise NotFoundError(f"no series {name!r} on {self.name!r}")
        if granularity not in self._series_policies[name]:
            raise PolicyError(
                f"series {name!r} does not externalize granularity {granularity}"
            )
        buckets = series.resample(granularity)
        payload = repr(
            [(bucket.start, bucket.count, round(bucket.sum, 6)) for bucket in buckets]
        ).encode()
        message = f"certified|{self.name}|{name}|{granularity}|".encode() + payload
        signature = self.tee.keys.sign(message)
        self.audit.append(
            self.world.now, self.name, name, f"certify@{granularity}", True
        )
        return payload, signature

    # -- breach hook -------------------------------------------------------------

    def breach(self) -> dict[str, Any]:
        """Physical attack: the attacker gets the TEE loot plus every
        sealed envelope in local mass storage. Disables the cell."""
        loot = self.tee.breach()
        loot["envelopes"] = dict(self._envelopes)
        loot["series"] = {name: series.samples() for name, series in self._series.items()}
        return loot
