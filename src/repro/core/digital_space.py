"""The personal digital space: one user's view over all their cells.

"There is a great benefit in organizing all these data in a common
personal digital space, providing a consistent view, facilitating
querying and cross-analysis and leveraging new value-added
applications."

A user typically owns several cells (the home gateway, a phone, the
car's PAYD box). :class:`DigitalSpace` federates them: queries fan out
to every attached cell *as the user's own session on that cell* (each
cell still runs its reference monitor), and results come back merged
and tagged with provenance.

The space also applies the paper's origin taxonomy — data "produced by
smart sensors", "produced or inferred by external systems", "authored
by the user herself" — by classifying each object's catalog ``kind``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..store.query import HasKeyword, Query
from .cell import Session, TrustedCell

# The paper's three origin classes.
ORIGIN_SENSED = "sensed"  # class (1): smart sensors in home/environment
ORIGIN_EXTERNAL = "external"  # class (2): produced/inferred by external systems
ORIGIN_AUTHORED = "authored"  # class (3): authored by the user

_DEFAULT_ORIGIN_MAP = {
    "gps-trace": ORIGIN_SENSED,
    "meter-trace": ORIGIN_SENSED,
    "sensor": ORIGIN_SENSED,
    "payslip": ORIGIN_EXTERNAL,
    "medical": ORIGIN_EXTERNAL,
    "receipt": ORIGIN_EXTERNAL,
    "bill": ORIGIN_EXTERNAL,
    "scholar": ORIGIN_EXTERNAL,
    "photo": ORIGIN_AUTHORED,
    "mail": ORIGIN_AUTHORED,
    "note": ORIGIN_AUTHORED,
    "document": ORIGIN_AUTHORED,
}


@dataclass(frozen=True)
class SpaceEntry:
    """One object as seen from the digital space: metadata + provenance."""

    cell: str
    object_id: str
    kind: str
    origin: str
    size: int
    created_at: int
    keywords: str


class DigitalSpace:
    """A federated, read-mostly view over one user's cells."""

    def __init__(self, user: str, origin_map: dict[str, str] | None = None) -> None:
        if not user:
            raise ConfigurationError("digital space needs a user id")
        self.user = user
        self._sessions: dict[str, Session] = {}
        self._origin_map = dict(_DEFAULT_ORIGIN_MAP)
        if origin_map:
            self._origin_map.update(origin_map)

    # -- membership ---------------------------------------------------------

    def attach(self, session: Session) -> None:
        """Attach one of the user's cells via an authenticated session."""
        if session.subject != self.user:
            raise ConfigurationError(
                f"session belongs to {session.subject!r}, space to {self.user!r}"
            )
        cell_name = session.cell.name
        if cell_name in self._sessions:
            raise ConfigurationError(f"cell {cell_name!r} already attached")
        self._sessions[cell_name] = session

    def detach(self, cell_name: str) -> None:
        self._sessions.pop(cell_name, None)

    def cells(self) -> list[str]:
        return sorted(self._sessions)

    def classify(self, kind: str) -> str:
        """The origin class of a catalog ``kind`` (defaults to authored)."""
        return self._origin_map.get(kind, ORIGIN_AUTHORED)

    # -- federated views ------------------------------------------------------------

    def inventory(self) -> list[SpaceEntry]:
        """Every object across every attached cell, with provenance."""
        entries: list[SpaceEntry] = []
        for cell_name in self.cells():
            session = self._sessions[cell_name]
            cell: TrustedCell = session.cell
            for object_id in cell.catalog.collection("objects").record_ids():
                record = cell.catalog.collection("objects").get(object_id)
                entries.append(
                    SpaceEntry(
                        cell=cell_name,
                        object_id=object_id,
                        kind=record["kind"],
                        origin=self.classify(record["kind"]),
                        size=record["size"],
                        created_at=record["created_at"],
                        keywords=record["keywords"],
                    )
                )
        return entries

    def by_origin(self) -> dict[str, list[SpaceEntry]]:
        """The inventory grouped by the paper's three origin classes."""
        grouped: dict[str, list[SpaceEntry]] = {
            ORIGIN_SENSED: [], ORIGIN_EXTERNAL: [], ORIGIN_AUTHORED: [],
        }
        for entry in self.inventory():
            grouped[entry.origin].append(entry)
        return grouped

    def query(self, query: Query) -> list[dict[str, Any]]:
        """Run one metadata query on every cell; merge rows with a
        ``_cell`` provenance column."""
        merged: list[dict[str, Any]] = []
        for cell_name in self.cells():
            session = self._sessions[cell_name]
            result = session.cell.query_metadata(session, query)
            for row in result.rows:
                tagged = dict(row)
                tagged["_cell"] = cell_name
                merged.append(tagged)
        return merged

    def search(self, terms: list[str]) -> list[SpaceEntry]:
        """Keyword search over object keywords, across all cells."""
        normalized = tuple(term.lower() for term in terms)
        matches = []
        predicate = HasKeyword("keywords", normalized)
        for entry in self.inventory():
            if predicate.matches({"keywords": entry.keywords}):
                matches.append(entry)
        return matches

    def read(self, cell_name: str, object_id: str) -> bytes:
        """Read one object through its cell's reference monitor."""
        session = self._sessions.get(cell_name)
        if session is None:
            raise ConfigurationError(f"cell {cell_name!r} not attached")
        return session.cell.read_object(session, object_id)

    def totals(self) -> dict[str, Any]:
        """Space-wide statistics (the 'consistent view' headline)."""
        entries = self.inventory()
        return {
            "objects": len(entries),
            "bytes": sum(entry.size for entry in entries),
            "cells": len(self.cells()),
            "by_origin": {
                origin: len(items) for origin, items in self.by_origin().items()
            },
        }
