"""Ongoing usage control: rights re-evaluated *while* they are held.

UCON-ABC distinguishes pre-decisions from **ongoing** decisions:
"obligations (actions a subject must take before **or while** it holds
a right), conditions (environmental ... factors)". A long read — a
movie, a large export — must be interruptible when a condition stops
holding (the time window closes, the device leaves the permitted
location).

:class:`OngoingUse` models this: opening performs the full pre-check
(grant, conditions, mutability — one use is consumed at open), and
every chunk read re-evaluates the *conditions* against the current
context. A failed re-check revokes the stream mid-use, which is
audited as ``stream-revoked``.
"""

from __future__ import annotations

from ..errors import AccessDenied, ConfigurationError
from .cell import Session, TrustedCell


class OngoingUse:
    """One policy-supervised streaming read."""

    def __init__(
        self,
        cell: TrustedCell,
        session: Session,
        object_id: str,
        chunk_size: int = 4096,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError("chunk size must be >= 1")
        self.cell = cell
        self.session = session
        self.object_id = object_id
        self.chunk_size = chunk_size
        self._offset = 0
        self._revoked = False
        self._closed = False
        # The pre-decision: the ordinary monitored read performs grant,
        # condition, mutability and obligation handling, and charges
        # one use. The payload stays inside this handle.
        self._payload = cell.read_object(session, object_id)
        metadata = cell.catalog.collection("objects").get(object_id)
        envelope = cell.envelope_for(object_id)
        _, self._policy = envelope.open(
            cell.tee.keys.key_for(object_id, metadata["version"])
        )
        cell.audit.append(
            cell.world.now, session.subject, object_id, "stream-open", True,
            reason=f"{len(self._payload)} bytes, chunks of {chunk_size}",
        )

    # -- state ----------------------------------------------------------------

    @property
    def revoked(self) -> bool:
        return self._revoked

    @property
    def finished(self) -> bool:
        return self._offset >= len(self._payload)

    @property
    def bytes_delivered(self) -> int:
        return self._offset

    # -- the ongoing decision ---------------------------------------------------

    def _recheck(self) -> None:
        context = self.session.context()  # fresh timestamp/location
        for condition in self._policy.conditions:
            if not condition.evaluate(context):
                self._revoked = True
                self.cell.audit.append(
                    self.cell.world.now, context.subject, self.object_id,
                    "stream-revoked", False,
                    reason=f"ongoing condition failed: {condition.describe()}",
                )
                raise AccessDenied(
                    f"ongoing use of {self.object_id!r} revoked: "
                    f"{condition.describe()}"
                )

    def read_chunk(self) -> bytes:
        """The next chunk, after re-evaluating ongoing conditions.

        Returns ``b""`` at end of stream. Raises :class:`AccessDenied`
        (and permanently revokes the handle) if a condition no longer
        holds; already-delivered bytes are not recalled — that is the
        nature of ongoing control.
        """
        if self._revoked or self._closed:
            raise AccessDenied(
                f"stream over {self.object_id!r} is "
                f"{'revoked' if self._revoked else 'closed'}"
            )
        if self.finished:
            return b""
        self._recheck()
        chunk = self._payload[self._offset : self._offset + self.chunk_size]
        self._offset += len(chunk)
        if self.finished:
            self.cell.audit.append(
                self.cell.world.now, self.session.subject, self.object_id,
                "stream-complete", True,
            )
        return chunk

    def read_all(self) -> bytes:
        """Drain the stream (rechecking per chunk)."""
        parts = []
        while True:
            chunk = self.read_chunk()
            if not chunk:
                return b"".join(parts)
            parts.append(chunk)

    def close(self) -> None:
        """Release the handle (idempotent); drops the plaintext."""
        self._closed = True
        self._payload = b""


def open_stream(
    cell: TrustedCell, session: Session, object_id: str, chunk_size: int = 4096
) -> OngoingUse:
    """Open an ongoing-controlled read (free-function entry point)."""
    return OngoingUse(cell, session, object_id, chunk_size)
