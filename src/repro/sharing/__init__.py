"""Secure sharing: cell-to-cell offers, groups, approbation."""

from .approbation import (
    VERDICT_APPROVE,
    VERDICT_BLUR,
    VERDICT_REJECT,
    ApprobationRequest,
    ApprobationService,
    ApprobationVerdict,
    always_approve,
    always_blur,
    always_reject,
    integrate_with_approbation,
    verify_verdict,
)
from .groups import SharingGroup
from .protocol import ShareOffer, SharingPeer, introduce_cells

__all__ = [
    "VERDICT_APPROVE",
    "VERDICT_BLUR",
    "VERDICT_REJECT",
    "ApprobationRequest",
    "ApprobationService",
    "ApprobationVerdict",
    "always_approve",
    "always_blur",
    "always_reject",
    "integrate_with_approbation",
    "verify_verdict",
    "SharingGroup",
    "ShareOffer",
    "SharingPeer",
    "introduce_cells",
]
