"""The secure sharing protocol between trusted cells.

"Practically, sharing data means sharing the associated metadata (so
that the recipient user can get the referenced data in the Cloud), the
cryptographic keys (so that her trusted cell can decrypt them) and the
sticky policy (so that her trusted cell can enforce the expected access
control rules)."

Protocol (owner cell O sharing object X with recipient cell R):

1. **Attestation handshake** — O challenges R with a fresh nonce and
   verifies the quote against its trust registry: only a *genuine*
   trusted cell (one that will enforce sticky policies) may receive
   keys.
2. **Policy extension** — O re-seals X as a new version whose sticky
   policy includes the recipient's grant, and pushes it to the vault.
3. **Offer** — O wraps X's data key for R (under their pairwise DH
   key), bundles ``(object id, version, vault key, wrapped key)`` into
   a :class:`ShareOffer`, seals the whole offer under the pairwise key
   and posts it to R's cloud mailbox. The cloud sees only ciphertext —
   it does not even learn *which* object is being shared.
4. **Accept** — R drains its mailbox, opens each offer, imports the
   wrapped key into its TEE, anchors the stated version (anti-
   rollback), and fetches + verifies the envelope from O's vault.

From then on R's *local* reference monitor enforces the sticky policy
for R's users: the grant, its conditions, obligations and use budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..core.cell import Session, TrustedCell
from ..crypto.aead import SealedBlob, open_sealed, seal
from ..errors import AccessDenied, CredentialError, ProtocolError
from ..infrastructure.cloud import CloudProvider
from ..policy.sticky import DataEnvelope
from ..policy.ucon import RIGHT_SHARE, Grant, UsagePolicy
from ..sync.vault import VaultClient


@dataclass(frozen=True)
class ShareOffer:
    """The sealed unit posted to the recipient's mailbox."""

    object_id: str
    version: int
    vault_key: str
    owner_cell: str
    wrapped_key: SealedBlob
    kind: str
    keywords: str

    def to_bytes(self) -> bytes:
        body = {
            "object_id": self.object_id,
            "version": self.version,
            "vault_key": self.vault_key,
            "owner_cell": self.owner_cell,
            "wrapped_key": self.wrapped_key.to_bytes().hex(),
            "kind": self.kind,
            "keywords": self.keywords,
        }
        return json.dumps(body, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShareOffer":
        try:
            body: dict[str, Any] = json.loads(data.decode())
            return cls(
                object_id=body["object_id"],
                version=body["version"],
                vault_key=body["vault_key"],
                owner_cell=body["owner_cell"],
                wrapped_key=SealedBlob.from_bytes(bytes.fromhex(body["wrapped_key"])),
                kind=body["kind"],
                keywords=body["keywords"],
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise ProtocolError("malformed share offer") from exc


def _mailbox(cell_name: str) -> str:
    return f"inbox/{cell_name}"


class SharingPeer:
    """One cell's endpoint of the sharing protocol."""

    def __init__(self, cell: TrustedCell, cloud: CloudProvider) -> None:
        self.cell = cell
        self.cloud = cloud
        self.vault = VaultClient(cell, cloud)
        self.offers_sent = 0
        self.offers_accepted = 0

    # -- step 1: attestation handshake ---------------------------------------

    def verify_peer_is_genuine(self, peer: TrustedCell) -> None:
        """Challenge-response attestation before any key leaves the TEE."""
        nonce = self.cell.tee.keys.derive(f"nonce:{peer.name}:{self.cell.world.now}")
        quote = peer.attest(nonce)
        if not self.cell.registry.check_attestation(peer.name, quote, nonce):
            raise CredentialError(
                f"peer {peer.name!r} failed attestation; refusing to share"
            )

    # -- steps 2-3: share ------------------------------------------------------

    def share_object(
        self,
        session: Session,
        object_id: str,
        recipient_cell: TrustedCell,
        grant: Grant,
    ) -> ShareOffer:
        """Share an owned object with a recipient cell's users.

        ``grant`` names the recipient *users* (or required attributes)
        and the rights conferred; it is appended to the sticky policy.
        The session's subject must hold the ``share`` right.
        """
        self.verify_peer_is_genuine(recipient_cell)
        context = session.context()
        metadata = self.cell.object_metadata(object_id)
        envelope = self.cell.envelope_for(object_id)
        old_key = self.cell.tee.keys.key_for(object_id, metadata.version)
        payload, policy = envelope.open(old_key)
        decision = policy.evaluate(RIGHT_SHARE, context)
        if not decision.allowed:
            self.cell.audit.append(
                self.cell.world.now, context.subject, object_id, "share", False,
                reason=decision.reason,
            )
            raise AccessDenied(
                f"share of {object_id!r} denied for {context.subject!r}: "
                f"{decision.reason}"
            )
        extended = UsagePolicy(
            owner=policy.owner,
            grants=policy.grants + (grant,),
            conditions=policy.conditions,
            obligations=policy.obligations,
            max_uses=policy.max_uses,
        )
        new_metadata = self.cell.store_object(
            session,
            object_id,
            payload,
            policy=extended,
            kind=metadata.kind,
            keywords=metadata.keywords,
        )
        vault_key = self.vault.push(object_id)
        recipient_principal = recipient_cell.principal
        wrapped = self.cell.tee.keys.wrap_object_key(
            object_id, new_metadata.version, recipient_principal.exchange_public
        )
        offer = ShareOffer(
            object_id=object_id,
            version=new_metadata.version,
            vault_key=vault_key,
            owner_cell=self.cell.name,
            wrapped_key=wrapped,
            kind=metadata.kind,
            keywords=metadata.keywords,
        )
        pairwise = self.cell.tee.keys.pairwise_key(recipient_principal.exchange_public)
        sealed_offer = seal(
            pairwise,
            offer.to_bytes(),
            header=b"share-offer",
            nonce_seed=f"{object_id}:{new_metadata.version}:{recipient_cell.name}".encode(),
        )
        self.cloud.post_message(
            _mailbox(recipient_cell.name), self.cell.name, sealed_offer.to_bytes()
        )
        self.cell.audit.append(
            self.cell.world.now, context.subject, object_id, "share", True,
            reason=f"to {recipient_cell.name} v{new_metadata.version}",
        )
        self.offers_sent += 1
        return offer

    def revoke_grants(
        self, session: Session, object_id: str, subject: str
    ) -> int:
        """Remove every grant naming ``subject`` and re-seal a new version.

        Honest semantics (the fundamental limit of any DRM-like
        scheme): envelopes *already delivered* to a recipient cell keep
        working under their sticky policy — revocation cannot recall
        bits. What it does guarantee is that every **future** fetch
        from the vault yields the new policy: the new version is pushed
        and, thanks to version anchoring, a recipient that has seen the
        revocation offer (or any newer version) can no longer be served
        the stale envelope by the cloud. Returns the number of grants
        removed.
        """
        context = session.context()
        metadata = self.cell.object_metadata(object_id)
        envelope = self.cell.envelope_for(object_id)
        key = self.cell.tee.keys.key_for(object_id, metadata.version)
        payload, policy = envelope.open(key)
        if context.subject != policy.owner:
            self.cell.audit.append(
                self.cell.world.now, context.subject, object_id, "revoke",
                False, reason="only the owner revokes",
            )
            raise AccessDenied(
                f"only the owner may revoke grants on {object_id!r}"
            )
        kept = tuple(
            grant for grant in policy.grants if subject not in grant.subjects
        )
        removed = len(policy.grants) - len(kept)
        stripped = UsagePolicy(
            owner=policy.owner,
            grants=kept,
            conditions=policy.conditions,
            obligations=policy.obligations,
            max_uses=policy.max_uses,
        )
        self.cell.store_object(
            session, object_id, payload, policy=stripped,
            kind=metadata.kind, keywords=metadata.keywords,
        )
        self.vault.push(object_id)
        self.cell.audit.append(
            self.cell.world.now, context.subject, object_id, "revoke", True,
            reason=f"{removed} grant(s) for {subject}",
        )
        return removed

    # -- step 4: accept -----------------------------------------------------------

    def accept_shares(self) -> list[str]:
        """Drain the mailbox and import every valid offer.

        Returns the imported object ids. Malformed or undecryptable
        offers raise: silently dropping a share would hide an attack.
        """
        imported = []
        for sender, message in self.cloud.fetch_messages(_mailbox(self.cell.name)):
            sender_principal = self.cell.registry.principal(sender)
            pairwise = self.cell.tee.keys.pairwise_key(
                sender_principal.exchange_public
            )
            offer = ShareOffer.from_bytes(
                open_sealed(pairwise, SealedBlob.from_bytes(message))
            )
            if offer.owner_cell != sender:
                raise ProtocolError(
                    f"offer claims owner {offer.owner_cell!r} but came from "
                    f"{sender!r}"
                )
            self.cell.tee.keys.unwrap_object_key(
                offer.wrapped_key, sender_principal.exchange_public
            )
            self.vault.anchor_version(offer.object_id, offer.version)
            envelope = self.vault.verified_fetch(
                offer.object_id, owner_cell=offer.owner_cell
            )
            self.cell.import_envelope(
                envelope, kind=offer.kind, keywords=offer.keywords
            )
            self.cell.audit.append(
                self.cell.world.now, sender, offer.object_id, "accept-share", True
            )
            self.offers_accepted += 1
            imported.append(offer.object_id)
        return imported


def introduce_cells(*cells: TrustedCell) -> None:
    """Enroll every cell's principal in every other cell's registry.

    Stands in for the out-of-band introduction (QR code, manufacturer
    directory) that lets cells recognise each other as genuine.
    """
    for cell in cells:
        for other in cells:
            if other is not cell:
                cell.registry.enroll_principal(other.principal)


def fetch_envelope(envelope_bytes: bytes) -> DataEnvelope:
    """Parse envelope bytes fetched out-of-band (utility for tests)."""
    return DataEnvelope.from_bytes(envelope_bytes)
