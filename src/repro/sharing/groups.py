"""Group sharing: one wrap per group instead of one per member.

The paper's users "share it with other users or group of users under
certain conditions". A :class:`SharingGroup` holds a symmetric group
key, distributed once to each member cell (wrapped under pairwise
keys); sharing an object with the group then costs a single key-wrap
under the group key regardless of group size.

Membership is dynamic: removing a member *rotates* the group key (the
removed cell keeps old-epoch keys — it could always have copied old
data — but learns nothing shared after removal). This is the standard
backward-secrecy-on-leave model.
"""

from __future__ import annotations

from ..core.cell import TrustedCell
from ..crypto.aead import SealedBlob, open_sealed, seal
from ..crypto.primitives import KEY_SIZE, hkdf
from ..errors import ConfigurationError, ProtocolError


class SharingGroup:
    """A named group managed by its founding cell."""

    def __init__(self, name: str, founder: TrustedCell) -> None:
        if not name:
            raise ConfigurationError("group name must be non-empty")
        self.name = name
        self.founder = founder
        self.epoch = 0
        self._members: dict[str, TrustedCell] = {founder.name: founder}
        self._rotate_key()

    def _rotate_key(self) -> None:
        self.epoch += 1
        seed = self.founder.tee.keys.derive(f"group:{self.name}:epoch:{self.epoch}")
        self._group_key = hkdf(seed, "group-key", KEY_SIZE)
        # (Re)distribute to all current members' TEEs.
        for member in self._members.values():
            member.tee.store_secret(f"group-key:{self.name}", self._group_key)

    # -- membership ---------------------------------------------------------

    def members(self) -> list[str]:
        return sorted(self._members)

    def add_member(self, cell: TrustedCell) -> None:
        """Admit a cell (attestation is the founder's responsibility,
        via :meth:`SharingPeer.verify_peer_is_genuine`)."""
        if cell.name in self._members:
            raise ConfigurationError(f"{cell.name!r} already in group {self.name!r}")
        self._members[cell.name] = cell
        cell.tee.store_secret(f"group-key:{self.name}", self._group_key)

    def remove_member(self, cell_name: str) -> None:
        """Expel a member and rotate the key for backward secrecy."""
        if cell_name == self.founder.name:
            raise ConfigurationError("the founder cannot leave its own group")
        if cell_name not in self._members:
            raise ConfigurationError(f"{cell_name!r} not in group {self.name!r}")
        expelled = self._members.pop(cell_name)
        expelled.tee.secure_memory.delete(f"group-key:{self.name}")
        self._rotate_key()

    # -- group-keyed payloads ----------------------------------------------------

    def seal_for_group(self, sender: TrustedCell, payload: bytes,
                       label: str) -> SealedBlob:
        """Seal a payload any current member can open."""
        group_key = sender.tee.load_secret(f"group-key:{self.name}")
        if group_key is None:
            raise ProtocolError(f"{sender.name!r} holds no key for {self.name!r}")
        header = f"group:{self.name}:epoch:{self.epoch}:{label}".encode()
        return seal(group_key, payload, header=header, nonce_seed=header)

    @staticmethod
    def open_group_blob(member: TrustedCell, group_name: str,
                        blob: SealedBlob) -> bytes:
        """Open a group-sealed payload with the member's stored key."""
        group_key = member.tee.load_secret(f"group-key:{group_name}")
        if group_key is None:
            raise ProtocolError(
                f"{member.name!r} holds no key for group {group_name!r}"
            )
        return open_sealed(group_key, blob)
