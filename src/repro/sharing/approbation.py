"""The approbation workflow for data referencing other individuals.

"Trusted cells could be parameterized so that any personal data
produced by a trusted source linked to an individual A and referencing
individual B be submitted for approbation to B's trusted cell before
being integrated to A's digital space."

The canonical instance is the photo scenario from the introduction:
when A's phone takes a picture with B in the frame, B's cell is asked;
B's standing rule decides (approve / require face blur / reject), and
A's cell integrates the — possibly transformed — object only with B's
signed verdict attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.cell import Session, TrustedCell
from ..crypto.signing import Signature
from ..errors import AccessDenied, ProtocolError

VERDICT_APPROVE = "approve"
VERDICT_BLUR = "blur-me"  # approve, provided the subject is blurred
VERDICT_REJECT = "reject"
VERDICTS = (VERDICT_APPROVE, VERDICT_BLUR, VERDICT_REJECT)


@dataclass(frozen=True)
class ApprobationRequest:
    """A asks B: may I integrate this object that references you?"""

    requester_cell: str
    object_id: str
    content_digest: bytes
    referenced_user: str
    timestamp: int

    def message(self) -> bytes:
        return (
            b"approbation|"
            + self.requester_cell.encode()
            + b"|" + self.object_id.encode()
            + b"|" + self.content_digest
            + b"|" + self.referenced_user.encode()
            + b"|" + str(self.timestamp).encode()
        )


@dataclass(frozen=True)
class ApprobationVerdict:
    """B's signed answer."""

    request: ApprobationRequest
    verdict: str
    responder_cell: str
    signature: Signature

    def message(self) -> bytes:
        return self.request.message() + b"|" + self.verdict.encode()


# A standing rule maps a request to a verdict string.
StandingRule = Callable[[ApprobationRequest], str]


def always_approve(_request: ApprobationRequest) -> str:
    return VERDICT_APPROVE


def always_blur(_request: ApprobationRequest) -> str:
    return VERDICT_BLUR


def always_reject(_request: ApprobationRequest) -> str:
    return VERDICT_REJECT


class ApprobationService:
    """B's side: answers requests according to B's standing rule."""

    def __init__(self, cell: TrustedCell, rule: StandingRule = always_approve) -> None:
        self.cell = cell
        self.rule = rule
        self.answered: list[ApprobationVerdict] = []

    def answer(self, request: ApprobationRequest) -> ApprobationVerdict:
        verdict_text = self.rule(request)
        if verdict_text not in VERDICTS:
            raise ProtocolError(f"standing rule returned unknown verdict "
                                f"{verdict_text!r}")
        verdict = ApprobationVerdict(
            request=request,
            verdict=verdict_text,
            responder_cell=self.cell.name,
            signature=self.cell.tee.keys.sign(
                request.message() + b"|" + verdict_text.encode()
            ),
        )
        self.cell.audit.append(
            self.cell.world.now,
            request.requester_cell,
            request.object_id,
            f"approbation:{verdict_text}",
            True,
        )
        self.answered.append(verdict)
        return verdict


def verify_verdict(cell: TrustedCell, verdict: ApprobationVerdict) -> bool:
    """A's side: check the verdict signature against B's enrolled key."""
    responder = cell.registry.principal(verdict.responder_cell)
    return responder.verify_key.verify(verdict.message(), verdict.signature)


def integrate_with_approbation(
    requester: TrustedCell,
    session: Session,
    object_id: str,
    payload: bytes,
    referenced: dict[str, ApprobationService],
    transform_blur: Callable[[bytes, str], bytes],
    kind: str = "photo",
) -> bytes:
    """Run the full workflow: ask every referenced user, apply blur
    transforms, store only if nobody rejected.

    ``referenced`` maps user id -> that user's approbation service;
    ``transform_blur(payload, user)`` returns the payload with the user
    blurred. Returns the integrated payload. Raises
    :class:`AccessDenied` if any referenced user rejects.
    """
    from ..crypto.primitives import sha256

    final_payload = payload
    verdicts = []
    for user, service in sorted(referenced.items()):
        request = ApprobationRequest(
            requester_cell=requester.name,
            object_id=object_id,
            content_digest=sha256(payload),
            referenced_user=user,
            timestamp=requester.world.now,
        )
        verdict = service.answer(request)
        if not verify_verdict(requester, verdict):
            raise ProtocolError(f"invalid verdict signature from {user!r}")
        verdicts.append(verdict)
        if verdict.verdict == VERDICT_REJECT:
            requester.audit.append(
                requester.world.now, session.subject, object_id,
                "integrate", False, reason=f"rejected by {user}",
            )
            raise AccessDenied(
                f"integration of {object_id!r} rejected by {user!r}"
            )
    for verdict in verdicts:
        if verdict.verdict == VERDICT_BLUR:
            final_payload = transform_blur(
                final_payload, verdict.request.referenced_user
            )
    requester.store_object(session, object_id, final_payload, kind=kind)
    return final_payload
