"""External-system records: receipts, medical data, pay slips.

The paper's data class (2): "data produced or inferred by external
systems (e.g., purchase receipt obtained by near field communication or
medical data sent by the hospital or labs)". These generators populate
digital spaces for the Figure 1 walkthrough and feed the epidemiology
experiment (cross-analyzing diseases and alimentation, as the paper
suggests for large-scale sharing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim.clock import SECONDS_PER_DAY

GROCERY_CATEGORIES = (
    "vegetables", "fruit", "meat", "fish", "dairy",
    "sweets", "soda", "alcohol", "bread", "frozen",
)

DISEASES = ("none", "flu", "diabetes", "hypertension", "asthma")

# Diet skews per condition, used so the epidemiology experiment has a
# real signal to find: diabetics buy fewer sweets/soda in this toy world.
_DIET_WEIGHTS = {
    "none": [3, 3, 2, 1, 2, 2, 2, 1, 3, 1],
    "flu": [3, 4, 2, 1, 2, 1, 1, 0, 3, 1],
    "diabetes": [4, 3, 2, 2, 2, 1, 1, 1, 2, 1],
    "hypertension": [4, 3, 1, 2, 2, 1, 1, 0, 2, 1],
    "asthma": [3, 3, 2, 1, 2, 2, 2, 1, 3, 1],
}


@dataclass(frozen=True)
class Receipt:
    """One NFC purchase receipt."""

    timestamp: int
    merchant: str
    category: str
    amount: float


@dataclass(frozen=True)
class MedicalRecord:
    """One record sent by the hospital or lab."""

    timestamp: int
    issuer: str
    code: str  # diagnosis code
    disease: str


@dataclass(frozen=True)
class PaySlip:
    """A monthly pay slip from the employer."""

    month: int
    employer: str
    gross: float
    net: float


def generate_receipts(rng: random.Random, days: int, disease: str = "none",
                      per_day: float = 1.2) -> list[Receipt]:
    """Purchase history whose category mix depends on health condition."""
    weights = _DIET_WEIGHTS[disease]
    receipts = []
    for day in range(days):
        count = rng.choices([0, 1, 2, 3], weights=[3, 5, 3, 1])[0]
        for _ in range(count):
            category = rng.choices(GROCERY_CATEGORIES, weights=weights)[0]
            receipts.append(
                Receipt(
                    timestamp=day * SECONDS_PER_DAY + rng.randrange(SECONDS_PER_DAY),
                    merchant=f"market-{rng.randrange(3)}",
                    category=category,
                    amount=round(rng.uniform(2.0, 60.0), 2),
                )
            )
    return sorted(receipts, key=lambda receipt: receipt.timestamp)


def generate_medical_history(rng: random.Random, disease: str,
                             days: int) -> list[MedicalRecord]:
    """Visit records consistent with a condition."""
    if disease == "none":
        visit_count = rng.choices([0, 1], weights=[4, 1])[0]
    else:
        visit_count = 1 + rng.choices([0, 1, 2], weights=[2, 3, 2])[0]
    records = []
    for _ in range(visit_count):
        records.append(
            MedicalRecord(
                timestamp=rng.randrange(days * SECONDS_PER_DAY),
                issuer="hospital",
                code=f"icd-{abs(hash(disease)) % 900 + 100}",
                disease=disease,
            )
        )
    return sorted(records, key=lambda record: record.timestamp)


def generate_pay_slips(rng: random.Random, months: int,
                       employer: str = "acme") -> list[PaySlip]:
    gross = round(rng.uniform(2200, 4800), 2)
    return [
        PaySlip(month=month, employer=employer, gross=gross,
                net=round(gross * 0.78, 2))
        for month in range(months)
    ]


def assign_disease(rng: random.Random) -> str:
    """Population disease mix for the epidemiology experiment."""
    return rng.choices(DISEASES, weights=[60, 12, 10, 12, 6])[0]


def sweets_share(receipts: list[Receipt]) -> float:
    """Fraction of spending on sweets+soda — the diet feature the
    epidemiology query cross-analyzes against diabetes."""
    total = sum(receipt.amount for receipt in receipts)
    if total == 0:
        return 0.0
    sugary = sum(
        receipt.amount for receipt in receipts
        if receipt.category in ("sweets", "soda")
    )
    return sugary / total
