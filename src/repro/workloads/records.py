"""External-system records: receipts, medical data, pay slips.

The paper's data class (2): "data produced or inferred by external
systems (e.g., purchase receipt obtained by near field communication or
medical data sent by the hospital or labs)". These generators populate
digital spaces for the Figure 1 walkthrough and feed the epidemiology
experiment (cross-analyzing diseases and alimentation, as the paper
suggests for large-scale sharing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim.clock import SECONDS_PER_DAY

GROCERY_CATEGORIES = (
    "vegetables", "fruit", "meat", "fish", "dairy",
    "sweets", "soda", "alcohol", "bread", "frozen",
)

DISEASES = ("none", "flu", "diabetes", "hypertension", "asthma")

# Diet skews per condition, used so the epidemiology experiment has a
# real signal to find: diabetics buy fewer sweets/soda in this toy world.
_DIET_WEIGHTS = {
    "none": [3, 3, 2, 1, 2, 2, 2, 1, 3, 1],
    "flu": [3, 4, 2, 1, 2, 1, 1, 0, 3, 1],
    "diabetes": [4, 3, 2, 2, 2, 1, 1, 1, 2, 1],
    "hypertension": [4, 3, 1, 2, 2, 1, 1, 0, 2, 1],
    "asthma": [3, 3, 2, 1, 2, 2, 2, 1, 3, 1],
}


@dataclass(frozen=True)
class Receipt:
    """One NFC purchase receipt."""

    timestamp: int
    merchant: str
    category: str
    amount: float


@dataclass(frozen=True)
class MedicalRecord:
    """One record sent by the hospital or lab."""

    timestamp: int
    issuer: str
    code: str  # diagnosis code
    disease: str


@dataclass(frozen=True)
class PaySlip:
    """A monthly pay slip from the employer."""

    month: int
    employer: str
    gross: float
    net: float


def generate_receipts(rng: random.Random, days: int, disease: str = "none",
                      per_day: float = 1.2) -> list[Receipt]:
    """Purchase history whose category mix depends on health condition."""
    weights = _DIET_WEIGHTS[disease]
    receipts = []
    for day in range(days):
        count = rng.choices([0, 1, 2, 3], weights=[3, 5, 3, 1])[0]
        for _ in range(count):
            category = rng.choices(GROCERY_CATEGORIES, weights=weights)[0]
            receipts.append(
                Receipt(
                    timestamp=day * SECONDS_PER_DAY + rng.randrange(SECONDS_PER_DAY),
                    merchant=f"market-{rng.randrange(3)}",
                    category=category,
                    amount=round(rng.uniform(2.0, 60.0), 2),
                )
            )
    return sorted(receipts, key=lambda receipt: receipt.timestamp)


def generate_medical_history(rng: random.Random, disease: str,
                             days: int) -> list[MedicalRecord]:
    """Visit records consistent with a condition."""
    if disease == "none":
        visit_count = rng.choices([0, 1], weights=[4, 1])[0]
    else:
        visit_count = 1 + rng.choices([0, 1, 2], weights=[2, 3, 2])[0]
    records = []
    for _ in range(visit_count):
        records.append(
            MedicalRecord(
                timestamp=rng.randrange(days * SECONDS_PER_DAY),
                issuer="hospital",
                code=f"icd-{abs(hash(disease)) % 900 + 100}",
                disease=disease,
            )
        )
    return sorted(records, key=lambda record: record.timestamp)


def generate_pay_slips(rng: random.Random, months: int,
                       employer: str = "acme") -> list[PaySlip]:
    gross = round(rng.uniform(2200, 4800), 2)
    return [
        PaySlip(month=month, employer=employer, gross=gross,
                net=round(gross * 0.78, 2))
        for month in range(months)
    ]


def assign_disease(rng: random.Random) -> str:
    """Population disease mix for the epidemiology experiment."""
    return rng.choices(DISEASES, weights=[60, 12, 10, 12, 6])[0]


# -- administrative / employment records -------------------------------------
#
# The paper's "administrative data" class covers what the state and
# employers hold about a citizen: work contracts, benefit approvals,
# eligibility spans. This is the second workload domain the standing
# experiment subscribes to (alongside energy) — an employment agency
# runs continuous hours/eligibility analytics under dedicated UCON
# purposes, and the span records carry ``qi_``-prefixed
# quasi-identifiers so ``records-kanon`` releases cohort rows the
# standard Mondrian path can anonymize.

EMPLOYMENT_SECTORS = (
    "retail", "construction", "care", "logistics", "education", "hospitality",
)

EMPLOYMENT_CONTRACTS = ("permanent", "fixed-term", "temp-agency", "seasonal")

ELIGIBILITY_PROGRAMS = ("wage-subsidy", "training-grant", "hiring-bonus")

#: The UCON purposes the standing employment analytics run under.
#: ``employment-stats`` covers hour/wage aggregates, ``eligibility-audit``
#: covers approval counting, ``cohort-release`` covers k-anon span rows.
PURPOSE_EMPLOYMENT_STATS = "employment-stats"
PURPOSE_ELIGIBILITY_AUDIT = "eligibility-audit"
PURPOSE_COHORT_RELEASE = "cohort-release"
EMPLOYMENT_PURPOSES = (
    PURPOSE_EMPLOYMENT_STATS,
    PURPOSE_ELIGIBILITY_AUDIT,
    PURPOSE_COHORT_RELEASE,
)


@dataclass(frozen=True)
class EmploymentRecord:
    """One reporting period of one person's employment."""

    period: int  # reporting-period index (event time)
    employer: str
    sector: str
    contract: str
    hours: float  # hours worked in the period
    wage: float  # gross pay for the period


@dataclass(frozen=True)
class ApprovalSpan:
    """One program approval: eligible from ``start`` for ``periods``."""

    program: str
    start: int  # first eligible period
    periods: int
    approved: int  # 1 approved / 0 rejected (int so it aggregates)

    def covers(self, period: int) -> bool:
        return bool(self.approved) and \
            self.start <= period < self.start + self.periods


def generate_employment_records(
    rng: random.Random, periods: int, employer: str = "acme",
) -> list[EmploymentRecord]:
    """One person's employment history, one record per reporting period.

    A pure function of the generator state: sector, contract and base
    hours are drawn once, then each period jitters hours (zero-hour
    gaps model unemployment spells). Records come back sorted by
    ``period`` — the event-time-monotone order the standing ingestion
    path requires.
    """
    sector = rng.choice(EMPLOYMENT_SECTORS)
    contract = rng.choices(EMPLOYMENT_CONTRACTS, weights=[5, 3, 2, 1])[0]
    base_hours = rng.choice([16.0, 24.0, 32.0, 40.0])
    hourly = round(rng.uniform(11.0, 28.0), 2)
    records = []
    for period in range(periods):
        if rng.random() < 0.08:
            continue  # an unemployment gap: no record this period
        hours = max(0.0, round(base_hours + rng.uniform(-6.0, 6.0), 1))
        records.append(EmploymentRecord(
            period=period, employer=employer, sector=sector,
            contract=contract, hours=hours,
            wage=round(hours * hourly, 2),
        ))
    return records


def generate_eligibility_spans(
    rng: random.Random, periods: int,
) -> list[ApprovalSpan]:
    """Program approvals/rejections over a reporting horizon, sorted by
    start period."""
    spans = []
    for program in ELIGIBILITY_PROGRAMS:
        if rng.random() < 0.45:
            continue  # never applied to this program
        start = rng.randrange(max(1, periods))
        spans.append(ApprovalSpan(
            program=program, start=start,
            periods=1 + rng.randrange(max(1, periods - start)),
            approved=1 if rng.random() < 0.7 else 0,
        ))
    return sorted(spans, key=lambda span: span.start)


def employment_rows(
    records: list[EmploymentRecord],
    spans: list[ApprovalSpan],
    *,
    qi_age: int,
    qi_zip: int,
    time_field: str = "t",
) -> list[dict]:
    """Flatten one person's history into store rows for the standing
    path: one row per reporting period, event time in ``time_field``,
    approval state folded in, ``qi_``-prefixed quasi-identifiers for
    ``records-kanon`` cohorts."""
    return [
        {
            time_field: record.period,
            "hours": record.hours,
            "wage": record.wage,
            "sector": record.sector,
            "contract": record.contract,
            "approved": int(any(
                span.covers(record.period) for span in spans)),
            "qi_age": qi_age,
            "qi_zip": qi_zip,
        }
        for record in records
    ]


def sweets_share(receipts: list[Receipt]) -> float:
    """Fraction of spending on sweets+soda — the diet feature the
    epidemiology query cross-analyzes against diabetes."""
    total = sum(receipt.amount for receipt in receipts)
    if total == 0:
        return 0.0
    sugary = sum(
        receipt.amount for receipt in receipts
        if receipt.category in ("sweets", "soda")
    )
    return sugary / total
