"""GPS/mobility workload: road graph, trips, pricing zones.

Substitute for the paper's PAYD GPS tracking box. A city is a grid
road graph (networkx); trips pick origin/destination nodes and follow
shortest paths; the trace is the per-edge sequence with timestamps.
Pricing zones (downtown congestion charge) and night-driving detection
exercise the paper's claim that the tracker "gives detailed turn-by-
turn guidance, but hides those details ... only delivering the result
of road-pricing computations".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..errors import ConfigurationError
from ..sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class TracePoint:
    """One GPS fix: time and grid position."""

    timestamp: int
    x: int
    y: int


@dataclass(frozen=True)
class Trip:
    """One trip: the full trace plus derived facts."""

    start_time: int
    points: tuple[TracePoint, ...]

    @property
    def distance_km(self) -> float:
        return max(0, len(self.points) - 1) * CityMap.EDGE_KM

    @property
    def end_time(self) -> int:
        return self.points[-1].timestamp if self.points else self.start_time


class CityMap:
    """A grid city with a rectangular priced zone in the centre."""

    EDGE_KM = 0.5  # every road segment is half a kilometre
    EDGE_SECONDS = 45  # at urban speed

    def __init__(self, width: int = 12, height: int = 12,
                 zone_fraction: float = 0.33) -> None:
        if width < 3 or height < 3:
            raise ConfigurationError("city must be at least 3x3")
        self.width = width
        self.height = height
        self.graph = nx.grid_2d_graph(width, height)
        margin_x = int(width * (1 - zone_fraction) / 2)
        margin_y = int(height * (1 - zone_fraction) / 2)
        self.priced_zone = {
            (x, y)
            for x in range(margin_x, width - margin_x)
            for y in range(margin_y, height - margin_y)
        }

    def in_zone(self, x: int, y: int) -> bool:
        return (x, y) in self.priced_zone

    def random_node(self, rng: random.Random) -> tuple[int, int]:
        return (rng.randrange(self.width), rng.randrange(self.height))

    def route(self, origin: tuple[int, int], destination: tuple[int, int]):
        return nx.shortest_path(self.graph, origin, destination)


class DriverSimulator:
    """Generates a driver's trips over days."""

    def __init__(self, city: CityMap, rng: random.Random,
                 trips_per_day: float = 2.5) -> None:
        self.city = city
        self._rng = rng
        self.trips_per_day = trips_per_day

    def _trip_at(self, start_time: int) -> Trip:
        origin = self.city.random_node(self._rng)
        destination = self.city.random_node(self._rng)
        while destination == origin:
            destination = self.city.random_node(self._rng)
        path = self.city.route(origin, destination)
        points = tuple(
            TracePoint(
                timestamp=start_time + position * CityMap.EDGE_SECONDS,
                x=node[0],
                y=node[1],
            )
            for position, node in enumerate(path)
        )
        return Trip(start_time=start_time, points=points)

    def simulate_day(self, day: int) -> list[Trip]:
        day_start = day * SECONDS_PER_DAY
        count = max(1, round(self._rng.gauss(self.trips_per_day, 1.0)))
        trips = []
        for _ in range(count):
            hour = self._rng.choices(
                population=list(range(24)),
                weights=[1, 1, 1, 1, 1, 2, 4, 8, 6, 3, 3, 4,
                         5, 4, 3, 4, 6, 8, 7, 5, 4, 3, 2, 1],
            )[0]
            start = day_start + hour * SECONDS_PER_HOUR + self._rng.randrange(3600)
            trips.append(self._trip_at(start))
        return sorted(trips, key=lambda trip: trip.start_time)


# -- in-cell computations (the only outputs that leave the PAYD cell) ------------


def road_pricing_fee(trips: list[Trip], city: CityMap,
                     zone_price_per_km: float = 0.30,
                     base_price_per_km: float = 0.02) -> float:
    """The congestion/road-pricing fee for a set of trips.

    Zone segments are billed at the zone rate, others at the base rate.
    This scalar is what the cell externalizes to the government.
    """
    fee = 0.0
    for trip in trips:
        for earlier, later in zip(trip.points, trip.points[1:]):
            segment_in_zone = city.in_zone(earlier.x, earlier.y) or city.in_zone(
                later.x, later.y
            )
            rate = zone_price_per_km if segment_in_zone else base_price_per_km
            fee += CityMap.EDGE_KM * rate
    return fee


def night_fraction(trips: list[Trip],
                   night_start_hour: int = 22, night_end_hour: int = 6) -> float:
    """Fraction of driven segments at night (a PAYD insurance factor)."""
    night_segments = 0
    total_segments = 0
    for trip in trips:
        for point in trip.points[:-1]:
            hour = (point.timestamp % SECONDS_PER_DAY) // SECONDS_PER_HOUR
            is_night = hour >= night_start_hour or hour < night_end_hour
            night_segments += 1 if is_night else 0
            total_segments += 1
    return night_segments / total_segments if total_segments else 0.0


def total_distance_km(trips: list[Trip]) -> float:
    return sum(trip.distance_km for trip in trips)


def payd_premium(trips: list[Trip], base_premium: float = 30.0,
                 per_km: float = 0.05, night_surcharge: float = 20.0) -> float:
    """A monthly PAYD premium from aggregate driving facts only."""
    return (
        base_premium
        + per_km * total_distance_km(trips)
        + night_surcharge * night_fraction(trips)
    )
