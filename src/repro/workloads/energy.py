"""Smart-meter workload: households, appliances, tariffs, weather.

Substitute for the paper's Linky power-meter feed. The generator is
event-based: each household's occupants run appliances according to a
daily routine; the 1 Hz meter trace is the base load plus the rated
power of every running appliance (plus sensor noise). Because each
appliance has a distinctive rated draw — the premise of Lam's load-
signature taxonomy that the paper cites — the trace is NILM-attackable
at fine granularity, which is exactly the property experiment E2
measures as a function of aggregation.

The ground-truth event list is returned alongside the trace so attacks
can be scored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from ..store.timeseries import TimeSeries, persist_series, series_record_id


@dataclass(frozen=True)
class Appliance:
    """An ON/OFF appliance with a distinctive rated power draw."""

    name: str
    power_watts: float
    typical_duration_s: int
    # hours of the day when this appliance plausibly starts
    active_hours: tuple[int, ...]
    daily_uses: float  # expected number of uses per day

    def __post_init__(self) -> None:
        if self.power_watts <= 0 or self.typical_duration_s <= 0:
            raise ConfigurationError(f"invalid appliance spec for {self.name!r}")


# A compact library of distinguishable appliances (rated draws spread
# far enough apart that 1 Hz edges identify them).
KETTLE = Appliance("kettle", 2000.0, 180, (6, 7, 8, 12, 16, 19), 3.0)
TOASTER = Appliance("toaster", 900.0, 150, (6, 7, 8), 1.0)
MICROWAVE = Appliance("microwave", 1200.0, 240, (7, 12, 18, 19, 20), 2.0)
OVEN = Appliance("oven", 2600.0, 2700, (18, 19), 0.7)
WASHING_MACHINE = Appliance("washing-machine", 1600.0, 4500, (9, 10, 20, 21), 0.5)
DISHWASHER = Appliance("dishwasher", 1400.0, 3600, (20, 21, 22), 0.6)
TELEVISION = Appliance("television", 140.0, 7200, (19, 20, 21), 1.2)
VACUUM = Appliance("vacuum", 700.0, 1200, (10, 11, 15, 16), 0.3)
EV_CHARGER = Appliance("ev-charger", 3300.0, 3 * 3600, (22, 23, 0, 1), 0.8)

STANDARD_APPLIANCES = (
    KETTLE, TOASTER, MICROWAVE, OVEN, WASHING_MACHINE,
    DISHWASHER, TELEVISION, VACUUM,
)


@dataclass(frozen=True)
class ApplianceEvent:
    """Ground truth: one appliance run."""

    appliance: str
    power_watts: float
    start: int  # absolute timestamp
    duration: int

    @property
    def end(self) -> int:
        return self.start + self.duration


@dataclass
class DayTrace:
    """One simulated day: the meter trace plus ground truth."""

    day: int
    series: TimeSeries
    events: list[ApplianceEvent]
    sample_period: int = 1

    def energy_kwh(self) -> float:
        """Total energy, honouring the trace's sampling period."""
        return self.series.total() * self.sample_period / 3600.0 / 1000.0

    def records(self) -> list[tuple[str, dict]]:
        """The trace as catalog records, one ``{"t", "w"}`` row per
        sample, ids in time order — the shape the batched store ingest
        consumes."""
        return [
            (series_record_id(timestamp), {"t": int(timestamp), "w": float(watts)})
            for timestamp, watts in self.series.samples()
        ]


def ingest_day_trace(collection, trace: DayTrace, *, batch: bool = True) -> int:
    """Persist one day's meter trace into a catalog collection.

    ``batch=True`` is the page-coalescing hot path
    (``Collection.insert_many``); ``batch=False`` is the one-record-at-
    a-time baseline. Returns the number of samples ingested.
    """
    return persist_series(collection, trace.series, batch=batch)


class HouseholdSimulator:
    """Generates meter traces for one household."""

    def __init__(
        self,
        rng: random.Random,
        appliances: tuple[Appliance, ...] = STANDARD_APPLIANCES,
        base_load_watts: float = 120.0,
        noise_watts: float = 4.0,
        sample_period: int = 1,
        activity_scale: float = 1.0,
    ) -> None:
        if sample_period < 1:
            raise ConfigurationError("sample period must be >= 1 second")
        self._rng = rng
        self.appliances = appliances
        self.base_load = base_load_watts
        self.noise = noise_watts
        self.sample_period = sample_period
        self.activity_scale = activity_scale

    # -- event generation -------------------------------------------------------

    def _events_for_day(self, day: int) -> list[ApplianceEvent]:
        day_start = day * SECONDS_PER_DAY
        events: list[ApplianceEvent] = []
        for appliance in self.appliances:
            expected = appliance.daily_uses * self.activity_scale
            uses = self._poisson(expected)
            for _ in range(uses):
                hour = self._rng.choice(appliance.active_hours)
                start = (
                    day_start
                    + hour * SECONDS_PER_HOUR
                    + self._rng.randrange(SECONDS_PER_HOUR)
                )
                duration = max(
                    60,
                    int(self._rng.gauss(appliance.typical_duration_s,
                                        appliance.typical_duration_s * 0.15)),
                )
                events.append(
                    ApplianceEvent(
                        appliance=appliance.name,
                        power_watts=appliance.power_watts,
                        start=start,
                        duration=duration,
                    )
                )
        events.sort(key=lambda event: event.start)
        return events

    def _poisson(self, expected: float) -> int:
        # Knuth's algorithm is fine for small expectations.
        import math

        limit = math.exp(-expected)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    # -- trace synthesis -----------------------------------------------------------

    def simulate_day(self, day: int, events: list[ApplianceEvent] | None = None) -> DayTrace:
        """Synthesize one day's 1 Hz (or coarser) meter trace."""
        if events is None:
            events = self._events_for_day(day)
        day_start = day * SECONDS_PER_DAY
        samples = SECONDS_PER_DAY // self.sample_period
        power = [self.base_load] * samples
        for event in events:
            first = max(0, (event.start - day_start) // self.sample_period)
            last = min(samples, (event.end - day_start) // self.sample_period)
            for position in range(first, last):
                power[position] += event.power_watts
        series = TimeSeries(f"power-day-{day}")
        series.extend(
            (
                day_start + position * self.sample_period,
                max(0.0, watts + self._rng.gauss(0.0, self.noise)),
            )
            for position, watts in enumerate(power)
        )
        return DayTrace(
            day=day, series=series, events=events,
            sample_period=self.sample_period,
        )

    def simulate_days(self, first_day: int, count: int) -> list[DayTrace]:
        return [self.simulate_day(first_day + offset) for offset in range(count)]


# -- tariffs ---------------------------------------------------------------------


@dataclass(frozen=True)
class TimeOfUseTariff:
    """A two-rate tariff (the classic French heures creuses)."""

    peak_price_per_kwh: float = 0.25
    offpeak_price_per_kwh: float = 0.10
    peak_start_hour: int = 7
    peak_end_hour: int = 23

    def is_peak(self, timestamp: int) -> bool:
        hour = (timestamp % SECONDS_PER_DAY) // SECONDS_PER_HOUR
        return self.peak_start_hour <= hour < self.peak_end_hour

    def price_at(self, timestamp: int) -> float:
        return (
            self.peak_price_per_kwh
            if self.is_peak(timestamp)
            else self.offpeak_price_per_kwh
        )

    def bill(self, series: TimeSeries, sample_period: int = 1) -> float:
        """Cost in currency units of a power (watt) series."""
        total = 0.0
        for timestamp, watts in series.samples():
            total += watts * sample_period / 3600.0 / 1000.0 * self.price_at(timestamp)
        return total


# -- weather (for the heat pump) -----------------------------------------------------


def winter_temperature(timestamp: int, rng: random.Random | None = None) -> float:
    """Outdoor temperature (deg C) with a sinusoidal daily cycle around 5C."""
    import math

    seconds_into_day = timestamp % SECONDS_PER_DAY
    phase = 2 * math.pi * (seconds_into_day - 14 * SECONDS_PER_HOUR) / SECONDS_PER_DAY
    base = 5.0 + 4.0 * math.cos(phase)
    if rng is not None:
        base += rng.gauss(0.0, 0.5)
    return base


def heating_demand_watts(outdoor_temp: float, comfort_temp: float = 20.0,
                         loss_watts_per_degree: float = 120.0) -> float:
    """Steady-state heat demand to hold the comfort temperature."""
    return max(0.0, (comfort_temp - outdoor_temp) * loss_watts_per_degree)
