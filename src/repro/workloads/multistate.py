"""Multi-state appliances: cyclic load signatures.

Lam's taxonomy (the paper's reference [7]) distinguishes simple ON/OFF
devices from appliances with *cycles* — a washing machine heats
(2 kW), tumbles (300 W), and spins (700 W) in sequence. Cycles make
NILM both easier (the phase sequence is a fingerprint) and harder
(edges no longer match a single rated draw).

This module extends the energy workload with phase-structured
appliances and expands their runs into per-phase ground truth, so the
phase-aware attack in :mod:`repro.attacks.cycles` has something
honest to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from ..store.timeseries import TimeSeries
from .energy import ApplianceEvent, DayTrace


@dataclass(frozen=True)
class Phase:
    """One phase of an appliance cycle."""

    name: str
    power_watts: float
    duration_s: int

    def __post_init__(self) -> None:
        if self.power_watts < 0 or self.duration_s <= 0:
            raise ConfigurationError(f"invalid phase {self.name!r}")


@dataclass(frozen=True)
class CyclicAppliance:
    """An appliance that runs a fixed sequence of phases."""

    name: str
    phases: tuple[Phase, ...]
    active_hours: tuple[int, ...]
    daily_uses: float

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"{self.name!r} needs at least one phase")

    @property
    def cycle_duration(self) -> int:
        return sum(phase.duration_s for phase in self.phases)

    def signature(self) -> tuple[float, ...]:
        """The ordered power levels — the cycle's fingerprint."""
        return tuple(phase.power_watts for phase in self.phases)


WASHING_MACHINE_CYCLE = CyclicAppliance(
    name="washing-machine-cycle",
    phases=(
        Phase("heat", 2100.0, 15 * 60),
        Phase("tumble", 300.0, 40 * 60),
        Phase("spin", 700.0, 10 * 60),
    ),
    active_hours=(9, 10, 20, 21),
    daily_uses=0.5,
)

DISHWASHER_CYCLE = CyclicAppliance(
    name="dishwasher-cycle",
    phases=(
        Phase("prewash", 200.0, 10 * 60),
        Phase("heat-wash", 1900.0, 25 * 60),
        Phase("rinse", 150.0, 15 * 60),
        Phase("dry", 1100.0, 20 * 60),
    ),
    active_hours=(20, 21, 22),
    daily_uses=0.6,
)

TUMBLE_DRYER_CYCLE = CyclicAppliance(
    name="tumble-dryer-cycle",
    phases=(
        Phase("heat-dry", 2500.0, 45 * 60),
        Phase("cool-down", 250.0, 10 * 60),
    ),
    active_hours=(10, 11, 21),
    daily_uses=0.4,
)

STANDARD_CYCLES = (WASHING_MACHINE_CYCLE, DISHWASHER_CYCLE, TUMBLE_DRYER_CYCLE)


@dataclass(frozen=True)
class CycleRun:
    """Ground truth for one full cycle execution."""

    appliance: str
    start: int
    phase_events: tuple[ApplianceEvent, ...]

    @property
    def end(self) -> int:
        return self.phase_events[-1].end if self.phase_events else self.start


class CyclicHouseholdSimulator:
    """A household running only cyclic appliances over a base load.

    Kept separate from :class:`~repro.workloads.energy.HouseholdSimulator`
    so each attack evaluates against the workload type it targets; mix
    traces by summing series if needed.
    """

    def __init__(
        self,
        rng: random.Random,
        appliances: tuple[CyclicAppliance, ...] = STANDARD_CYCLES,
        base_load_watts: float = 110.0,
        noise_watts: float = 4.0,
        sample_period: int = 1,
    ) -> None:
        if sample_period < 1:
            raise ConfigurationError("sample period must be >= 1 second")
        self._rng = rng
        self.appliances = appliances
        self.base_load = base_load_watts
        self.noise = noise_watts
        self.sample_period = sample_period

    def _runs_for_day(self, day: int) -> list[CycleRun]:
        day_start = day * SECONDS_PER_DAY
        runs: list[CycleRun] = []
        for appliance in self.appliances:
            if self._rng.random() >= appliance.daily_uses:
                continue
            hour = self._rng.choice(appliance.active_hours)
            start = (
                day_start + hour * SECONDS_PER_HOUR
                + self._rng.randrange(SECONDS_PER_HOUR)
            )
            cursor = start
            phase_events = []
            for phase in appliance.phases:
                phase_events.append(
                    ApplianceEvent(
                        appliance=f"{appliance.name}:{phase.name}",
                        power_watts=phase.power_watts,
                        start=cursor,
                        duration=phase.duration_s,
                    )
                )
                cursor += phase.duration_s
            runs.append(
                CycleRun(
                    appliance=appliance.name,
                    start=start,
                    phase_events=tuple(phase_events),
                )
            )
        return sorted(runs, key=lambda run: run.start)

    def simulate_day(self, day: int) -> tuple[DayTrace, list[CycleRun]]:
        """Returns the trace (phase events as ground truth) + the runs."""
        runs = self._runs_for_day(day)
        day_start = day * SECONDS_PER_DAY
        samples = SECONDS_PER_DAY // self.sample_period
        power = [self.base_load] * samples
        flat_events: list[ApplianceEvent] = []
        for run in runs:
            for event in run.phase_events:
                flat_events.append(event)
                first = max(0, (event.start - day_start) // self.sample_period)
                last = min(samples, (event.end - day_start) // self.sample_period)
                for position in range(first, last):
                    power[position] += event.power_watts
        series = TimeSeries(f"cyclic-power-day-{day}")
        series.extend(
            (
                day_start + position * self.sample_period,
                max(0.0, watts + self._rng.gauss(0.0, self.noise)),
            )
            for position, watts in enumerate(power)
        )
        trace = DayTrace(
            day=day, series=series, events=flat_events,
            sample_period=self.sample_period,
        )
        return trace, runs
