"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro list            # show the experiment catalog
    python -m repro run E2          # run one experiment, print its tables
    python -m repro run all         # run everything (several minutes)
    python -m repro obs E9          # run E9, dump the observability scope
    python -m repro obs --json o.json   # machine-readable export
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .bench import ALL_EXPERIMENTS, print_tables

_DESCRIPTIONS = {
    "E1": "Figure 1 walkthrough: every arrow executed, invariants checked",
    "E2": "NILM attack vs externalization granularity (1s/15min/daily)",
    "E3": "energy butler bill saving (the 30% claim) + ablation",
    "E4": "social game consumption reduction (the 20% claim)",
    "E5": "neighborhood peak shaving via masked coordination",
    "E6": "breach economics: central database vs trusted cells",
    "E7": "class-breaking: per-cell keys vs shared master",
    "E8": "embedded metadata queries across hardware profiles",
    "E9": "secure aggregation vs population size and availability",
    "E10": "k-anonymity loss vs k; DP error vs epsilon",
    "E11": "weakly malicious cloud: detection and conviction",
    "E12": "usage-control correctness, overhead, binding ablation",
    "E13": "resilience under churn: fault matrix, retries, degradation",
    "E14": "federated queries: networked fan-out, plan mix, degradation",
    "E15": "standing queries: continuous multi-tenant windows over the fleet",
}


def _list_experiments() -> None:
    for name in ALL_EXPERIMENTS:
        print(f"{name:>4}  {_DESCRIPTIONS.get(name, '')}")


def _run(names: list[str]) -> int:
    failures = 0
    for name in names:
        module = ALL_EXPERIMENTS[name]
        print(f"--- {name}: {_DESCRIPTIONS.get(name, '')}")
        start = time.time()
        tables = module.run()
        elapsed = time.time() - start
        print_tables(tables)
        checker = getattr(module, "shape_holds", None) or getattr(
            module, "all_invariants_hold"
        )
        ok = checker(tables)
        print(f"{name}: paper-shape predicate "
              f"{'HOLDS' if ok else 'FAILED'} ({elapsed:.1f}s)")
        print()
        if not ok:
            failures += 1
    return failures


def _obs_dump(experiment: str | None, json_path: str | None,
              events_tail: int) -> int:
    """Run an (optional) experiment, then dump the process-default
    observability scope: metric snapshot, span summary, recent events.

    Per-``World`` scopes created inside an experiment are separate by
    design (export them with ``world.obs.export()``); this dump covers
    the world-less instruments — crypto derivations, aggregation
    rounds, policy decisions, audit appends, store cache traffic.
    """
    from .obs import get_default

    obs = get_default()
    obs.reset()
    if experiment is not None:
        target = experiment.upper()
        if target not in ALL_EXPERIMENTS:
            print(f"unknown experiment {experiment!r}", file=sys.stderr)
            return 2
        ALL_EXPERIMENTS[target].run()  # tables discarded; we want the scope
    export = obs.export()
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(export, handle, indent=2)
        print(f"observability export written to {json_path}")
        return 0
    print(f"# observability dump (schema {export['schema']})")
    print("\n## metrics")
    for name, snapshot in export["metrics"].items():
        if snapshot["kind"] == "histogram":
            print(f"{name:<28} histogram count={snapshot['count']} "
                  f"mean={snapshot['mean']:.1f}")
        else:
            print(f"{name:<28} {snapshot['kind']} {snapshot['value']}")
            for labels, value in snapshot.get("labels", {}).items():
                print(f"    {labels:<24} {value}")
    spans = export["trace"]["spans"]
    print(f"\n## trace ({len(spans)} spans, {export['trace']['dropped']} dropped)")
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span["duration"])
    for name, durations in sorted(by_name.items()):
        print(f"{name:<28} n={len(durations)} total={sum(durations):.4f} "
              f"max={max(durations):.4f}")
    events = export["events"]["events"]
    print(f"\n## events ({export['events']['emitted']} emitted, "
          f"{export['events']['retained']} retained; last {events_tail})")
    for event in events[-events_tail:]:
        fields = {k: v for k, v in event.items() if k not in ("seq", "kind")}
        print(f"[{event['seq']}] {event['kind']} {fields}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Trusted Cells reproduction: experiment runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiment",
        help="experiment id (E1..E15) or 'all'",
    )
    report_parser = subparsers.add_parser(
        "report", help="run everything, write a consolidated markdown report"
    )
    report_parser.add_argument(
        "--output", default="EXPERIMENT-REPORT.md",
        help="output path (default: EXPERIMENT-REPORT.md)",
    )
    obs_parser = subparsers.add_parser(
        "obs",
        help="dump the observability scope (metrics, trace, events), "
             "optionally after running an experiment",
    )
    obs_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (E1..E15) to run first; omit to dump as-is",
    )
    obs_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full JSON export instead of the text summary",
    )
    obs_parser.add_argument(
        "--events", type=int, default=20, metavar="N",
        help="how many trailing events to show in the text summary",
    )
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        _list_experiments()
        return 0
    if arguments.command == "obs":
        return _obs_dump(arguments.experiment, arguments.json, arguments.events)
    if arguments.command == "report":
        from .bench.report import generate_report

        verdicts = generate_report(arguments.output)
        for name, holds in verdicts.items():
            print(f"{name}: {'HOLDS' if holds else 'FAILED'}")
        print(f"report written to {arguments.output}")
        return 0 if all(verdicts.values()) else 1
    target = arguments.experiment.upper()
    if target == "ALL":
        return _run(list(ALL_EXPERIMENTS))
    if target not in ALL_EXPERIMENTS:
        parser.error(
            f"unknown experiment {arguments.experiment!r}; "
            f"known: {', '.join(ALL_EXPERIMENTS)} or 'all'"
        )
    return _run([target])


if __name__ == "__main__":
    sys.exit(main())
