"""Keyword (inverted) index over text fields.

Trusted cells "keep locally extended metadata: access information,
indexes, keywords". The keyword index tokenizes a text field into
lowercase terms and maintains term -> record-id postings, so keyword
queries (``Contains`` on whole words, or :class:`HasKeyword`) resolve
without scanning.
"""

from __future__ import annotations

import re

from .encoding import Value

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of a text (deduplicated, order-free)."""
    return sorted(set(_TOKEN_PATTERN.findall(text.lower())))


class KeywordIndex:
    """Inverted index: term -> set of record ids."""

    def __init__(self, field: str) -> None:
        self.field = field
        self._postings: dict[str, set[str]] = {}

    def add(self, record_id: str, value: Value) -> None:
        if not isinstance(value, str):
            return
        for term in tokenize(value):
            self._postings.setdefault(term, set()).add(record_id)

    def remove(self, record_id: str, value: Value) -> None:
        if not isinstance(value, str):
            return
        for term in tokenize(value):
            postings = self._postings.get(term)
            if postings is not None:
                postings.discard(record_id)
                if not postings:
                    del self._postings[term]

    def lookup(self, term: str) -> set[str]:
        """Record ids whose field contains the word ``term``."""
        return set(self._postings.get(term.lower(), ()))

    def lookup_all(self, terms: list[str]) -> set[str]:
        """Records containing *every* term (AND semantics)."""
        if not terms:
            return set()
        result = self.lookup(terms[0])
        for term in terms[1:]:
            result &= self.lookup(term)
            if not result:
                break
        return result

    def terms(self) -> list[str]:
        return sorted(self._postings)

    @property
    def entry_count(self) -> int:
        return sum(len(postings) for postings in self._postings.values())

    @property
    def ram_bytes(self) -> int:
        return self.entry_count * 48 + sum(
            len(term) + 32 for term in self._postings
        )
