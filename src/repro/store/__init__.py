"""Embedded data management: encoding, log store, indexes, queries,
time series."""

from .catalog import Catalog, Collection
from .encoding import Record, Value, decode_record, encode_record
from .index import HashIndex, OrderedIndex, intersect_id_sets
from .join import JoinQuery, JoinResult, execute_join
from .keywords import KeywordIndex, tokenize
from .log_store import LogStructuredStore, RecoveryStats
from .page_cache import PageCache
from .query import (
    MATCH_ALL,
    Aggregate,
    And,
    Between,
    Contains,
    Eq,
    HasKeyword,
    Ne,
    Not,
    Or,
    Predicate,
    Query,
    QueryResult,
)
from .timeseries import (
    GRANULARITY_15_MIN,
    GRANULARITY_DAY,
    GRANULARITY_HOUR,
    GRANULARITY_MONTH,
    GRANULARITY_RAW,
    NAMED_GRANULARITIES,
    Bucket,
    TimeSeries,
    energy_kwh,
    load_series,
    persist_series,
    series_record_id,
)
from .zonemap import BlockSummary

__all__ = [
    "Catalog",
    "Collection",
    "Record",
    "Value",
    "decode_record",
    "encode_record",
    "HashIndex",
    "OrderedIndex",
    "KeywordIndex",
    "tokenize",
    "JoinQuery",
    "JoinResult",
    "execute_join",
    "HasKeyword",
    "intersect_id_sets",
    "LogStructuredStore",
    "RecoveryStats",
    "PageCache",
    "BlockSummary",
    "MATCH_ALL",
    "Aggregate",
    "And",
    "Between",
    "Contains",
    "Eq",
    "Ne",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "QueryResult",
    "GRANULARITY_15_MIN",
    "GRANULARITY_DAY",
    "GRANULARITY_HOUR",
    "GRANULARITY_MONTH",
    "GRANULARITY_RAW",
    "NAMED_GRANULARITIES",
    "Bucket",
    "TimeSeries",
    "energy_kwh",
    "load_series",
    "persist_series",
    "series_record_id",
]
