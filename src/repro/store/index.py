"""In-RAM secondary indexes over the embedded store.

Trusted cells "keep locally extended metadata: access information,
indexes, keywords" sufficient "to allow performing queries before
accessing the Cloud". Two index shapes cover the catalog's needs:

* :class:`HashIndex` — equality lookups (keyword, owner, type).
* :class:`OrderedIndex` — range lookups (timestamps, sizes).

Both map a field value to the set/list of record ids holding it and are
maintained incrementally by the catalog. Their RAM footprint is
approximated for budget checks on low-end profiles.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from ..errors import QueryError
from .encoding import Value


class HashIndex:
    """Equality index: value -> set of record ids."""

    def __init__(self, field: str) -> None:
        self.field = field
        self._buckets: dict[Value, set[str]] = {}

    def add(self, record_id: str, value: Value) -> None:
        self._buckets.setdefault(value, set()).add(record_id)

    def add_many(self, entries: Iterable[tuple[str, Value]]) -> None:
        """Bulk insert (batch-ingest path); same result as repeated add."""
        buckets = self._buckets
        for record_id, value in entries:
            bucket = buckets.get(value)
            if bucket is None:
                buckets[value] = {record_id}
            else:
                bucket.add(record_id)

    def remove(self, record_id: str, value: Value) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(record_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Value) -> set[str]:
        """Record ids whose field equals ``value`` (possibly empty)."""
        return set(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Value]:
        return list(self._buckets)

    @property
    def entry_count(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def ram_bytes(self) -> int:
        """Rough footprint: 48 bytes per posting, 32 per distinct value."""
        return self.entry_count * 48 + len(self._buckets) * 32


class OrderedIndex:
    """Range index: sorted (value, record_id) pairs.

    Values must be mutually comparable (all numeric or all strings for
    a given field); mixing raises :class:`QueryError` at insert time so
    corruption is caught where it happens.
    """

    def __init__(self, field: str) -> None:
        self.field = field
        self._entries: list[tuple[Value, str]] = []

    def add(self, record_id: str, value: Value) -> None:
        if value is None:
            raise QueryError(f"cannot order None value in index on {self.field!r}")
        entry = (value, record_id)
        try:
            position = bisect.bisect_left(self._entries, entry)
        except TypeError as exc:
            raise QueryError(
                f"mixed value types in ordered index on {self.field!r}"
            ) from exc
        self._entries.insert(position, entry)

    def add_many(self, entries: Iterable[tuple[str, Value]]) -> None:
        """Bulk insert: extend then sort once (Timsort), instead of one
        O(n) list-insert per posting.

        This is where batch ingest wins at the catalog layer: repeated
        :meth:`add` is quadratic in batch size, while appending a
        sorted run costs one near-linear merge — and the append-only
        common case (time-series ids arriving in order) short-circuits
        to a plain list extend.
        """
        new: list[tuple[Value, str]] = []
        for record_id, value in entries:
            if value is None:
                raise QueryError(
                    f"cannot order None value in index on {self.field!r}"
                )
            new.append((value, record_id))
        if not new:
            return
        try:
            new.sort()
            if self._entries:
                # one cross-batch probe catches batch-vs-existing type
                # mixes before they corrupt the sorted invariant
                self._entries[-1] < new[0]
        except TypeError as exc:
            raise QueryError(
                f"mixed value types in ordered index on {self.field!r}"
            ) from exc
        if not self._entries:
            self._entries = new
        elif self._entries[-1] <= new[0]:
            self._entries.extend(new)
        else:
            self._entries.extend(new)
            self._entries.sort()

    def remove(self, record_id: str, value: Value) -> None:
        entry = (value, record_id)
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            del self._entries[position]

    def range(
        self,
        low: Value = None,
        high: Value = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[str]:
        """Record ids with ``low <= value <= high`` (bounds optional)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._entries, (low,))
        else:
            start = bisect.bisect_right(self._entries, (low, "￿" * 8))
        if high is None:
            stop = len(self._entries)
        elif include_high:
            stop = bisect.bisect_right(self._entries, (high, "￿" * 8))
        else:
            stop = bisect.bisect_left(self._entries, (high,))
        return [record_id for _, record_id in self._entries[start:stop]]

    def minimum(self) -> Value:
        if not self._entries:
            raise QueryError(f"ordered index on {self.field!r} is empty")
        return self._entries[0][0]

    def maximum(self) -> Value:
        if not self._entries:
            raise QueryError(f"ordered index on {self.field!r} is empty")
        return self._entries[-1][0]

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def ram_bytes(self) -> int:
        return self.entry_count * 64


def intersect_id_sets(sets: Iterable[set[str]]) -> set[str]:
    """Intersection of candidate id sets, smallest-first for speed."""
    ordered = sorted(sets, key=len)
    if not ordered:
        return set()
    result = set(ordered[0])
    for other in ordered[1:]:
        result &= other
        if not result:
            break
    return result
