"""Multi-granularity time-series store.

The motivating scenario revolves around one data shape: a certified
time series of meter readings, viewed at different granularities by
different principals (1 Hz for the energy butler, 15-minute aggregates
for household members, daily statistics for the social game, monthly
statistics for the utility). This module provides that shape:

* an append-only series of ``(timestamp, value)`` samples;
* exact aggregation to any bucket width (mean, sum, min, max, count);
* the named granularities from the paper as constants.

Aggregation *is* the privacy mechanism studied in experiment E2 — the
NILM attack consumes the output of :meth:`TimeSeries.resample`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..errors import ConfigurationError, QueryError
from ..obs import get_default as _obs_default
from ..sim.clock import SECONDS_PER_DAY, SECONDS_PER_MONTH

# Series live inside cells and in standalone workloads alike, so their
# cache accounting goes to the process-default scope. Hit/miss deltas
# are how the E2/E3/E12 workloads verify the resample memo keeps paying.
_OBS = _obs_default()
_RESAMPLE_HITS = _OBS.metrics.counter(
    "store.resample.hits", help="resample calls answered from the memo")
_RESAMPLE_MISSES = _OBS.metrics.counter(
    "store.resample.misses", help="resample calls that aggregated afresh")
_APPENDS = _OBS.metrics.counter(
    "store.appends", help="samples appended across all series")

GRANULARITY_RAW = 1  # 1 Hz, the Linky feed
GRANULARITY_15_MIN = 15 * 60
GRANULARITY_HOUR = 3600
GRANULARITY_DAY = SECONDS_PER_DAY
GRANULARITY_MONTH = SECONDS_PER_MONTH

NAMED_GRANULARITIES = {
    "raw-1s": GRANULARITY_RAW,
    "15-min": GRANULARITY_15_MIN,
    "hourly": GRANULARITY_HOUR,
    "daily": GRANULARITY_DAY,
    "monthly": GRANULARITY_MONTH,
}


@dataclass(frozen=True)
class Bucket:
    """One aggregated bucket of a resampled series."""

    start: int  # inclusive bucket start timestamp
    width: int
    count: int
    sum: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    @property
    def end(self) -> int:
        """Exclusive end timestamp."""
        return self.start + self.width


class TimeSeries:
    """An append-only time series with strictly increasing timestamps."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._timestamps: list[int] = []
        self._values: list[float] = []
        # Memoized resample results keyed by (width, align); the
        # workloads re-aggregate the same series at the same
        # granularities dozens of times (E2/E3/E12). Any append
        # invalidates the whole cache.
        self._bucket_cache: dict[tuple[int, int], list[Bucket]] = {}

    def append(self, timestamp: int, value: float) -> None:
        """Append one sample; timestamps must strictly increase."""
        if self._timestamps and timestamp <= self._timestamps[-1]:
            raise ConfigurationError(
                f"timestamps must strictly increase "
                f"({timestamp} after {self._timestamps[-1]})"
            )
        self._timestamps.append(int(timestamp))
        self._values.append(float(value))
        _APPENDS.inc()
        if self._bucket_cache:
            self._bucket_cache.clear()

    def extend(self, samples) -> None:
        """Append an iterable of ``(timestamp, value)`` pairs.

        Single-pass bulk path: monotonicity is validated once over the
        batch (against the current tail), then both columns grow with
        one list-extend each — no per-sample method dispatch.
        """
        timestamps: list[int] = []
        values: list[float] = []
        previous = self._timestamps[-1] if self._timestamps else None
        for timestamp, value in samples:
            timestamp = int(timestamp)
            if previous is not None and timestamp <= previous:
                raise ConfigurationError(
                    f"timestamps must strictly increase "
                    f"({timestamp} after {previous})"
                )
            previous = timestamp
            timestamps.append(timestamp)
            values.append(float(value))
        if not timestamps:
            return
        self._timestamps.extend(timestamps)
        self._values.extend(values)
        _APPENDS.inc(len(timestamps))
        if self._bucket_cache:
            self._bucket_cache.clear()

    def __len__(self) -> int:
        return len(self._timestamps)

    @property
    def start(self) -> int:
        if not self._timestamps:
            raise QueryError(f"time series {self.name!r} is empty")
        return self._timestamps[0]

    @property
    def end(self) -> int:
        """Timestamp of the last sample."""
        if not self._timestamps:
            raise QueryError(f"time series {self.name!r} is empty")
        return self._timestamps[-1]

    def samples(self) -> list[tuple[int, float]]:
        """A copy of all (timestamp, value) pairs."""
        return list(zip(self._timestamps, self._values))

    def window(self, start: int, end: int) -> list[tuple[int, float]]:
        """Samples with ``start <= timestamp < end``."""
        left = bisect_left(self._timestamps, start)
        right = bisect_left(self._timestamps, end)
        return list(zip(self._timestamps[left:right], self._values[left:right]))

    def value_at(self, timestamp: int) -> float:
        """Exact-timestamp lookup; raises if no sample at that instant."""
        position = bisect_left(self._timestamps, timestamp)
        if position < len(self._timestamps) and self._timestamps[position] == timestamp:
            return self._values[position]
        raise QueryError(f"no sample at timestamp {timestamp}")

    def total(self) -> float:
        return sum(self._values)

    def mean(self) -> float:
        if not self._values:
            raise QueryError(f"time series {self.name!r} is empty")
        return sum(self._values) / len(self._values)

    def maximum(self) -> float:
        if not self._values:
            raise QueryError(f"time series {self.name!r} is empty")
        return max(self._values)

    # -- aggregation -----------------------------------------------------------

    def resample(self, width: int, align: int = 0) -> list[Bucket]:
        """Aggregate into buckets of ``width`` seconds.

        Buckets are aligned so that bucket boundaries fall at
        ``align + k * width``. Empty buckets are omitted. The result is
        exactly what a trusted cell would externalize at a chosen
        granularity: per-bucket count/sum/min/max (hence mean).
        """
        if width <= 0:
            raise ConfigurationError("bucket width must be positive")
        cached = self._bucket_cache.get((width, align))
        if cached is not None:
            _RESAMPLE_HITS.inc()
            return list(cached)
        _RESAMPLE_MISSES.inc()
        buckets: list[Bucket] = []
        current_start: int | None = None
        count = 0
        total = 0.0
        minimum = float("inf")
        maximum = float("-inf")
        for timestamp, value in zip(self._timestamps, self._values):
            bucket_start = (timestamp - align) // width * width + align
            if bucket_start != current_start:
                if current_start is not None:
                    buckets.append(
                        Bucket(current_start, width, count, total, minimum, maximum)
                    )
                current_start = bucket_start
                count, total = 0, 0.0
                minimum, maximum = float("inf"), float("-inf")
            count += 1
            total += value
            minimum = min(minimum, value)
            maximum = max(maximum, value)
        if current_start is not None:
            buckets.append(Bucket(current_start, width, count, total, minimum, maximum))
        # Buckets are frozen; hand out shallow copies so callers can
        # mutate their list without corrupting the cache.
        self._bucket_cache[(width, align)] = buckets
        return list(buckets)

    def resampled_series(self, width: int, align: int = 0) -> "TimeSeries":
        """A new series of bucket means at the bucket start timestamps."""
        result = TimeSeries(name=f"{self.name}@{width}s")
        result.extend(
            (bucket.start, bucket.mean) for bucket in self.resample(width, align)
        )
        return result

    def daily_totals(self) -> dict[int, float]:
        """Map of day index -> sum of values that day."""
        return {
            bucket.start // SECONDS_PER_DAY: bucket.sum
            for bucket in self.resample(SECONDS_PER_DAY)
        }

    def monthly_totals(self) -> dict[int, float]:
        """Map of month index -> sum of values that month."""
        return {
            bucket.start // SECONDS_PER_MONTH: bucket.sum
            for bucket in self.resample(SECONDS_PER_MONTH)
        }


def energy_kwh(power_watt_series: TimeSeries, sample_period: int = 1) -> float:
    """Total energy in kWh of a power (watt) series sampled every
    ``sample_period`` seconds."""
    return power_watt_series.total() * sample_period / 3600.0 / 1000.0


# -- durable series (catalog-backed) -----------------------------------------


def series_record_id(timestamp: int) -> str:
    """Record id for one sample: zero-padded so lexicographic order is
    time order (which also makes batch-ingested ordered indexes hit
    their append fast path)."""
    return f"{int(timestamp):010d}"


def persist_series(collection, series: TimeSeries, *, batch: bool = True) -> int:
    """Persist a series into a catalog collection, one record per
    sample: ``{"t": timestamp, "w": value}``.

    ``batch=True`` routes through ``Collection.insert_many`` (the
    page-coalescing hot path); ``batch=False`` is the one-record-at-a-
    time baseline the ingest benchmark compares against. Both produce
    identical stored bytes. Returns the number of samples persisted.
    """
    items = (
        (series_record_id(timestamp), {"t": int(timestamp), "w": float(value)})
        for timestamp, value in zip(series._timestamps, series._values)
    )
    if batch:
        return collection.insert_many(items)
    count = 0
    for record_id, record in items:
        collection.insert(record_id, record)
        count += 1
    return count


def load_series(collection, name: str = "") -> TimeSeries:
    """Rebuild a :class:`TimeSeries` from a collection written by
    :func:`persist_series` (e.g. after reboot recovery)."""
    series = TimeSeries(name=name)
    record_ids = sorted(collection.record_ids())
    records = collection.get_many(record_ids)
    series.extend((record["t"], record["w"]) for record in records)
    return series
