"""Per-block zone maps for the log-structured store.

A zone map (a.k.a. block summary or small materialized aggregate) is
the skip-scan structure embedded databases use when a secondary index
is too RAM-expensive: for every flash block the store remembers, in a
few dozen bytes, the min/max page sequence written there and the
min/max value of every record field flushed into it. A range query can
then prove "no record in this block can match" and skip the block's
pages entirely — the query never pays the device reads.

Summaries are *conservative over everything ever written to the
block*, superseded record versions included, so pruning can only skip
blocks, never matching records. Compaction erases a victim block and
drops its summary; the relocated records rebuild fresh summaries in
their new blocks at flush time.

Summaries also serve recovery: the directory checkpoint persists them,
and their (first sequence, page count) fingerprint is how an
incremental reboot decides whether a block changed since the
checkpoint (see :meth:`LogStructuredStore.recover`).
"""

from __future__ import annotations

from .encoding import Record, Value

# Sentinel distinguishing "field never seen in this block" (prunable
# for any range) from "field seen but not summarizable" (never prune).
_ABSENT = object()


class BlockSummary:
    """Zone map of one flash block: sequences, pages, field bounds."""

    __slots__ = ("min_seq", "max_seq", "pages", "fields")

    def __init__(self) -> None:
        self.min_seq: int | None = None
        self.max_seq: int | None = None
        self.pages = 0
        # field -> (lo, hi) bounds, or None when the block holds values
        # for the field that cannot be ordered (mixed types): such a
        # field can never be pruned in this block.
        self.fields: dict[str, tuple[Value, Value] | None] = {}

    # -- maintenance (called at flush and replay) ---------------------------

    def note_page(self, sequence: int) -> None:
        """Record one page written to this block."""
        if self.min_seq is None:
            self.min_seq = sequence
        self.max_seq = sequence if self.max_seq is None else max(
            self.max_seq, sequence
        )
        self.pages += 1

    def note_record(self, record: Record) -> None:
        """Fold one flushed record's fields into the bounds."""
        for name, value in record.items():
            if value is None:
                continue
            bounds = self.fields.get(name, _ABSENT)
            if bounds is None:
                continue  # already unorderable for this block
            if bounds is _ABSENT:
                self.fields[name] = (value, value)
                continue
            lo, hi = bounds
            try:
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
            except TypeError:
                # mixed types (e.g. int then str): never prune on this
                # field in this block
                self.fields[name] = None
                continue
            self.fields[name] = (lo, hi)

    def note_values(self, name: str, values: list, *,
                    clean: bool = False) -> None:
        """Fold one field's column slice into the bounds in one pass.

        Exactly equivalent to ``note_record({name: v})`` for each value
        in order — including the order-dependent corner cases. Builtin
        ``min``/``max`` keep the *first* extremal element, which is the
        same tie/NaN behaviour as the sequential strict-compare fold,
        but only when comparisons are total: any NaN in the slice (or
        an unorderable mix) drops to the per-value fold. ``clean=True``
        is the caller asserting the slice holds no ``None``/NaN and one
        orderable type (the columnar ingest path proves this from its
        typed arrays), skipping the per-value scans.
        """
        bounds = self.fields.get(name, _ABSENT)
        if bounds is None:
            return  # already unorderable for this block
        if clean:
            if not values:
                return
            lo = min(values)
            hi = max(values)
        else:
            values = [value for value in values if value is not None]
            if not values:
                return
            try:
                has_nan = any(value != value for value in values)
            except TypeError:
                has_nan = True  # exotic __eq__: take the exact path
            if not has_nan:
                try:
                    lo = min(values)
                    hi = max(values)
                except TypeError:
                    has_nan = True  # mixed types inside the slice
            if has_nan:
                for value in values:
                    self.note_record({name: value})
                return
        if bounds is _ABSENT:
            self.fields[name] = (lo, hi)
            return
        cur_lo, cur_hi = bounds
        try:
            if lo < cur_lo:
                cur_lo = lo
            if hi > cur_hi:
                cur_hi = hi
        except TypeError:
            self.fields[name] = None
            return
        self.fields[name] = (cur_lo, cur_hi)

    # -- pruning ------------------------------------------------------------

    def admits(self, field: str, low: Value, high: Value) -> bool:
        """Could any record ever written to this block match
        ``low <= record[field] <= high``? False means the block is
        provably dead for the range and its pages can be skipped."""
        bounds = self.fields.get(field, _ABSENT)
        if bounds is _ABSENT:
            # no record in this block ever carried the field, and a
            # missing field matches no range predicate
            return False
        if bounds is None:
            return True
        lo, hi = bounds
        try:
            if low is not None and hi < low:
                return False
            if high is not None and lo > high:
                return False
        except TypeError:
            return True  # query bounds not comparable with stored type
        return True

    # -- accounting ---------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """Rough footprint: 32 bytes fixed + ~48 per summarized field."""
        return 32 + sum(len(name) + 48 for name in self.fields)

    # -- checkpoint serialization -------------------------------------------

    def to_record(self) -> Record:
        """Flatten into an encodable record (for the checkpoint)."""
        record: Record = {
            "s": self.min_seq, "S": self.max_seq, "p": self.pages,
        }
        for name, bounds in self.fields.items():
            if bounds is None:
                record["x:" + name] = True
            else:
                record["l:" + name] = bounds[0]
                record["h:" + name] = bounds[1]
        return record

    @classmethod
    def from_record(cls, record: Record) -> "BlockSummary":
        summary = cls()
        summary.min_seq = record["s"]
        summary.max_seq = record["S"]
        summary.pages = record["p"]
        for key, value in record.items():
            if key.startswith("x:"):
                summary.fields[key[2:]] = None
            elif key.startswith("l:"):
                name = key[2:]
                summary.fields[name] = (value, record["h:" + name])
        return summary
