"""The metadata catalog: named collections with declared indexes.

This is the embedded database a trusted cell runs locally. Collections
hold records persisted through the log-structured store; fields can be
declared hash- or range-indexed, and queries route through
:mod:`repro.store.query` with an index-aware planner.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError, NotFoundError, QueryError
from ..hardware.flash import NandFlash
from ..hardware.profiles import HardwareProfile
from .encoding import Record
from .index import HashIndex, OrderedIndex
from .keywords import KeywordIndex
from .log_store import LogStructuredStore
from .query import (
    And,
    BatchCandidates,
    Between,
    Eq,
    HasKeyword,
    Predicate,
    Query,
    QueryResult,
    execute,
)


class Collection:
    """One named record collection with optional secondary indexes."""

    def __init__(self, name: str, store: LogStructuredStore) -> None:
        self.name = name
        self._store = store
        self._hash_indexes: dict[str, HashIndex] = {}
        self._ordered_indexes: dict[str, OrderedIndex] = {}
        self._keyword_indexes: dict[str, KeywordIndex] = {}

    # -- index management -----------------------------------------------------

    def create_hash_index(self, field: str) -> None:
        """Declare an equality index on ``field`` (backfills existing rows)."""
        if field in self._hash_indexes:
            raise ConfigurationError(f"hash index on {field!r} already exists")
        index = HashIndex(field)
        for record_id, record in self._store.scan():
            if not record_id.startswith(self._prefix):
                continue
            if field in record:
                index.add(record_id, record[field])
        self._hash_indexes[field] = index

    def create_ordered_index(self, field: str) -> None:
        """Declare a range index on ``field`` (backfills existing rows)."""
        if field in self._ordered_indexes:
            raise ConfigurationError(f"ordered index on {field!r} already exists")
        index = OrderedIndex(field)
        for record_id, record in self._store.scan():
            if not record_id.startswith(self._prefix):
                continue
            if record.get(field) is not None:
                index.add(record_id, record[field])
        self._ordered_indexes[field] = index

    def create_keyword_index(self, field: str) -> None:
        """Declare an inverted keyword index on a text ``field``
        (backfills existing rows)."""
        if field in self._keyword_indexes:
            raise ConfigurationError(f"keyword index on {field!r} already exists")
        index = KeywordIndex(field)
        for record_id, record in self._store.scan():
            if not record_id.startswith(self._prefix):
                continue
            if field in record:
                index.add(record_id, record[field])
        self._keyword_indexes[field] = index

    @property
    def indexed_fields(self) -> dict[str, str]:
        """field -> index kind ("hash", "ordered" or "keyword")."""
        kinds = {field: "hash" for field in self._hash_indexes}
        kinds.update({field: "ordered" for field in self._ordered_indexes})
        kinds.update({field: "keyword" for field in self._keyword_indexes})
        return kinds

    @property
    def index_ram_bytes(self) -> int:
        return (
            sum(index.ram_bytes for index in self._hash_indexes.values())
            + sum(index.ram_bytes for index in self._ordered_indexes.values())
            + sum(index.ram_bytes for index in self._keyword_indexes.values())
        )

    # -- record lifecycle ---------------------------------------------------

    @property
    def _prefix(self) -> str:
        return f"{self.name}/"

    def _full_id(self, record_id: str) -> str:
        return self._prefix + record_id

    def insert(self, record_id: str, record: Record) -> None:
        """Insert or replace a record and maintain indexes."""
        full_id = self._full_id(record_id)
        if self._store.contains(full_id):
            self._unindex(full_id, self._store.get(full_id))
        self._store.put(full_id, record)
        self._index(full_id, record)

    def insert_many(self, items: Iterable[tuple[str, Record]]) -> int:
        """Batch insert: one pass through the store's page-coalescing
        ingest plus bulk index maintenance.

        Produces the same flash image and the same final index state as
        the equivalent sequence of :meth:`insert` calls (replacements —
        including intra-batch duplicates — are unindexed exactly as the
        sequential path would), but pays the per-record catalog
        overhead once per batch: ordered indexes extend-and-sort
        instead of insorting each posting. Returns the number of
        records appended to the log.
        """
        items = [(self._full_id(record_id), record) for record_id, record in items]
        pending: dict[str, Record] = {}
        for full_id, record in items:
            previous = pending.get(full_id)
            if previous is not None:
                self._unindex(full_id, previous)
            elif self._store.contains(full_id):
                self._unindex(full_id, self._store.get(full_id))
            pending[full_id] = record
        count = self._store.insert_many(items)
        for field, index in self._hash_indexes.items():
            index.add_many(
                (full_id, record[field])
                for full_id, record in pending.items()
                if field in record
            )
        for field, index in self._ordered_indexes.items():
            index.add_many(
                (full_id, record[field])
                for full_id, record in pending.items()
                if record.get(field) is not None
            )
        for field, index in self._keyword_indexes.items():
            for full_id, record in pending.items():
                if field in record:
                    index.add(full_id, record[field])
        return count

    def get(self, record_id: str) -> Record:
        return self._store.get(self._full_id(record_id))

    def get_many(self, record_ids: list[str]) -> list[Record]:
        """Fetch several records, reading each flash page at most once."""
        return self._store.get_many(
            [self._full_id(record_id) for record_id in record_ids]
        )

    def contains(self, record_id: str) -> bool:
        return self._store.contains(self._full_id(record_id))

    def delete(self, record_id: str) -> None:
        full_id = self._full_id(record_id)
        if not self._store.contains(full_id):
            raise NotFoundError(f"no record {record_id!r} in {self.name!r}")
        self._unindex(full_id, self._store.get(full_id))
        self._store.delete(full_id)

    def _index(self, full_id: str, record: Record) -> None:
        for field, index in self._hash_indexes.items():
            if field in record:
                index.add(full_id, record[field])
        for field, index in self._ordered_indexes.items():
            if record.get(field) is not None:
                index.add(full_id, record[field])
        for field, index in self._keyword_indexes.items():
            if field in record:
                index.add(full_id, record[field])

    def _unindex(self, full_id: str, record: Record) -> None:
        for field, index in self._hash_indexes.items():
            if field in record:
                index.remove(full_id, record[field])
        for field, index in self._ordered_indexes.items():
            if record.get(field) is not None:
                index.remove(full_id, record[field])
        for field, index in self._keyword_indexes.items():
            if field in record:
                index.remove(full_id, record[field])

    def record_ids(self) -> list[str]:
        prefix = self._prefix
        return [
            full_id[len(prefix):]
            for full_id in self._store.record_ids()
            if full_id.startswith(prefix)
        ]

    def __len__(self) -> int:
        return len(self.record_ids())

    # -- planner hooks -----------------------------------------------------------

    def _candidate_ids(self, predicate: Predicate) -> tuple[set[str] | None, str]:
        """Candidate full-ids from indexes, or (None, "scan")."""
        if isinstance(predicate, Eq) and predicate.field in self._hash_indexes:
            return (
                self._hash_indexes[predicate.field].lookup(predicate.value),
                f"index:{predicate.field}",
            )
        if isinstance(predicate, Between) and predicate.field in self._ordered_indexes:
            ids = self._ordered_indexes[predicate.field].range(
                predicate.low, predicate.high
            )
            return set(ids), f"range:{predicate.field}"
        if isinstance(predicate, HasKeyword) and predicate.field in self._keyword_indexes:
            ids = self._keyword_indexes[predicate.field].lookup_all(
                list(predicate.terms)
            )
            return ids, f"keyword:{predicate.field}"
        if isinstance(predicate, And):
            best: tuple[set[str], str] | None = None
            for child in predicate.children:
                candidate, plan = self._candidate_ids(child)
                if candidate is None:
                    continue
                if best is None or len(candidate) < len(best[0]):
                    best = (candidate, plan)
            if best is not None:
                return best
        return None, "scan"

    def _range_hint(self, predicate: Predicate) -> tuple[str, object, object] | None:
        """An unindexed range/equality constraint usable for zone-map
        block pruning when the planner would otherwise full-scan."""
        if isinstance(predicate, Between):
            return predicate.field, predicate.low, predicate.high
        if isinstance(predicate, Eq) and predicate.value is not None:
            return predicate.field, predicate.value, predicate.value
        if isinstance(predicate, And):
            for child in predicate.children:
                hint = self._range_hint(child)
                if hint is not None:
                    return hint
        return None


class Catalog:
    """A set of collections sharing one flash device and RAM budget."""

    def __init__(
        self,
        flash: NandFlash,
        profile: HardwareProfile | None = None,
        *,
        page_cache_bytes: int | None = None,
        zone_maps: bool = True,
        columnar: bool = True,
        checkpoint_blocks: int = 0,
        checkpoint_interval_pages: int | None = None,
    ) -> None:
        ram_budget = profile.ram_bytes if profile is not None else None
        self.profile = profile
        self.store = LogStructuredStore(
            flash,
            ram_budget_bytes=ram_budget,
            page_cache_bytes=page_cache_bytes,
            zone_maps=zone_maps,
            columnar=columnar,
            checkpoint_blocks=checkpoint_blocks,
            checkpoint_interval_pages=checkpoint_interval_pages,
        )
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create the named collection."""
        if "/" in name:
            raise ConfigurationError("collection names cannot contain '/'")
        if name not in self._collections:
            self._collections[name] = Collection(name, self.store)
        return self._collections[name]

    def collections(self) -> list[str]:
        return sorted(self._collections)

    @property
    def ram_bytes(self) -> int:
        """Store RAM (directory, write buffer, zone maps, resident
        cache pages) plus index RAM, for profile budget checks."""
        return self.store.ram_bytes + sum(
            collection.index_ram_bytes for collection in self._collections.values()
        )

    def query(self, query: Query) -> QueryResult:
        """Execute a query against its collection."""
        if query.collection not in self._collections:
            raise QueryError(f"unknown collection {query.collection!r}")
        collection = self._collections[query.collection]
        flash = self.store.flash
        columnar = self.store.columnar_enabled

        def batch_chunks(field=None, low=None, high=None):
            """Prefix-filtered (keep, batch) chunks from the columnar
            scan — the same row set, in the same order, as the scalar
            scan/scan_range generators."""
            prefix = collection._prefix
            chunks = []
            for chunk_ids, batch in self.store.scan_batches(field, low, high):
                keep = [
                    index for index, full_id in enumerate(chunk_ids)
                    if full_id.startswith(prefix)
                ]
                if not keep:
                    continue
                if len(keep) == len(chunk_ids):
                    keep = None
                chunks.append((keep, batch))
            return BatchCandidates(chunks)

        def fetch_candidates(predicate: Predicate):
            before = flash.reads
            ids, plan = collection._candidate_ids(predicate)
            if ids is None:
                # No index applies; before surrendering to a full scan,
                # try zone-map block pruning on a range/equality
                # constraint. scan_range yields a block-granular
                # superset that execute() re-filters, exactly like
                # index candidates.
                hint = (
                    collection._range_hint(predicate)
                    if self.store.zone_maps_enabled else None
                )
                if hint is not None:
                    hint_field, low, high = hint
                    if columnar:
                        chunks = batch_chunks(hint_field, low, high)
                        return (
                            chunks, f"zonemap:{hint_field}",
                            flash.reads - before,
                        )
                    prefix = collection._prefix
                    records = [
                        record
                        for full_id, record in self.store.scan_range(
                            hint_field, low, high
                        )
                        if full_id.startswith(prefix)
                    ]
                    return records, f"zonemap:{hint_field}", flash.reads - before
                return None, "scan", 0
            records = self.store.get_many(sorted(ids))
            return records, plan, flash.reads - before

        def fetch_all():
            before = flash.reads
            if columnar:
                return batch_chunks(), flash.reads - before
            prefix = collection._prefix
            records = [
                record
                for full_id, record in self.store.scan()
                if full_id.startswith(prefix)
            ]
            return records, flash.reads - before

        result = execute(query, fetch_candidates, fetch_all)
        if self.profile is not None:
            # Abstract CPU accounting: one op per record examined.
            self.profile.cpu_seconds(result.records_examined)
        return result
