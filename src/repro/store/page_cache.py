"""Bounded LRU page cache over simulated NAND flash reads.

Every :meth:`NandFlash.read_page` costs device time and energy, and the
store's hot paths (repeated range queries, compaction relocation,
index-driven fetches) re-read the same pages constantly. The cache
keeps the most recently used page images in RAM under a configurable
byte budget, so repeated access stops paying device cost — the MILo-DB
move the 1 Hz Linky vertical needs.

Correctness hinges on one invariant: NAND pages are immutable between
erases (the device enforces erase-before-rewrite), so a cached page can
only go stale when its block is erased. The cache subscribes to the
device's erase notifications and drops the block's pages right there,
which is what the invalidation tests pin down.

Hit/miss counters go to the process-default observability scope
(pay-as-you-go: a disabled scope records nothing); the plain ``hits``
/ ``misses`` attributes are cost oracles that always count, like the
flash device's own counters.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError
from ..hardware.flash import NandFlash
from ..obs import get_default as _obs_default

_OBS = _obs_default()
_CACHE_HITS = _OBS.metrics.counter(
    "store.cache.hit", help="page reads served from the LRU page cache")
_CACHE_MISSES = _OBS.metrics.counter(
    "store.cache.miss", help="page reads that went to the flash device")


class PageCache:
    """LRU cache of page images, bounded by ``capacity_bytes``.

    Reads route through :meth:`read_page`; the store also write-
    allocates freshly flushed pages via :meth:`note_write` so a query
    right after a flush is warm. Block erases invalidate eagerly via
    the device's erase listener.
    """

    def __init__(self, flash: NandFlash, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("page cache capacity must be positive")
        self.flash = flash
        self.capacity_bytes = capacity_bytes
        self.capacity_pages = max(1, capacity_bytes // flash.timings.page_size)
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        flash.add_erase_listener(self.invalidate_block)

    # -- read path ----------------------------------------------------------

    def read_page(self, page: int) -> bytes:
        """The page image, from cache if resident (no device cost)."""
        data = self._pages.get(page)
        if data is not None:
            self._pages.move_to_end(page)
            self.hits += 1
            _CACHE_HITS.inc()
            return data
        self.misses += 1
        _CACHE_MISSES.inc()
        data = self.flash.read_page(page)
        self._insert(page, data)
        return data

    def note_write(self, page: int, data: bytes) -> None:
        """Write-allocate a freshly programmed page (padded image)."""
        self._insert(page, data.ljust(self.flash.timings.page_size, b"\xff"))

    def _insert(self, page: int, data: bytes) -> None:
        self._pages[page] = data
        self._pages.move_to_end(page)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1

    # -- invalidation -------------------------------------------------------

    def invalidate_block(self, block: int) -> None:
        """Drop every cached page of an erased block."""
        pages_per_block = self.flash.timings.pages_per_block
        start = block * pages_per_block
        for page in range(start, start + pages_per_block):
            if self._pages.pop(page, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        self._pages.clear()

    # -- accounting ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def ram_bytes(self) -> int:
        """Bytes of page images currently resident."""
        return len(self._pages) * self.flash.timings.page_size

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        """Counter snapshot for benchmark rows."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "resident_pages": len(self._pages),
            "hit_ratio": round(self.hit_ratio, 4),
        }
