"""A small query engine over the metadata catalog.

Queries are predicate trees evaluated over one collection, with
projection and aggregation. The planner uses a hash index for equality
predicates and an ordered index for range predicates when the catalog
declares one on the relevant field; otherwise it falls back to a full
scan. The choice is visible in :class:`QueryResult.plan` so experiment
E8 can report index-vs-scan crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import QueryError
from .encoding import HAVE_NUMPY, ColumnBatch, Record, Value

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised on minimal installs
    _np = None

# Integers up to 2**53 convert to float64 exactly; beyond that numpy's
# int->float promotion in mixed compares diverges from Python's exact
# semantics, so the vectorized lane refuses the comparison.
_FLOAT_EXACT_INT = 2**53
_INT64_LO, _INT64_HI = -(2**63), 2**63 - 1


def _int_bound_ok(value: int) -> bool:
    return _INT64_LO <= value <= _INT64_HI


def _float_bound_ok(value) -> bool:
    if type(value) is float:
        return value == value  # NaN bounds keep Python's odd semantics
    return type(value) is int and -_FLOAT_EXACT_INT <= value <= _FLOAT_EXACT_INT


# -- predicate tree ---------------------------------------------------------


class Predicate:
    """Base predicate; subclasses implement :meth:`matches`.

    :meth:`matches_batch` is the vectorized lane: given a
    :class:`ColumnBatch` it returns a boolean mask over the batch's
    rows (meaningful only at non-scalar rows, like
    :meth:`ColumnBatch.numeric_view`), or ``None`` when this predicate
    cannot be evaluated vectorized — callers then fall back to
    per-record :meth:`matches`, so the two lanes always agree.
    """

    def matches(self, record: Record) -> bool:
        raise NotImplementedError

    def matches_batch(self, batch: ColumnBatch):
        return None

    def and_(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def or_(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


def _eq_mask(batch: ColumnBatch, field: str, value: Value):
    """Vectorized ``column == value`` mask, or ``None`` when the
    comparison cannot be proven exact (non-numeric columns, bools,
    values outside the column dtype's exact range)."""
    if not HAVE_NUMPY or not batch.fields:
        return None
    if field not in batch.fields:
        # record.get() is None at every columnar row
        return _np.full(batch.count, value is None)
    view = batch.numeric_view(field)
    if view is None:
        return None
    kind, arr = view
    if value is None:
        return _np.zeros(batch.count, dtype=bool)
    if kind == "i":
        if type(value) is int and _int_bound_ok(value):
            return arr == value
        return None
    if _float_bound_ok(value) or (type(value) is float and value != value):
        return arr == value  # NaN value: all-False, like Python
    return None


@dataclass(frozen=True)
class Eq(Predicate):
    """``record[field] == value``."""

    field: str
    value: Value

    def matches(self, record: Record) -> bool:
        return record.get(self.field) == self.value

    def matches_batch(self, batch: ColumnBatch):
        return _eq_mask(batch, self.field, self.value)


@dataclass(frozen=True)
class Ne(Predicate):
    """``record[field] != value``."""

    field: str
    value: Value

    def matches(self, record: Record) -> bool:
        return record.get(self.field) != self.value

    def matches_batch(self, batch: ColumnBatch):
        mask = _eq_mask(batch, self.field, self.value)
        return None if mask is None else ~mask


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= record[field] <= high``; either bound may be None."""

    field: str
    low: Value = None
    high: Value = None

    def matches(self, record: Record) -> bool:
        value = record.get(self.field)
        if value is None:
            return False
        try:
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value > self.high:
                return False
        except TypeError:
            return False
        return True

    def matches_batch(self, batch: ColumnBatch):
        if not HAVE_NUMPY or not batch.fields:
            return None
        if self.field not in batch.fields:
            return _np.zeros(batch.count, dtype=bool)
        view = batch.numeric_view(self.field)
        if view is None:
            return None
        kind, arr = view

        def bound_ok(bound) -> bool:
            if bound is None:
                return True
            if kind == "i":
                return type(bound) is int and _int_bound_ok(bound)
            return _float_bound_ok(bound)

        if not (bound_ok(self.low) and bound_ok(self.high)):
            return None
        # Mirror the scalar short-circuit shape — ``not (value < low)``
        # rather than ``value >= low`` — so float NaN cells, which fail
        # every comparison, pass both bound checks exactly as the
        # scalar path does.
        mask = _np.ones(batch.count, dtype=bool)
        if self.low is not None:
            mask &= ~(arr < self.low)
        if self.high is not None:
            mask &= ~(arr > self.high)
        return mask


@dataclass(frozen=True)
class Contains(Predicate):
    """Substring match on a string field (keyword search)."""

    field: str
    needle: str

    def matches(self, record: Record) -> bool:
        value = record.get(self.field)
        return isinstance(value, str) and self.needle in value

    def matches_batch(self, batch: ColumnBatch):
        if not HAVE_NUMPY or not batch.fields:
            return None
        if self.field not in batch.fields:
            return _np.zeros(batch.count, dtype=bool)  # None is not a str
        return None


@dataclass(frozen=True)
class HasKeyword(Predicate):
    """Whole-word match on a text field; all ``terms`` must appear.

    This is the indexable form of keyword search: a catalog with a
    keyword index on the field answers it from postings.
    """

    field: str
    terms: tuple[str, ...]

    def matches(self, record: Record) -> bool:
        from .keywords import tokenize

        value = record.get(self.field)
        if not isinstance(value, str):
            return False
        tokens = set(tokenize(value))
        return all(term.lower() in tokens for term in self.terms)

    def matches_batch(self, batch: ColumnBatch):
        if not HAVE_NUMPY or not batch.fields:
            return None
        if self.field not in batch.fields:
            return _np.zeros(batch.count, dtype=bool)  # None is not a str
        return None


class And(Predicate):
    """Conjunction of child predicates."""

    def __init__(self, *children: Predicate) -> None:
        if not children:
            raise QueryError("And requires at least one child")
        self.children = children

    def matches(self, record: Record) -> bool:
        return all(child.matches(record) for child in self.children)

    def matches_batch(self, batch: ColumnBatch):
        mask = None
        for child in self.children:
            child_mask = child.matches_batch(batch)
            if child_mask is None:
                return None
            mask = child_mask if mask is None else mask & child_mask
        return mask


class Or(Predicate):
    """Disjunction of child predicates."""

    def __init__(self, *children: Predicate) -> None:
        if not children:
            raise QueryError("Or requires at least one child")
        self.children = children

    def matches(self, record: Record) -> bool:
        return any(child.matches(record) for child in self.children)

    def matches_batch(self, batch: ColumnBatch):
        mask = None
        for child in self.children:
            child_mask = child.matches_batch(batch)
            if child_mask is None:
                return None
            mask = child_mask if mask is None else mask | child_mask
        return mask


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def matches(self, record: Record) -> bool:
        return not self.child.matches(record)

    def matches_batch(self, batch: ColumnBatch):
        mask = self.child.matches_batch(batch)
        return None if mask is None else ~mask


class TruePredicate(Predicate):
    """Matches everything (the default when no filter is given)."""

    def matches(self, record: Record) -> bool:
        return True

    def matches_batch(self, batch: ColumnBatch):
        if not HAVE_NUMPY:
            return None
        return _np.ones(batch.count, dtype=bool)


MATCH_ALL = TruePredicate()


# -- aggregation -------------------------------------------------------------

_AGGREGATORS: dict[str, Callable[[list[float]], float]] = {
    "count": lambda values: float(len(values)),
    "sum": lambda values: float(sum(values)),
    "avg": lambda values: sum(values) / len(values) if values else float("nan"),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


@dataclass(frozen=True)
class Aggregate:
    """An aggregate specification: function over a numeric field.

    ``count`` ignores the field (pass any name or ``"*"``).
    """

    function: str
    field: str = "*"

    def __post_init__(self) -> None:
        if self.function not in _AGGREGATORS:
            raise QueryError(
                f"unknown aggregate {self.function!r}; known: {sorted(_AGGREGATORS)}"
            )

    def compute(self, records: list[Record]) -> float:
        if self.function == "count":
            return float(len(records))
        values: list[float] = []
        for record in records:
            value = record.get(self.field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            values.append(float(value))
        if not values and self.function in ("min", "max"):
            raise QueryError(f"{self.function} over empty/non-numeric field {self.field!r}")
        return _AGGREGATORS[self.function](values)


# -- query and result ---------------------------------------------------------


@dataclass
class Query:
    """A declarative query over one collection."""

    collection: str
    where: Predicate = field(default_factory=lambda: MATCH_ALL)
    project: list[str] | None = None  # None = all fields
    aggregates: list[Aggregate] | None = None
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None


@dataclass
class QueryResult:
    """Rows plus the execution plan and cost counters."""

    rows: list[dict[str, Any]]
    plan: str  # "index:<field>", "range:<field>" or "scan"
    records_examined: int
    flash_reads: int

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError("scalar() requires exactly one row and one column")
        return next(iter(self.rows[0].values()))


class BatchCandidates:
    """Candidate rows delivered as columnar chunks.

    ``chunks`` is a list of ``(keep, batch)`` pairs: ``batch`` is a
    :class:`ColumnBatch` and ``keep`` the row indexes to consider
    (``None`` = every row). The catalog's scan paths hand these to
    :func:`execute`, which filters them vectorized and materializes
    record dicts only for matching rows.
    """

    __slots__ = ("chunks",)

    def __init__(self, chunks) -> None:
        self.chunks = chunks


def _filter_batches(where: Predicate, candidates: BatchCandidates):
    """Vectorized equivalent of ``[r for r in rows if where.matches(r)]``
    over columnar chunks; returns ``(matched_records, examined)``."""
    matched: list[Record] = []
    examined = 0
    for keep, batch in candidates.chunks:
        examined += batch.count if keep is None else len(keep)
        mask = where.matches_batch(batch)
        row = batch.row
        if mask is None:
            indexes = range(batch.count) if keep is None else keep
            for index in indexes:
                record = row(index)
                if where.matches(record):
                    matched.append(record)
            continue
        scalar_rows = batch.scalar_rows
        if keep is None and not scalar_rows:
            matched.extend(
                row(index) for index in _np.flatnonzero(mask).tolist()
            )
            continue
        indexes = range(batch.count) if keep is None else keep
        for index in indexes:
            if index in scalar_rows:
                record = scalar_rows[index]
                if where.matches(record):
                    matched.append(record)
            elif mask[index]:
                matched.append(row(index))
    return matched, examined


def _project(record: Record, fields: list[str] | None) -> dict[str, Any]:
    if fields is None:
        return dict(record)
    return {name: record.get(name) for name in fields}


def _apply_order_limit(rows: list[dict[str, Any]], query: Query) -> list[dict[str, Any]]:
    if query.order_by is not None:
        rows = sorted(
            rows,
            key=lambda row: (row.get(query.order_by) is None, row.get(query.order_by)),
            reverse=query.descending,
        )
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def execute(query: Query, fetch_candidates, fetch_all) -> QueryResult:
    """Run ``query`` against a collection.

    ``fetch_candidates(predicate)`` returns ``(records, plan)`` where
    ``records`` may be a superset filtered again here (indexes are a
    pre-filter); ``fetch_all()`` returns every record. Both are
    supplied by the catalog, which also exposes flash counters.
    """
    candidates, plan, flash_reads = fetch_candidates(query.where)
    if candidates is None:
        candidates, flash_reads = fetch_all()
        plan = "scan"
    if isinstance(candidates, BatchCandidates):
        matched, examined = _filter_batches(query.where, candidates)
    else:
        matched = [
            record for record in candidates if query.where.matches(record)
        ]
        examined = len(candidates)

    if query.aggregates:
        rows = _apply_order_limit(_aggregate_rows(query, matched), query)
    else:
        # Order and limit on full records, then project, so a query may
        # sort by a field it does not return.
        ordered = _apply_order_limit([dict(record) for record in matched], query)
        rows = [_project(record, query.project) for record in ordered]
    return QueryResult(
        rows=rows, plan=plan, records_examined=examined, flash_reads=flash_reads
    )


def _aggregate_rows(query: Query, matched: list[Record]) -> list[dict[str, Any]]:
    aggregates = query.aggregates or []
    if query.group_by is None:
        row = {
            f"{aggregate.function}({aggregate.field})": aggregate.compute(matched)
            for aggregate in aggregates
        }
        return [row]
    groups: dict[Value, list[Record]] = {}
    for record in matched:
        groups.setdefault(record.get(query.group_by), []).append(record)
    rows = []
    for group_key in sorted(groups, key=lambda value: (value is None, str(value))):
        row: dict[str, Any] = {query.group_by: group_key}
        for aggregate in aggregates:
            row[f"{aggregate.function}({aggregate.field})"] = aggregate.compute(
                groups[group_key]
            )
        rows.append(row)
    return rows
