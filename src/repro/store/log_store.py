"""Log-structured record store over simulated NAND flash.

Embedded secure microcontrollers cannot update flash in place, so the
store is append-only: inserts and deletes are log entries packed into
pages, written strictly sequentially. A RAM-resident directory maps
record ids to their latest log location; compaction rewrites live
records into fresh blocks and erases the old ones.

This is the layer that makes experiment E8 meaningful: every operation
has a flash cost visible in the device counters, and the RAM directory
is bounded by the profile's RAM budget.
"""

from __future__ import annotations

from ..errors import CapacityError, NotFoundError, StorageError
from ..hardware.flash import NandFlash
from .encoding import Record, decode_record, encode_record

_ENTRY_INSERT = 1
_ENTRY_DELETE = 2


class LogStructuredStore:
    """Append-only record store with id-based lookup.

    Records are ``dict`` field maps (see :mod:`repro.store.encoding`)
    keyed by a caller-supplied string id. A record must fit in one
    flash page after encoding.
    """

    def __init__(self, flash: NandFlash, ram_budget_bytes: int | None = None) -> None:
        self.flash = flash
        self._page_size = flash.timings.page_size
        # id -> (page, offset, length); None means deleted
        self._directory: dict[str, tuple[int, int, int]] = {}
        self._buffer = bytearray()
        self._buffer_entries: list[tuple[str, int, int, int]] = []  # id, kind, off, len
        self._live_per_block: dict[int, int] = {}
        # Block-granular allocation: one active block receives pages
        # sequentially; erased blocks return to the free list; fresh
        # blocks come from the tail.
        self._tail_block = 0
        self._active_block: int | None = None
        self._active_offset = 0
        self._free_blocks: list[int] = []
        self._allocated_pages = 0
        # Every flushed page starts with a monotone sequence number so
        # a rebooted cell can rebuild its RAM directory by log replay.
        self._page_sequence = 0
        self._ram_budget = ram_budget_bytes
        self.inserts = 0
        self.deletes = 0

    # -- RAM accounting -----------------------------------------------------

    _DIRECTORY_ENTRY_BYTES = 48  # id hash + location tuple, order of magnitude

    @property
    def directory_ram_bytes(self) -> int:
        """Approximate RAM held by the directory (for budget checks)."""
        return len(self._directory) * self._DIRECTORY_ENTRY_BYTES + len(self._buffer)

    def _check_ram(self) -> None:
        if self._ram_budget is not None and self.directory_ram_bytes > self._ram_budget:
            raise CapacityError(
                f"record directory exceeds RAM budget "
                f"({self.directory_ram_bytes} > {self._ram_budget} bytes)"
            )

    # -- log entry framing ----------------------------------------------------

    @staticmethod
    def _frame(kind: int, record_id: str, payload: bytes) -> bytes:
        id_bytes = record_id.encode()
        return (
            bytes([kind])
            + len(id_bytes).to_bytes(2, "big")
            + id_bytes
            + len(payload).to_bytes(2, "big")
            + payload
        )

    _PAGE_HEADER_BYTES = 8

    def _flush_buffer(self) -> None:
        if not self._buffer_entries:
            return
        page = self._allocate_page()
        self._page_sequence += 1
        page_data = self._page_sequence.to_bytes(self._PAGE_HEADER_BYTES, "big")
        page_data += bytes(self._buffer)
        self.flash.write_page(page, page_data)
        block = self.flash.block_of(page)
        for record_id, kind, offset, length in self._buffer_entries:
            shifted = offset + self._PAGE_HEADER_BYTES
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                self._directory[record_id] = (page, shifted, length)
                self._live_per_block[block] = self._live_per_block.get(block, 0) + 1
            else:
                self._retire(record_id)
                self._directory.pop(record_id, None)
        self._buffer = bytearray()
        self._buffer_entries = []

    def _retire(self, record_id: str) -> None:
        """Decrement the live count of the block holding the old version."""
        location = self._directory.get(record_id)
        if location is None:
            return
        old_block = self.flash.block_of(location[0])
        remaining = self._live_per_block.get(old_block, 0) - 1
        if remaining > 0:
            self._live_per_block[old_block] = remaining
        else:
            self._live_per_block.pop(old_block, None)

    def _allocate_page(self) -> int:
        pages_per_block = self.flash.timings.pages_per_block
        if self._active_block is None or self._active_offset >= pages_per_block:
            if self._free_blocks:
                self._active_block = self._free_blocks.pop(0)
            else:
                if self._tail_block >= self.flash.block_count:
                    raise CapacityError("flash device is full; compact first")
                self._active_block = self._tail_block
                self._tail_block += 1
            self._active_offset = 0
        page = self._active_block * pages_per_block + self._active_offset
        self._active_offset += 1
        self._allocated_pages += 1
        return page

    def _append(self, kind: int, record_id: str, payload: bytes) -> None:
        frame = self._frame(kind, record_id, payload)
        usable = self._page_size - self._PAGE_HEADER_BYTES
        if len(frame) > usable:
            raise StorageError(
                f"record {record_id!r} ({len(frame)} bytes framed) exceeds "
                f"usable page size {usable}"
            )
        if len(self._buffer) + len(frame) > usable:
            self._flush_buffer()
        offset = len(self._buffer)
        self._buffer.extend(frame)
        payload_offset = offset + 1 + 2 + len(record_id.encode()) + 2
        self._buffer_entries.append((record_id, kind, payload_offset, len(payload)))
        self._check_ram()

    # -- public API ---------------------------------------------------------

    def put(self, record_id: str, record: Record) -> None:
        """Insert or replace the record stored under ``record_id``."""
        self._append(_ENTRY_INSERT, record_id, encode_record(record))
        self.inserts += 1

    def delete(self, record_id: str) -> None:
        """Delete a record (raises :class:`NotFoundError` if absent)."""
        if not self.contains(record_id):
            raise NotFoundError(f"no record {record_id!r}")
        self._append(_ENTRY_DELETE, record_id, b"")
        self.deletes += 1

    def contains(self, record_id: str) -> bool:
        last_buffered_kind = None
        for entry_id, kind, _, _ in self._buffer_entries:
            if entry_id == record_id:
                last_buffered_kind = kind
        if last_buffered_kind is not None:
            return last_buffered_kind == _ENTRY_INSERT
        return record_id in self._directory

    def get(self, record_id: str) -> Record:
        """Fetch the latest version of a record (one page read, unless
        the record is still in the write buffer)."""
        buffered = None
        for entry_id, kind, offset, length in self._buffer_entries:
            if entry_id == record_id:
                buffered = (kind, offset, length)
        if buffered is not None:
            kind, offset, length = buffered
            if kind == _ENTRY_DELETE:
                raise NotFoundError(f"no record {record_id!r}")
            return decode_record(bytes(self._buffer[offset : offset + length]))
        location = self._directory.get(record_id)
        if location is None:
            raise NotFoundError(f"no record {record_id!r}")
        page, offset, length = location
        data = self.flash.read_page(page)
        return decode_record(data[offset : offset + length])

    def get_many(self, record_ids: list[str]) -> list[Record]:
        """Fetch several records, reading each flash page at most once.

        This is what an index-driven fetch uses: postings that share a
        page cost a single page read.
        """
        buffered = [record_id for record_id in record_ids
                    if any(entry_id == record_id
                           for entry_id, _, _, _ in self._buffer_entries)]
        flushed = [record_id for record_id in record_ids
                   if record_id not in set(buffered)]
        page_cache: dict[int, bytes] = {}
        results: dict[str, Record] = {}
        for record_id in flushed:
            location = self._directory.get(record_id)
            if location is None:
                raise NotFoundError(f"no record {record_id!r}")
            page, offset, length = location
            if page not in page_cache:
                page_cache[page] = self.flash.read_page(page)
            results[record_id] = decode_record(
                page_cache[page][offset : offset + length]
            )
        for record_id in buffered:
            results[record_id] = self.get(record_id)
        return [results[record_id] for record_id in record_ids]

    def flush(self) -> None:
        """Force buffered entries to flash (partial page write)."""
        self._flush_buffer()

    def record_ids(self) -> list[str]:
        """All live record ids (buffered writes included), sorted."""
        ids = set(self._directory)
        for entry_id, kind, _, _ in self._buffer_entries:
            if kind == _ENTRY_INSERT:
                ids.add(entry_id)
            else:
                ids.discard(entry_id)
        return sorted(ids)

    def scan(self):
        """Iterate ``(record_id, record)`` over all live records.

        Reads each flash page at most once (records are grouped by
        page), so this is the honest full-scan baseline that E8
        compares against index lookups.
        """
        buffered_ids = {entry_id for entry_id, _, _, _ in self._buffer_entries}
        by_page: dict[int, list[tuple[str, int, int]]] = {}
        for record_id, (page, offset, length) in self._directory.items():
            if record_id not in buffered_ids:
                by_page.setdefault(page, []).append((record_id, offset, length))
        for page in sorted(by_page):
            data = self.flash.read_page(page)
            for record_id, offset, length in sorted(by_page[page], key=lambda e: e[1]):
                yield record_id, decode_record(data[offset : offset + length])
        for entry_id in sorted(buffered_ids):
            if self.contains(entry_id):
                yield entry_id, self.get(entry_id)

    def __len__(self) -> int:
        return len(self.record_ids())

    # -- compaction -----------------------------------------------------------

    @property
    def pages_used(self) -> int:
        """Pages currently holding log data (allocated, not yet erased)."""
        return self._allocated_pages

    def _used_blocks(self) -> list[int]:
        """Blocks currently holding log data (including the active one)."""
        free = set(self._free_blocks)
        return [
            block for block in range(self._tail_block)
            if block not in free
        ]

    def compact(self) -> int:
        """Full compaction: stage the live set in RAM, erase every used
        block, and rewrite the live records from scratch.

        This is the stop-the-world strategy of the smallest embedded
        log stores; it needs no reserved space and its full cost (page
        reads + block erases + page writes) lands in the flash
        counters. Returns the number of blocks erased. See
        :meth:`compact_incremental` for the pay-as-you-go alternative.
        """
        self._flush_buffer()
        live = [(record_id, self.get(record_id)) for record_id in self.record_ids()]
        used = self._used_blocks()
        for block in used:
            self.flash.erase_block(block)
        self._directory.clear()
        self._live_per_block.clear()
        self._tail_block = 0
        self._active_block = None
        self._active_offset = 0
        self._free_blocks = []
        self._allocated_pages = 0
        for record_id, record in live:
            self._append(_ENTRY_INSERT, record_id, encode_record(record))
        self._flush_buffer()
        return len(used)

    @classmethod
    def recover(cls, flash: NandFlash,
                ram_budget_bytes: int | None = None) -> "LogStructuredStore":
        """Rebuild a store from a flash device after a reboot.

        The RAM directory is volatile; a restarted cell reconstructs it
        by scanning every programmed page, ordering pages by their
        sequence headers, and replaying the log entries in write order.
        The scan cost (one read per written page) lands in the flash
        counters, exactly as it would on real hardware.
        """
        store = cls(flash, ram_budget_bytes=ram_budget_bytes)
        pages_per_block = flash.timings.pages_per_block
        sequenced: list[tuple[int, int, bytes]] = []
        for page in flash.written_pages():
            data = flash.read_page(page)
            sequence = int.from_bytes(data[: cls._PAGE_HEADER_BYTES], "big")
            sequenced.append((sequence, page, data))
        sequenced.sort()
        for sequence, page, data in sequenced:
            store._replay_page(page, data)
            store._page_sequence = max(store._page_sequence, sequence)
        # Rebuild the allocator: tail past the last programmed block;
        # the block with trailing unprogrammed pages (at most one, by
        # the sequential-write discipline) resumes as the active block;
        # fully-erased blocks below the tail return to the free list.
        written = set(flash.written_pages())
        blocks_with_data = sorted(
            {flash.block_of(page) for page in written}
        )
        store._allocated_pages = len(written)
        if blocks_with_data:
            store._tail_block = blocks_with_data[-1] + 1
            store._free_blocks = [
                block for block in range(store._tail_block)
                if block not in blocks_with_data
            ]
            # The sequential-program discipline guarantees at most one
            # partially-filled block: whatever was active at shutdown
            # (which, after GC recycling, need not be the highest one).
            for block in blocks_with_data:
                used_in_block = sum(
                    1 for page in written
                    if flash.block_of(page) == block
                )
                if used_in_block < pages_per_block:
                    store._active_block = block
                    store._active_offset = used_in_block
                    break
        return store

    def _replay_page(self, page: int, data: bytes) -> None:
        """Apply one page's log entries to the directory."""
        offset = self._PAGE_HEADER_BYTES
        block = self.flash.block_of(page)
        while offset + 5 <= len(data):
            kind = data[offset]
            if kind not in (_ENTRY_INSERT, _ENTRY_DELETE):
                break  # 0xFF padding: end of entries on this page
            id_length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            id_start = offset + 3
            payload_length = int.from_bytes(
                data[id_start + id_length : id_start + id_length + 2], "big"
            )
            payload_start = id_start + id_length + 2
            if payload_start + payload_length > len(data):
                break  # torn write: ignore the partial tail entry
            record_id = data[id_start : id_start + id_length].decode()
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                self._directory[record_id] = (
                    page, payload_start, payload_length,
                )
                self._live_per_block[block] = (
                    self._live_per_block.get(block, 0) + 1
                )
            else:
                self._retire(record_id)
                self._directory.pop(record_id, None)
            offset = payload_start + payload_length

    def compact_incremental(self, max_victims: int = 1) -> int:
        """Victim-block garbage collection: relocate the live records of
        the emptiest full blocks, erase them, recycle them.

        The classic flash-GC strategy: cost is proportional to the
        *live* data in the victims (often near zero for churn-heavy
        workloads) instead of the whole store, at the price of
        bookkeeping and potentially uneven wear. Returns the number of
        blocks reclaimed; picking fewer than ``max_victims`` (or none)
        happens when no full, non-active block exists.
        """
        self._flush_buffer()
        pages_per_block = self.flash.timings.pages_per_block
        candidates = [
            block for block in self._used_blocks()
            if block != self._active_block
        ]
        victims = sorted(
            candidates, key=lambda block: self._live_per_block.get(block, 0)
        )[:max_victims]
        reclaimed = 0
        for victim in victims:
            live_ids = [
                record_id
                for record_id, (page, _, _) in self._directory.items()
                if self.flash.block_of(page) == victim
            ]
            if live_ids:
                relocated = self.get_many(sorted(live_ids))
                for record_id, record in zip(sorted(live_ids), relocated):
                    self._append(_ENTRY_INSERT, record_id, encode_record(record))
                self._flush_buffer()
            self.flash.erase_block(victim)
            self._live_per_block.pop(victim, None)
            self._free_blocks.append(victim)
            self._allocated_pages -= pages_per_block
            reclaimed += 1
        return reclaimed
