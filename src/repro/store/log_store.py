"""Log-structured record store over simulated NAND flash.

Embedded secure microcontrollers cannot update flash in place, so the
store is append-only: inserts and deletes are log entries packed into
pages, written strictly sequentially. A RAM-resident directory maps
record ids to their latest log location; compaction rewrites live
records into fresh blocks and erases the old ones.

This is the layer that makes experiment E8 meaningful: every operation
has a flash cost visible in the device counters, and the RAM directory
is bounded by the profile's RAM budget.

The 1 Hz Linky vertical (86,400 records/day through one cell) adds the
scaling machinery embedded PDS engines rely on:

* **batch ingest** — :meth:`insert_many` coalesces encoded records
  through the page buffer and pays one flash program per *page*, with
  none of the per-record call overhead of :meth:`put`;
* **page cache** — an optional bounded LRU
  (:class:`~repro.store.page_cache.PageCache`) over device reads,
  invalidated by block erases through the device's erase listener;
* **zone maps** — per-block :class:`~repro.store.zonemap.BlockSummary`
  records (min/max sequence + field bounds, written at flush) let
  :meth:`scan_range` skip provably dead blocks;
* **checkpointed recovery** — :meth:`checkpoint` persists the
  directory and zone maps into a reserved flash region, so a reboot
  replays only the pages written since, not the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import (
    CapacityError,
    ConfigurationError,
    NotFoundError,
    StorageError,
)
from ..hardware.flash import NandFlash
from ..obs import get_default as _obs_default
from .encoding import Record, Value, decode_record, encode_record
from .page_cache import PageCache
from .zonemap import BlockSummary

_ENTRY_INSERT = 1
_ENTRY_DELETE = 2

# Store instruments live on the process-default scope (stores have no
# world). Bind the instruments, not their values: the test fixture
# resets the registry in place between tests.
_OBS = _obs_default()
_FLUSHES = _OBS.metrics.counter(
    "store.flush", help="page-buffer flushes (one flash page program each)")
_COMPACTIONS = _OBS.metrics.counter(
    "store.compaction", help="compaction passes (full or incremental)")
_RECOVERY_PAGES = _OBS.metrics.counter(
    "store.recovery_pages",
    help="log pages replayed rebuilding directories after reboot")
_CHECKPOINTS = _OBS.metrics.counter(
    "store.checkpoints", help="directory checkpoints written to flash")

_CKPT_MAGIC = b"\xc4\x4b"
_CKPT_HEADER_BYTES = 16  # magic(2) + id(8) + chunk(2) + total(2) + length(2)


@dataclass
class RecoveryStats:
    """What one reboot recovery cost (see :meth:`LogStructuredStore.recover`)."""

    mode: str  # "full" or "checkpoint"
    pages_replayed: int = 0
    checkpoint_pages_read: int = 0
    probe_reads: int = 0
    checkpoint_seq: int = 0

    @property
    def total_pages_read(self) -> int:
        return self.pages_replayed + self.checkpoint_pages_read + self.probe_reads


class LogStructuredStore:
    """Append-only record store with id-based lookup.

    Records are ``dict`` field maps (see :mod:`repro.store.encoding`)
    keyed by a caller-supplied string id. A record must fit in one
    flash page after encoding.

    ``page_cache_bytes`` enables the bounded LRU page cache;
    ``checkpoint_blocks`` reserves that many blocks (an even count) at
    the end of the device for directory checkpoints, written on demand
    via :meth:`checkpoint` or automatically every
    ``checkpoint_interval_pages`` flushed pages; ``zone_maps=False``
    turns off field summaries (block fingerprints are kept regardless —
    incremental recovery needs them).
    """

    def __init__(self, flash: NandFlash, ram_budget_bytes: int | None = None,
                 *, page_cache_bytes: int | None = None,
                 zone_maps: bool = True, checkpoint_blocks: int = 0,
                 checkpoint_interval_pages: int | None = None) -> None:
        self.flash = flash
        self._page_size = flash.timings.page_size
        self._pages_per_block = flash.timings.pages_per_block
        if checkpoint_blocks < 0 or checkpoint_blocks % 2:
            raise ConfigurationError(
                "checkpoint_blocks must be an even, non-negative block count"
            )
        if checkpoint_blocks >= flash.block_count:
            raise ConfigurationError(
                "checkpoint region leaves no data blocks"
            )
        self._checkpoint_blocks = checkpoint_blocks
        self._data_block_count = flash.block_count - checkpoint_blocks
        self._checkpoint_interval = checkpoint_interval_pages
        self._pages_since_checkpoint = 0
        self._checkpoint_counter = 0
        # A/B halves of the reserved region; the next checkpoint goes
        # to 1 - _ckpt_half. Unknown region state (fresh store over a
        # used device) is wiped before the first write.
        self._ckpt_half = 1
        self._ckpt_region_known = False
        self.checkpoints_written = 0
        # id -> (page, offset, length); None means deleted
        self._directory: dict[str, tuple[int, int, int]] = {}
        self._buffer = bytearray()
        # id, kind, payload offset, payload length, record (for zone maps)
        self._buffer_entries: list[
            tuple[str, int, int, int, Record | None]
        ] = []
        # id -> index of its latest buffered entry (O(1) get/contains)
        self._buffered: dict[str, int] = {}
        self._live_per_block: dict[int, int] = {}
        # Per-block zone maps / fingerprints, maintained at flush and
        # replay, dropped on erase.
        self._summaries: dict[int, BlockSummary] = {}
        self._zone_maps = zone_maps
        self.page_cache = (
            PageCache(flash, page_cache_bytes)
            if page_cache_bytes is not None else None
        )
        # Block-granular allocation: one active block receives pages
        # sequentially; erased blocks return to the free list; fresh
        # blocks come from the tail.
        self._tail_block = 0
        self._active_block: int | None = None
        self._active_offset = 0
        self._free_blocks: list[int] = []
        self._allocated_pages = 0
        # Every flushed page starts with a monotone sequence number so
        # a rebooted cell can rebuild its RAM directory by log replay.
        self._page_sequence = 0
        self._ram_budget = ram_budget_bytes
        self.inserts = 0
        self.deletes = 0
        self.last_recovery: RecoveryStats | None = None

    # -- RAM accounting -----------------------------------------------------

    _DIRECTORY_ENTRY_BYTES = 48  # id hash + location tuple, order of magnitude
    _BUFFER_ENTRY_BYTES = 24  # entry tuple + buffered-id slot

    @property
    def directory_ram_bytes(self) -> int:
        """Approximate RAM held by the directory *plus* the unflushed
        page buffer and its entry table — buffered-but-unflushed data
        counts against the budget exactly like flushed directory
        entries, so the bound cannot be dodged by never flushing."""
        return (
            len(self._directory) * self._DIRECTORY_ENTRY_BYTES
            + len(self._buffer)
            + len(self._buffer_entries) * self._BUFFER_ENTRY_BYTES
        )

    @property
    def summaries_ram_bytes(self) -> int:
        """Approximate RAM held by the per-block zone maps."""
        return sum(summary.ram_bytes for summary in self._summaries.values())

    @property
    def ram_bytes(self) -> int:
        """Everything the store holds in RAM (cache pages included)."""
        cache = self.page_cache.ram_bytes if self.page_cache is not None else 0
        return self.directory_ram_bytes + self.summaries_ram_bytes + cache

    def _check_ram(self) -> None:
        if self._ram_budget is None:
            return
        held = self.directory_ram_bytes + self.summaries_ram_bytes
        if held > self._ram_budget:
            raise CapacityError(
                f"store RAM (directory + write buffer + zone maps) exceeds "
                f"budget ({held} > {self._ram_budget} bytes)"
            )

    # -- cached device reads --------------------------------------------------

    def _read_page(self, page: int) -> bytes:
        if self.page_cache is not None:
            return self.page_cache.read_page(page)
        return self.flash.read_page(page)

    # -- log entry framing ----------------------------------------------------

    @staticmethod
    def _frame(kind: int, record_id: str, payload: bytes) -> bytes:
        id_bytes = record_id.encode()
        return (
            bytes([kind])
            + len(id_bytes).to_bytes(2, "big")
            + id_bytes
            + len(payload).to_bytes(2, "big")
            + payload
        )

    _PAGE_HEADER_BYTES = 8

    def _block_summary(self, block: int) -> BlockSummary:
        summary = self._summaries.get(block)
        if summary is None:
            summary = self._summaries[block] = BlockSummary()
        return summary

    def _flush_buffer(self) -> None:
        if not self._buffer_entries:
            return
        page = self._allocate_page()
        self._page_sequence += 1
        page_data = self._page_sequence.to_bytes(self._PAGE_HEADER_BYTES, "big")
        page_data += bytes(self._buffer)
        self.flash.write_page(page, page_data)
        if self.page_cache is not None:
            self.page_cache.note_write(page, page_data)
        block = page // self._pages_per_block
        summary = self._block_summary(block)
        summary.note_page(self._page_sequence)
        directory = self._directory
        live = self._live_per_block
        header = self._PAGE_HEADER_BYTES
        for record_id, kind, offset, length, record in self._buffer_entries:
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                directory[record_id] = (page, offset + header, length)
                live[block] = live.get(block, 0) + 1
                if self._zone_maps:
                    if record is None:
                        record = decode_record(
                            bytes(self._buffer[offset : offset + length])
                        )
                    summary.note_record(record)
            else:
                self._retire(record_id)
                directory.pop(record_id, None)
        self._buffer = bytearray()
        self._buffer_entries = []
        self._buffered = {}
        _FLUSHES.inc()
        self._pages_since_checkpoint += 1
        if (
            self._checkpoint_interval is not None
            and self._pages_since_checkpoint >= self._checkpoint_interval
        ):
            self.checkpoint()

    def _retire(self, record_id: str) -> None:
        """Decrement the live count of the block holding the old version."""
        location = self._directory.get(record_id)
        if location is None:
            return
        old_block = location[0] // self._pages_per_block
        remaining = self._live_per_block.get(old_block, 0) - 1
        if remaining > 0:
            self._live_per_block[old_block] = remaining
        else:
            self._live_per_block.pop(old_block, None)

    def _allocate_page(self) -> int:
        pages_per_block = self._pages_per_block
        if self._active_block is None or self._active_offset >= pages_per_block:
            if self._free_blocks:
                self._active_block = self._free_blocks.pop(0)
            else:
                if self._tail_block >= self._data_block_count:
                    raise CapacityError("flash device is full; compact first")
                self._active_block = self._tail_block
                self._tail_block += 1
            self._active_offset = 0
        page = self._active_block * pages_per_block + self._active_offset
        self._active_offset += 1
        self._allocated_pages += 1
        return page

    def _append(self, kind: int, record_id: str, payload: bytes,
                record: Record | None = None) -> None:
        frame = self._frame(kind, record_id, payload)
        usable = self._page_size - self._PAGE_HEADER_BYTES
        if len(frame) > usable:
            raise StorageError(
                f"record {record_id!r} ({len(frame)} bytes framed) exceeds "
                f"usable page size {usable}"
            )
        if len(self._buffer) + len(frame) > usable:
            self._flush_buffer()
        offset = len(self._buffer)
        self._buffer.extend(frame)
        payload_offset = offset + 1 + 2 + len(record_id.encode()) + 2
        self._buffer_entries.append(
            (record_id, kind, payload_offset, len(payload), record)
        )
        self._buffered[record_id] = len(self._buffer_entries) - 1
        self._check_ram()

    # -- public API ---------------------------------------------------------

    def put(self, record_id: str, record: Record) -> None:
        """Insert or replace the record stored under ``record_id``."""
        self._append(_ENTRY_INSERT, record_id, encode_record(record), record)
        self.inserts += 1

    def insert_many(self, items: Iterable[tuple[str, Record]]) -> int:
        """Batch ingest: append many records with page-granular cost.

        Produces the *identical* flash image a sequence of :meth:`put`
        calls would (same framing, same page boundaries, same sequence
        numbers) — the batch ingest benchmark proves this bit-for-bit —
        but skips the per-record call overhead: frames are packed into
        the page buffer in one tight loop and the RAM budget is checked
        per flushed page instead of per record. Returns the number of
        records appended.
        """
        usable = self._page_size - self._PAGE_HEADER_BYTES
        buffer = self._buffer
        entries = self._buffer_entries
        buffered = self._buffered
        count = 0
        for record_id, record in items:
            payload = encode_record(record)
            id_bytes = record_id.encode()
            frame_length = 5 + len(id_bytes) + len(payload)
            if frame_length > usable:
                raise StorageError(
                    f"record {record_id!r} ({frame_length} bytes framed) "
                    f"exceeds usable page size {usable}"
                )
            if len(buffer) + frame_length > usable:
                self._flush_buffer()
                self._check_ram()
                buffer = self._buffer
                entries = self._buffer_entries
                buffered = self._buffered
            offset = len(buffer)
            buffer += (
                b"\x01"
                + len(id_bytes).to_bytes(2, "big")
                + id_bytes
                + len(payload).to_bytes(2, "big")
                + payload
            )
            entries.append(
                (record_id, _ENTRY_INSERT, offset + 5 + len(id_bytes),
                 len(payload), record)
            )
            buffered[record_id] = len(entries) - 1
            count += 1
        self.inserts += count
        self._check_ram()
        return count

    def delete(self, record_id: str) -> None:
        """Delete a record (raises :class:`NotFoundError` if absent)."""
        if not self.contains(record_id):
            raise NotFoundError(f"no record {record_id!r}")
        self._append(_ENTRY_DELETE, record_id, b"")
        self.deletes += 1

    def contains(self, record_id: str) -> bool:
        index = self._buffered.get(record_id)
        if index is not None:
            return self._buffer_entries[index][1] == _ENTRY_INSERT
        return record_id in self._directory

    def get(self, record_id: str) -> Record:
        """Fetch the latest version of a record (one page read, unless
        the record is still in the write buffer)."""
        index = self._buffered.get(record_id)
        if index is not None:
            _, kind, offset, length, _ = self._buffer_entries[index]
            if kind == _ENTRY_DELETE:
                raise NotFoundError(f"no record {record_id!r}")
            return decode_record(bytes(self._buffer[offset : offset + length]))
        location = self._directory.get(record_id)
        if location is None:
            raise NotFoundError(f"no record {record_id!r}")
        page, offset, length = location
        data = self._read_page(page)
        return decode_record(data[offset : offset + length])

    def get_many(self, record_ids: list[str]) -> list[Record]:
        """Fetch several records, reading each flash page at most once.

        This is what an index-driven fetch uses: postings that share a
        page cost a single page read.
        """
        buffered = [record_id for record_id in record_ids
                    if record_id in self._buffered]
        flushed = [record_id for record_id in record_ids
                   if record_id not in self._buffered]
        page_cache: dict[int, bytes] = {}
        results: dict[str, Record] = {}
        for record_id in flushed:
            location = self._directory.get(record_id)
            if location is None:
                raise NotFoundError(f"no record {record_id!r}")
            page, offset, length = location
            if page not in page_cache:
                page_cache[page] = self._read_page(page)
            results[record_id] = decode_record(
                page_cache[page][offset : offset + length]
            )
        for record_id in buffered:
            results[record_id] = self.get(record_id)
        return [results[record_id] for record_id in record_ids]

    def flush(self) -> None:
        """Force buffered entries to flash (partial page write)."""
        self._flush_buffer()

    def record_ids(self) -> list[str]:
        """All live record ids (buffered writes included), sorted."""
        ids = set(self._directory)
        for entry_id, index in self._buffered.items():
            if self._buffer_entries[index][1] == _ENTRY_INSERT:
                ids.add(entry_id)
            else:
                ids.discard(entry_id)
        return sorted(ids)

    def scan(self) -> Iterator[tuple[str, Record]]:
        """Iterate ``(record_id, record)`` over all live records.

        Reads each flash page at most once (records are grouped by
        page), so this is the honest full-scan baseline that E8
        compares against index lookups.
        """
        buffered_ids = set(self._buffered)
        by_page: dict[int, list[tuple[str, int, int]]] = {}
        for record_id, (page, offset, length) in self._directory.items():
            if record_id not in buffered_ids:
                by_page.setdefault(page, []).append((record_id, offset, length))
        for page in sorted(by_page):
            data = self._read_page(page)
            for record_id, offset, length in sorted(by_page[page], key=lambda e: e[1]):
                yield record_id, decode_record(data[offset : offset + length])
        for entry_id in sorted(buffered_ids):
            if self.contains(entry_id):
                yield entry_id, self.get(entry_id)

    # -- zone-map-pruned scans ------------------------------------------------

    @property
    def zone_maps_enabled(self) -> bool:
        return self._zone_maps

    def scan_range(self, field: str, low: Value = None,
                   high: Value = None) -> Iterator[tuple[str, Record]]:
        """Skip-scan: like :meth:`scan`, but pages of blocks whose zone
        map proves no record can satisfy ``low <= record[field] <=
        high`` are never read. Yields a *superset* of the matching
        records (block granularity) — callers re-filter, exactly as
        they re-filter index candidates. Falls back to a plain scan
        when zone maps are disabled.
        """
        buffered_ids = set(self._buffered)
        prune = self._zone_maps
        pages_per_block = self._pages_per_block
        by_page: dict[int, list[tuple[str, int, int]]] = {}
        for record_id, (page, offset, length) in self._directory.items():
            if record_id in buffered_ids:
                continue
            if prune:
                summary = self._summaries.get(page // pages_per_block)
                if summary is not None and not summary.admits(field, low, high):
                    continue
            by_page.setdefault(page, []).append((record_id, offset, length))
        for page in sorted(by_page):
            data = self._read_page(page)
            for record_id, offset, length in sorted(by_page[page], key=lambda e: e[1]):
                yield record_id, decode_record(data[offset : offset + length])
        for entry_id in sorted(buffered_ids):
            if self.contains(entry_id):
                yield entry_id, self.get(entry_id)

    def __len__(self) -> int:
        return len(self.record_ids())

    # -- compaction -----------------------------------------------------------

    @property
    def pages_used(self) -> int:
        """Pages currently holding log data (allocated, not yet erased)."""
        return self._allocated_pages

    def _used_blocks(self) -> list[int]:
        """Blocks currently holding log data (including the active one)."""
        free = set(self._free_blocks)
        return [
            block for block in range(self._tail_block)
            if block not in free
        ]

    def _erase_block(self, block: int) -> None:
        """Erase one data block and drop its zone map (the page cache
        invalidates itself through the device's erase listener)."""
        self.flash.erase_block(block)
        self._summaries.pop(block, None)

    def compact(self) -> int:
        """Full compaction: stage the live set in RAM, erase every used
        block, and rewrite the live records from scratch.

        This is the stop-the-world strategy of the smallest embedded
        log stores; it needs no reserved space and its full cost (page
        reads + block erases + page writes) lands in the flash
        counters. Returns the number of blocks erased. See
        :meth:`compact_incremental` for the pay-as-you-go alternative.
        """
        self._flush_buffer()
        live = [(record_id, self.get(record_id)) for record_id in self.record_ids()]
        used = self._used_blocks()
        for block in used:
            self._erase_block(block)
        self._directory.clear()
        self._live_per_block.clear()
        self._tail_block = 0
        self._active_block = None
        self._active_offset = 0
        self._free_blocks = []
        self._allocated_pages = 0
        for record_id, record in live:
            self._append(_ENTRY_INSERT, record_id, encode_record(record), record)
        self._flush_buffer()
        _COMPACTIONS.inc()
        return len(used)

    def compact_incremental(self, max_victims: int = 1) -> int:
        """Victim-block garbage collection: relocate the live records of
        the emptiest full blocks, erase them, recycle them.

        The classic flash-GC strategy: cost is proportional to the
        *live* data in the victims (often near zero for churn-heavy
        workloads) instead of the whole store, at the price of
        bookkeeping and potentially uneven wear. Returns the number of
        blocks reclaimed; picking fewer than ``max_victims`` (or none)
        happens when no full, non-active block exists.
        """
        self._flush_buffer()
        pages_per_block = self._pages_per_block
        candidates = [
            block for block in self._used_blocks()
            if block != self._active_block
        ]
        victims = sorted(
            candidates, key=lambda block: self._live_per_block.get(block, 0)
        )[:max_victims]
        reclaimed = 0
        for victim in victims:
            live_ids = [
                record_id
                for record_id, (page, _, _) in self._directory.items()
                if page // pages_per_block == victim
            ]
            if live_ids:
                relocated = self.get_many(sorted(live_ids))
                for record_id, record in zip(sorted(live_ids), relocated):
                    self._append(
                        _ENTRY_INSERT, record_id, encode_record(record), record
                    )
                self._flush_buffer()
            self._erase_block(victim)
            self._live_per_block.pop(victim, None)
            self._free_blocks.append(victim)
            self._allocated_pages -= pages_per_block
            reclaimed += 1
        if reclaimed:
            _COMPACTIONS.inc()
        return reclaimed

    # -- directory checkpoints -------------------------------------------------

    @property
    def _region_start_block(self) -> int:
        return self.flash.block_count - self._checkpoint_blocks

    def _half_blocks(self, half: int) -> range:
        half_size = self._checkpoint_blocks // 2
        start = self._region_start_block + half * half_size
        return range(start, start + half_size)

    def _serialize_checkpoint(self) -> bytes:
        directory_blob = bytearray()
        for record_id, (page, offset, length) in self._directory.items():
            id_bytes = record_id.encode()
            directory_blob += len(id_bytes).to_bytes(2, "big") + id_bytes
            directory_blob += page.to_bytes(4, "big")
            directory_blob += offset.to_bytes(2, "big")
            directory_blob += length.to_bytes(2, "big")
        live_blob = bytearray()
        for block, count in sorted(self._live_per_block.items()):
            live_blob += block.to_bytes(4, "big") + count.to_bytes(4, "big")
        zone_blob = bytearray()
        for block, summary in sorted(self._summaries.items()):
            encoded = encode_record(summary.to_record())
            zone_blob += block.to_bytes(4, "big")
            zone_blob += len(encoded).to_bytes(4, "big")
            zone_blob += encoded
        parts = [b"CKP1", self._page_sequence.to_bytes(8, "big")]
        for blob in (directory_blob, live_blob, zone_blob):
            parts.append(len(blob).to_bytes(8, "big"))
            parts.append(bytes(blob))
        return b"".join(parts)

    @staticmethod
    def _parse_checkpoint(payload: bytes) -> dict:
        if payload[:4] != b"CKP1":
            raise StorageError("malformed checkpoint payload")
        sequence = int.from_bytes(payload[4:12], "big")
        cursor = 12

        def take_blob() -> bytes:
            nonlocal cursor
            length = int.from_bytes(payload[cursor : cursor + 8], "big")
            cursor += 8
            blob = payload[cursor : cursor + length]
            if len(blob) != length:
                raise StorageError("truncated checkpoint payload")
            cursor += length
            return blob

        directory_blob = take_blob()
        live_blob = take_blob()
        zone_blob = take_blob()
        directory: dict[str, tuple[int, int, int]] = {}
        position = 0
        while position < len(directory_blob):
            id_length = int.from_bytes(
                directory_blob[position : position + 2], "big")
            position += 2
            record_id = directory_blob[position : position + id_length].decode()
            position += id_length
            page = int.from_bytes(directory_blob[position : position + 4], "big")
            offset = int.from_bytes(
                directory_blob[position + 4 : position + 6], "big")
            length = int.from_bytes(
                directory_blob[position + 6 : position + 8], "big")
            position += 8
            directory[record_id] = (page, offset, length)
        live: dict[int, int] = {}
        for position in range(0, len(live_blob), 8):
            block = int.from_bytes(live_blob[position : position + 4], "big")
            live[block] = int.from_bytes(
                live_blob[position + 4 : position + 8], "big")
        summaries: dict[int, BlockSummary] = {}
        position = 0
        while position < len(zone_blob):
            block = int.from_bytes(zone_blob[position : position + 4], "big")
            length = int.from_bytes(zone_blob[position + 4 : position + 8], "big")
            position += 8
            summaries[block] = BlockSummary.from_record(
                decode_record(bytes(zone_blob[position : position + length]))
            )
            position += length
        return {
            "seq": sequence, "directory": directory,
            "live": live, "summaries": summaries,
        }

    def checkpoint(self) -> int:
        """Persist the directory, live counts and zone maps into the
        reserved checkpoint region; returns the pages written.

        Alternates between the region's two halves (A/B), erasing the
        target half first, so a crash mid-write always leaves the
        previous complete checkpoint intact. Reboot recovery then
        replays only pages written after the checkpoint's sequence
        number (see :meth:`recover`).
        """
        if not self._checkpoint_blocks:
            raise ConfigurationError(
                "store was built without a checkpoint region"
            )
        self._flush_buffer()
        payload = self._serialize_checkpoint()
        chunk_capacity = self._page_size - _CKPT_HEADER_BYTES
        chunks = [
            payload[position : position + chunk_capacity]
            for position in range(0, len(payload), chunk_capacity)
        ] or [b""]
        half_pages = (self._checkpoint_blocks // 2) * self._pages_per_block
        if len(chunks) > half_pages:
            raise StorageError(
                f"checkpoint needs {len(chunks)} pages but each half of the "
                f"region holds {half_pages}; grow checkpoint_blocks"
            )
        if not self._ckpt_region_known:
            # Fresh store over a device of unknown history: wipe the
            # whole region so stale checkpoints cannot shadow this one.
            for block in range(self._region_start_block, self.flash.block_count):
                first_page = block * self._pages_per_block
                if any(
                    self.flash.is_written(page)
                    for page in range(first_page, first_page + self._pages_per_block)
                ):
                    self.flash.erase_block(block)
            self._ckpt_region_known = True
            target = 0
        else:
            target = 1 - self._ckpt_half
            for block in self._half_blocks(target):
                first_page = block * self._pages_per_block
                if any(
                    self.flash.is_written(page)
                    for page in range(first_page, first_page + self._pages_per_block)
                ):
                    self.flash.erase_block(block)
        self._checkpoint_counter += 1
        target_blocks = list(self._half_blocks(target))
        for index, chunk in enumerate(chunks):
            block = target_blocks[index // self._pages_per_block]
            page = block * self._pages_per_block + index % self._pages_per_block
            header = (
                _CKPT_MAGIC
                + self._checkpoint_counter.to_bytes(8, "big")
                + index.to_bytes(2, "big")
                + len(chunks).to_bytes(2, "big")
                + len(chunk).to_bytes(2, "big")
            )
            self.flash.write_page(page, header + chunk)
        self._ckpt_half = target
        self._pages_since_checkpoint = 0
        self.checkpoints_written += 1
        _CHECKPOINTS.inc()
        _OBS.events.emit(
            "store.checkpoint", seq=self._page_sequence,
            pages=len(chunks), records=len(self._directory),
        )
        return len(chunks)

    def _load_latest_checkpoint(self, stats: RecoveryStats) -> dict | None:
        """Scan the reserved region; returns the newest complete
        checkpoint (or None) and restores the writer's A/B state."""
        chunks: dict[int, dict[int, bytes]] = {}
        totals: dict[int, int] = {}
        halves: dict[int, int] = {}
        half_size = self._checkpoint_blocks // 2
        for block in range(self._region_start_block, self.flash.block_count):
            first_page = block * self._pages_per_block
            for page in range(first_page, first_page + self._pages_per_block):
                if not self.flash.is_written(page):
                    continue
                data = self.flash.read_page(page)
                stats.checkpoint_pages_read += 1
                if data[:2] != _CKPT_MAGIC:
                    continue
                ckpt_id = int.from_bytes(data[2:10], "big")
                index = int.from_bytes(data[10:12], "big")
                total = int.from_bytes(data[12:14], "big")
                length = int.from_bytes(data[14:16], "big")
                chunks.setdefault(ckpt_id, {})[index] = data[16 : 16 + length]
                totals[ckpt_id] = total
                halves[ckpt_id] = (
                    0 if block < self._region_start_block + half_size else 1
                )
        self._ckpt_region_known = True
        self._checkpoint_counter = max(chunks, default=0)
        complete = [
            ckpt_id for ckpt_id, got in chunks.items()
            if len(got) == totals.get(ckpt_id)
        ]
        if not complete:
            return None
        latest = max(complete)
        self._ckpt_half = halves[latest]
        payload = b"".join(
            chunks[latest][index] for index in range(totals[latest])
        )
        return self._parse_checkpoint(payload)

    # -- reboot recovery -------------------------------------------------------

    @classmethod
    def recover(cls, flash: NandFlash,
                ram_budget_bytes: int | None = None, *,
                page_cache_bytes: int | None = None,
                zone_maps: bool = True,
                checkpoint_blocks: int = 0,
                checkpoint_interval_pages: int | None = None,
                use_checkpoint: bool = True) -> "LogStructuredStore":
        """Rebuild a store from a flash device after a reboot.

        The RAM directory is volatile; a restarted cell reconstructs it
        by replaying log pages in sequence order. Without a checkpoint
        (or with ``use_checkpoint=False``) every programmed page is
        read — the seed behaviour, cost visible in the flash counters.
        With a checkpoint region the replay is *incremental*: the
        newest complete checkpoint restores the directory and zone
        maps, one probe read per previously known block proves it
        unchanged (NAND sequence numbers are monotone, so a matching
        first-page sequence rules out recycling), and only pages
        written after the checkpoint are replayed. ``last_recovery``
        records what the reboot cost either way.
        """
        store = cls(
            flash, ram_budget_bytes=ram_budget_bytes,
            page_cache_bytes=page_cache_bytes, zone_maps=zone_maps,
            checkpoint_blocks=checkpoint_blocks,
            checkpoint_interval_pages=checkpoint_interval_pages,
        )
        pages_per_block = flash.timings.pages_per_block
        header = cls._PAGE_HEADER_BYTES
        stats = RecoveryStats(mode="full")
        data_page_limit = store._data_block_count * pages_per_block
        written = [
            page for page in flash.written_pages() if page < data_page_limit
        ]
        checkpoint = None
        if checkpoint_blocks:
            checkpoint = store._load_latest_checkpoint(stats)
        sequenced: list[tuple[int, int, bytes]] = []
        if checkpoint is not None and use_checkpoint:
            stats.mode = "checkpoint"
            stats.checkpoint_seq = checkpoint["seq"]
            store._directory = checkpoint["directory"]
            store._live_per_block = checkpoint["live"]
            store._summaries = checkpoint["summaries"]
            store._page_sequence = checkpoint["seq"]
            by_block: dict[int, list[int]] = {}
            for page in written:
                by_block.setdefault(page // pages_per_block, []).append(page)
            # Blocks the checkpoint knew that were erased (and possibly
            # rewritten) since — by compaction — are *stale*: their
            # checkpointed directory entries point at recycled pages.
            # Every record that survived lives in a strictly newer log
            # entry (GC relocates before erasing; full compaction
            # rewrites everything), so the stale entries are purged and
            # the replay below restores the survivors.
            stale_blocks: set[int] = set()
            for block in list(store._summaries):
                if block not in by_block:
                    stale_blocks.add(block)
                    store._summaries.pop(block)
                    store._live_per_block.pop(block, None)
            for block, pages in sorted(by_block.items()):
                pages.sort()
                summary = store._summaries.get(block)
                if summary is None or not summary.pages:
                    fresh = pages  # block unknown to the checkpoint
                else:
                    probe = flash.read_page(pages[0])
                    stats.probe_reads += 1
                    first_seq = int.from_bytes(probe[:header], "big")
                    if first_seq == summary.min_seq:
                        # unchanged prefix: replay only the tail pages
                        # programmed after the checkpoint
                        fresh = pages[summary.pages :]
                    else:
                        # erased and recycled since the checkpoint:
                        # every page here is newer; rebuild its summary
                        # from the replay
                        stale_blocks.add(block)
                        store._summaries.pop(block, None)
                        store._live_per_block.pop(block, None)
                        sequenced.append((first_seq, pages[0], probe))
                        fresh = pages[1:]
                for page in fresh:
                    data = flash.read_page(page)
                    sequenced.append(
                        (int.from_bytes(data[:header], "big"), page, data)
                    )
            if stale_blocks:
                for record_id, location in list(store._directory.items()):
                    if location[0] // pages_per_block in stale_blocks:
                        del store._directory[record_id]
        else:
            for page in written:
                data = flash.read_page(page)
                sequenced.append(
                    (int.from_bytes(data[:header], "big"), page, data)
                )
        sequenced.sort()
        for sequence, page, data in sequenced:
            store._replay_page(page, data, sequence)
            if sequence > store._page_sequence:
                store._page_sequence = sequence
        stats.pages_replayed = len(sequenced)
        _RECOVERY_PAGES.inc(len(sequenced))
        # Rebuild the allocator: tail past the last programmed block;
        # the block with trailing unprogrammed pages (at most one, by
        # the sequential-write discipline) resumes as the active block;
        # fully-erased blocks below the tail return to the free list.
        written_set = set(written)
        blocks_with_data = sorted(
            {page // pages_per_block for page in written_set}
        )
        store._allocated_pages = len(written_set)
        if blocks_with_data:
            store._tail_block = blocks_with_data[-1] + 1
            store._free_blocks = [
                block for block in range(store._tail_block)
                if block not in blocks_with_data
            ]
            # The sequential-program discipline guarantees at most one
            # partially-filled block: whatever was active at shutdown
            # (which, after GC recycling, need not be the highest one).
            for block in blocks_with_data:
                used_in_block = sum(
                    1 for page in written_set
                    if page // pages_per_block == block
                )
                if used_in_block < pages_per_block:
                    store._active_block = block
                    store._active_offset = used_in_block
                    break
        store.last_recovery = stats
        _OBS.events.emit(
            "store.recovery", mode=stats.mode,
            pages_replayed=stats.pages_replayed,
            checkpoint_pages=stats.checkpoint_pages_read,
            probes=stats.probe_reads,
        )
        return store

    def _replay_page(self, page: int, data: bytes, sequence: int) -> None:
        """Apply one page's log entries to the directory (and fold the
        page into its block's zone map)."""
        offset = self._PAGE_HEADER_BYTES
        block = page // self._pages_per_block
        summary = self._block_summary(block)
        summary.note_page(sequence)
        while offset + 5 <= len(data):
            kind = data[offset]
            if kind not in (_ENTRY_INSERT, _ENTRY_DELETE):
                break  # 0xFF padding: end of entries on this page
            id_length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            id_start = offset + 3
            payload_length = int.from_bytes(
                data[id_start + id_length : id_start + id_length + 2], "big"
            )
            payload_start = id_start + id_length + 2
            if payload_start + payload_length > len(data):
                break  # torn write: ignore the partial tail entry
            record_id = data[id_start : id_start + id_length].decode()
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                self._directory[record_id] = (
                    page, payload_start, payload_length,
                )
                self._live_per_block[block] = (
                    self._live_per_block.get(block, 0) + 1
                )
                if self._zone_maps:
                    summary.note_record(
                        decode_record(
                            data[payload_start : payload_start + payload_length]
                        )
                    )
            else:
                self._retire(record_id)
                self._directory.pop(record_id, None)
            offset = payload_start + payload_length
