"""Log-structured record store over simulated NAND flash.

Embedded secure microcontrollers cannot update flash in place, so the
store is append-only: inserts and deletes are log entries packed into
pages, written strictly sequentially. A RAM-resident directory maps
record ids to their latest log location; compaction rewrites live
records into fresh blocks and erases the old ones.

This is the layer that makes experiment E8 meaningful: every operation
has a flash cost visible in the device counters, and the RAM directory
is bounded by the profile's RAM budget.

The 1 Hz Linky vertical (86,400 records/day through one cell) adds the
scaling machinery embedded PDS engines rely on:

* **batch ingest** — :meth:`insert_many` coalesces encoded records
  through the page buffer and pays one flash program per *page*, with
  none of the per-record call overhead of :meth:`put`;
* **page cache** — an optional bounded LRU
  (:class:`~repro.store.page_cache.PageCache`) over device reads,
  invalidated by block erases through the device's erase listener;
* **zone maps** — per-block :class:`~repro.store.zonemap.BlockSummary`
  records (min/max sequence + field bounds, written at flush) let
  :meth:`scan_range` skip provably dead blocks;
* **checkpointed recovery** — :meth:`checkpoint` persists the
  directory and zone maps into a reserved flash region, so a reboot
  replays only the pages written since, not the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Iterable, Iterator

from ..errors import (
    CapacityError,
    ConfigurationError,
    NotFoundError,
    StorageError,
)
from ..hardware.flash import NandFlash
from ..obs import get_default as _obs_default
from .encoding import (
    COLUMNAR_MIN_BATCH,
    ColumnBatch,
    Record,
    Value,
    decode_page,
    decode_record,
    encode_frame_runs,
    encode_record,
    lane_plan,
    lane_plan_for_batch,
)
from .page_cache import PageCache
from .zonemap import BlockSummary

_ENTRY_INSERT = 1
_ENTRY_DELETE = 2


class _BatchRows:
    """Lazy sequence view over a :class:`ColumnBatch` slice.

    The fused commit only touches individual records at run templates
    and page-tail boundaries (a handful per chunk), so materializing
    rows on demand keeps the batch ingest path free of the per-record
    dict builds the whole lane exists to avoid.
    """

    __slots__ = ("_batch", "_base", "_count")

    def __init__(self, batch: ColumnBatch, base: int, count: int) -> None:
        self._batch = batch
        self._base = base
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> Record:
        return self._batch.row(self._base + index)

# Store instruments live on the process-default scope (stores have no
# world). Bind the instruments, not their values: the test fixture
# resets the registry in place between tests.
_OBS = _obs_default()
_FLUSHES = _OBS.metrics.counter(
    "store.flush", help="page-buffer flushes (one flash page program each)")
_COMPACTIONS = _OBS.metrics.counter(
    "store.compaction", help="compaction passes (full or incremental)")
_RECOVERY_PAGES = _OBS.metrics.counter(
    "store.recovery_pages",
    help="log pages replayed rebuilding directories after reboot")
_CHECKPOINTS = _OBS.metrics.counter(
    "store.checkpoints", help="directory checkpoints written to flash")

_CKPT_MAGIC = b"\xc4\x4b"
_CKPT_HEADER_BYTES = 16  # magic(2) + id(8) + chunk(2) + total(2) + length(2)


@dataclass
class RecoveryStats:
    """What one reboot recovery cost (see :meth:`LogStructuredStore.recover`)."""

    mode: str  # "full" or "checkpoint"
    pages_replayed: int = 0
    checkpoint_pages_read: int = 0
    probe_reads: int = 0
    checkpoint_seq: int = 0

    @property
    def total_pages_read(self) -> int:
        return self.pages_replayed + self.checkpoint_pages_read + self.probe_reads


class LogStructuredStore:
    """Append-only record store with id-based lookup.

    Records are ``dict`` field maps (see :mod:`repro.store.encoding`)
    keyed by a caller-supplied string id. A record must fit in one
    flash page after encoding.

    ``page_cache_bytes`` enables the bounded LRU page cache;
    ``checkpoint_blocks`` reserves that many blocks (an even count) at
    the end of the device for directory checkpoints, written on demand
    via :meth:`checkpoint` or automatically every
    ``checkpoint_interval_pages`` flushed pages; ``zone_maps=False``
    turns off field summaries (block fingerprints are kept regardless —
    incremental recovery needs them).
    """

    def __init__(self, flash: NandFlash, ram_budget_bytes: int | None = None,
                 *, page_cache_bytes: int | None = None,
                 zone_maps: bool = True, checkpoint_blocks: int = 0,
                 checkpoint_interval_pages: int | None = None,
                 columnar: bool = True,
                 integrity_key: bytes | None = None) -> None:
        self.flash = flash
        self._page_size = flash.timings.page_size
        self._pages_per_block = flash.timings.pages_per_block
        if checkpoint_blocks < 0 or checkpoint_blocks % 2:
            raise ConfigurationError(
                "checkpoint_blocks must be an even, non-negative block count"
            )
        if checkpoint_blocks >= flash.block_count:
            raise ConfigurationError(
                "checkpoint region leaves no data blocks"
            )
        self._checkpoint_blocks = checkpoint_blocks
        self._data_block_count = flash.block_count - checkpoint_blocks
        self._checkpoint_interval = checkpoint_interval_pages
        self._pages_since_checkpoint = 0
        self._checkpoint_counter = 0
        # A/B halves of the reserved region; the next checkpoint goes
        # to 1 - _ckpt_half. Unknown region state (fresh store over a
        # used device) is wiped before the first write.
        self._ckpt_half = 1
        self._ckpt_region_known = False
        self.checkpoints_written = 0
        # id -> (page, offset, length); None means deleted
        self._directory: dict[str, tuple[int, int, int]] = {}
        self._buffer = bytearray()
        # id, kind, payload offset, payload length, record (for zone maps)
        self._buffer_entries: list[
            tuple[str, int, int, int, Record | None]
        ] = []
        # id -> index of its latest buffered entry (O(1) get/contains)
        self._buffered: dict[str, int] = {}
        self._live_per_block: dict[int, int] = {}
        # Per-block zone maps / fingerprints, maintained at flush and
        # replay, dropped on erase.
        self._summaries: dict[int, BlockSummary] = {}
        self._zone_maps = zone_maps
        self.page_cache = (
            PageCache(flash, page_cache_bytes)
            if page_cache_bytes is not None else None
        )
        # Block-granular allocation: one active block receives pages
        # sequentially; erased blocks return to the free list; fresh
        # blocks come from the tail.
        self._tail_block = 0
        self._active_block: int | None = None
        self._active_offset = 0
        self._free_blocks: list[int] = []
        self._allocated_pages = 0
        # Every flushed page starts with a monotone sequence number so
        # a rebooted cell can rebuild its RAM directory by log replay.
        self._page_sequence = 0
        self._ram_budget = ram_budget_bytes
        # Columnar batch ingest/scan (scalar paths stay pinned; the
        # fused path produces a byte-identical flash image).
        self._columnar = columnar
        self._batch_scratch_bytes = 0
        # Optional page-granular integrity: one HMAC tag per flushed
        # data page, RAM-resident, verified on every page read. One
        # MAC amortized over a page's worth of frames instead of one
        # per record — the batched crypto cost model.
        self._integrity_key = integrity_key
        self._page_tags: dict[int, bytes] = {}
        if integrity_key is not None:
            from ..crypto.primitives import hmac_sha256, verify_hmac
            self._hmac = hmac_sha256
            self._verify_hmac = verify_hmac
        self.inserts = 0
        self.deletes = 0
        self.last_recovery: RecoveryStats | None = None

    # -- RAM accounting -----------------------------------------------------

    _DIRECTORY_ENTRY_BYTES = 48  # id hash + location tuple, order of magnitude
    _BUFFER_ENTRY_BYTES = 24  # entry tuple + buffered-id slot

    @property
    def directory_ram_bytes(self) -> int:
        """Approximate RAM held by the directory *plus* the unflushed
        page buffer and its entry table — buffered-but-unflushed data
        counts against the budget exactly like flushed directory
        entries, so the bound cannot be dodged by never flushing."""
        return (
            len(self._directory) * self._DIRECTORY_ENTRY_BYTES
            + len(self._buffer)
            + len(self._buffer_entries) * self._BUFFER_ENTRY_BYTES
        )

    @property
    def summaries_ram_bytes(self) -> int:
        """Approximate RAM held by the per-block zone maps."""
        return sum(summary.ram_bytes for summary in self._summaries.values())

    _PAGE_TAG_BYTES = 72  # 32-byte HMAC tag + dict slot + page key

    @property
    def integrity_ram_bytes(self) -> int:
        """Approximate RAM held by the per-page integrity tags."""
        return len(self._page_tags) * self._PAGE_TAG_BYTES

    @property
    def batch_scratch_bytes(self) -> int:
        """Transient RAM held by in-flight columnar batch buffers
        (encode blobs, column arrays, decode chunks). Non-zero only
        while a batch operation runs; the columnar paths size their
        chunks from the budget headroom so scratch never triggers a
        :class:`CapacityError` the scalar path would not have raised."""
        return self._batch_scratch_bytes

    @property
    def ram_bytes(self) -> int:
        """Everything the store holds in RAM (cache pages, in-flight
        batch scratch and integrity tags included)."""
        cache = self.page_cache.ram_bytes if self.page_cache is not None else 0
        return (
            self.directory_ram_bytes + self.summaries_ram_bytes + cache
            + self._batch_scratch_bytes + self.integrity_ram_bytes
        )

    def _check_ram(self) -> None:
        if self._ram_budget is None:
            return
        held = (
            self.directory_ram_bytes + self.summaries_ram_bytes
            + self.integrity_ram_bytes
        )
        if held > self._ram_budget:
            raise CapacityError(
                f"store RAM (directory + write buffer + zone maps) exceeds "
                f"budget ({held} > {self._ram_budget} bytes)"
            )

    def _ram_headroom(self) -> int | None:
        """Budget minus persistent RAM; None when unbudgeted."""
        if self._ram_budget is None:
            return None
        return self._ram_budget - (
            self.directory_ram_bytes + self.summaries_ram_bytes
            + self.integrity_ram_bytes
        )

    # -- cached device reads --------------------------------------------------

    def _read_page(self, page: int) -> bytes:
        if self.page_cache is not None:
            data = self.page_cache.read_page(page)
        else:
            data = self.flash.read_page(page)
        if self._integrity_key is not None:
            tag = self._page_tags.get(page)
            if tag is not None and not self._verify_hmac(
                self._integrity_key, page.to_bytes(4, "big") + data, tag
            ):
                raise StorageError(
                    f"page integrity check failed [page {page} block "
                    f"{page // self._pages_per_block}]"
                )
        return data

    def _note_page_tag(self, page: int, page_data: bytes) -> None:
        """Tag one flushed page (reads return the padded image)."""
        padded = page_data.ljust(self._page_size, b"\xff")
        self._page_tags[page] = self._hmac(
            self._integrity_key, page.to_bytes(4, "big") + padded
        )

    # -- log entry framing ----------------------------------------------------

    @staticmethod
    def _frame(kind: int, record_id: str, payload: bytes) -> bytes:
        id_bytes = record_id.encode()
        return (
            bytes([kind])
            + len(id_bytes).to_bytes(2, "big")
            + id_bytes
            + len(payload).to_bytes(2, "big")
            + payload
        )

    _PAGE_HEADER_BYTES = 8

    def _block_summary(self, block: int) -> BlockSummary:
        summary = self._summaries.get(block)
        if summary is None:
            summary = self._summaries[block] = BlockSummary()
        return summary

    def _flush_buffer(self) -> None:
        if not self._buffer_entries:
            return
        page = self._allocate_page()
        self._page_sequence += 1
        page_data = self._page_sequence.to_bytes(self._PAGE_HEADER_BYTES, "big")
        page_data += bytes(self._buffer)
        self.flash.write_page(page, page_data)
        if self.page_cache is not None:
            self.page_cache.note_write(page, page_data)
        block = page // self._pages_per_block
        summary = self._block_summary(block)
        summary.note_page(self._page_sequence)
        if self._integrity_key is not None:
            self._note_page_tag(page, page_data)
        directory = self._directory
        live = self._live_per_block
        header = self._PAGE_HEADER_BYTES
        for record_id, kind, offset, length, record in self._buffer_entries:
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                directory[record_id] = (page, offset + header, length)
                live[block] = live.get(block, 0) + 1
                if self._zone_maps:
                    if record is None:
                        record = decode_record(
                            bytes(self._buffer[offset : offset + length]),
                            context="page buffer",
                        )
                    summary.note_record(record)
            else:
                self._retire(record_id)
                directory.pop(record_id, None)
        self._buffer = bytearray()
        self._buffer_entries = []
        self._buffered = {}
        _FLUSHES.inc()
        self._pages_since_checkpoint += 1
        if (
            self._checkpoint_interval is not None
            and self._pages_since_checkpoint >= self._checkpoint_interval
        ):
            self.checkpoint()

    def _retire(self, record_id: str) -> None:
        """Decrement the live count of the block holding the old version."""
        location = self._directory.get(record_id)
        if location is None:
            return
        old_block = location[0] // self._pages_per_block
        remaining = self._live_per_block.get(old_block, 0) - 1
        if remaining > 0:
            self._live_per_block[old_block] = remaining
        else:
            self._live_per_block.pop(old_block, None)

    def _allocate_page(self) -> int:
        pages_per_block = self._pages_per_block
        if self._active_block is None or self._active_offset >= pages_per_block:
            if self._free_blocks:
                self._active_block = self._free_blocks.pop(0)
            else:
                if self._tail_block >= self._data_block_count:
                    raise CapacityError("flash device is full; compact first")
                self._active_block = self._tail_block
                self._tail_block += 1
            self._active_offset = 0
        page = self._active_block * pages_per_block + self._active_offset
        self._active_offset += 1
        self._allocated_pages += 1
        return page

    def _append(self, kind: int, record_id: str, payload: bytes,
                record: Record | None = None) -> None:
        frame = self._frame(kind, record_id, payload)
        usable = self._page_size - self._PAGE_HEADER_BYTES
        if len(frame) > usable:
            raise StorageError(
                f"record {record_id!r} ({len(frame)} bytes framed) exceeds "
                f"usable page size {usable}"
            )
        if len(self._buffer) + len(frame) > usable:
            self._flush_buffer()
        offset = len(self._buffer)
        self._buffer.extend(frame)
        payload_offset = offset + 1 + 2 + len(record_id.encode()) + 2
        self._buffer_entries.append(
            (record_id, kind, payload_offset, len(payload), record)
        )
        self._buffered[record_id] = len(self._buffer_entries) - 1
        self._check_ram()

    # -- public API ---------------------------------------------------------

    def put(self, record_id: str, record: Record) -> None:
        """Insert or replace the record stored under ``record_id``."""
        self._append(_ENTRY_INSERT, record_id, encode_record(record), record)
        self.inserts += 1

    _COLUMNAR_CHUNK_RECORDS = 16384

    def insert_many(self, items: Iterable[tuple[str, Record]]) -> int:
        """Batch ingest: append many records with page-granular cost.

        Produces the *identical* flash image a sequence of :meth:`put`
        calls would (same framing, same page boundaries, same sequence
        numbers) — the batch ingest benchmark proves this bit-for-bit —
        but skips the per-record call overhead. Uniform-schema batches
        take the columnar lane (see :func:`encoding.encode_frame_runs`):
        frames are assembled as numpy matrices per constant-layout run,
        full pages are committed straight from the run blobs without
        passing through the byte-wise page buffer, and zone maps fold
        whole column slices per page. Batches (or chunks) the lane
        rejects fall back to the scalar loop, whose behaviour is
        unchanged. Returns the number of records appended.
        """
        if not isinstance(items, list):
            items = list(items)
        appended = 0
        position = 0
        total = len(items)
        while self._columnar and total - position >= COLUMNAR_MIN_BATCH:
            chunk = self._columnar_chunk_size(items[position])
            if chunk < COLUMNAR_MIN_BATCH:
                break
            part = items[position : position + chunk]
            record_ids, records = zip(*part)
            plan = lane_plan(records)
            runs = (
                encode_frame_runs(_ENTRY_INSERT, record_ids, records, plan)
                if plan is not None else None
            )
            if runs is None or not self._commit_frame_runs(
                record_ids, records, runs, plan
            ):
                break  # this chunk (and the rest) goes through the scalar loop
            appended += len(part)
            position += len(part)
        if position < total:
            appended += self._insert_scalar(
                items[position:] if position else items
            )
        self.inserts += appended
        self._check_ram()
        return appended

    def _insert_scalar(self, items: list[tuple[str, Record]]) -> int:
        """The pinned per-record ingest loop (reference behaviour)."""
        usable = self._page_size - self._PAGE_HEADER_BYTES
        buffer = self._buffer
        entries = self._buffer_entries
        buffered = self._buffered
        count = 0
        for record_id, record in items:
            payload = encode_record(record)
            id_bytes = record_id.encode()
            frame_length = 5 + len(id_bytes) + len(payload)
            if frame_length > usable:
                raise StorageError(
                    f"record {record_id!r} ({frame_length} bytes framed) "
                    f"exceeds usable page size {usable}"
                )
            if len(buffer) + frame_length > usable:
                self._flush_buffer()
                self._check_ram()
                buffer = self._buffer
                entries = self._buffer_entries
                buffered = self._buffered
            offset = len(buffer)
            buffer += (
                b"\x01"
                + len(id_bytes).to_bytes(2, "big")
                + id_bytes
                + len(payload).to_bytes(2, "big")
                + payload
            )
            entries.append(
                (record_id, _ENTRY_INSERT, offset + 5 + len(id_bytes),
                 len(payload), record)
            )
            buffered[record_id] = len(entries) - 1
            count += 1
        return count

    def _columnar_chunk_size(self, first_item: tuple[str, Record]) -> int:
        """Records per fused chunk, bounded by the RAM budget headroom
        so batch scratch (frame blobs + column arrays) stays a small
        fraction of what the budget has left. Unbudgeted stores use the
        fixed chunk size."""
        headroom = self._ram_headroom()
        if headroom is None:
            return self._COLUMNAR_CHUNK_RECORDS
        record_id, record = first_item
        frame_estimate = 5 + len(record_id.encode()) + len(encode_record(record))
        per_record = 2 * frame_estimate + 88  # blob + matrix + directory growth
        return min(self._COLUMNAR_CHUNK_RECORDS, headroom // (4 * per_record))

    def insert_batch(self, record_ids: list[str],
                     batch: ColumnBatch) -> int:
        """Ingest a :class:`ColumnBatch` without ever materializing
        per-record dicts.

        This is the producer-side columnar entry point: a data source
        that already holds typed arrays (see
        :meth:`ColumnBatch.from_arrays`) feeds them straight into the
        fused page commit — same flash image as
        ``insert_many(zip(record_ids, batch.rows()))``, bit for bit,
        but without the per-record encode, gather, and type-scan costs.
        Batches the vectorized lane rejects fall back to
        :meth:`insert_many` over materialized rows. Returns the number
        of records appended.
        """
        if not isinstance(record_ids, list):
            record_ids = list(record_ids)
        total = batch.count
        if len(record_ids) != total:
            raise StorageError(
                f"{len(record_ids)} record ids for {total} batch rows")
        fused = 0
        position = 0
        fast = None
        if self._columnar and total >= COLUMNAR_MIN_BATCH:
            # One append-only verdict for the whole batch: globally
            # unique ids disjoint from the directory and write buffer
            # stay collision-free across every chunk.
            unique = set(record_ids)
            if (
                len(unique) == total
                and self._directory.keys().isdisjoint(unique)
                and self._buffered.keys().isdisjoint(unique)
            ):
                fast = True
        while self._columnar and total - position >= COLUMNAR_MIN_BATCH:
            chunk = self._batch_chunk_size(record_ids, batch, position)
            if chunk < COLUMNAR_MIN_BATCH:
                break
            end = min(position + chunk, total)
            plan = lane_plan_for_batch(batch, position, end)
            if plan is None:
                break
            ids_slice = record_ids[position:end]
            rows = _BatchRows(batch, position, end - position)
            runs = encode_frame_runs(_ENTRY_INSERT, ids_slice, rows, plan)
            if runs is None or not self._commit_frame_runs(
                ids_slice, rows, runs, plan, fast
            ):
                break
            fused += end - position
            position = end
        self.inserts += fused
        self._check_ram()
        appended = fused
        if position < total:
            appended += self.insert_many(
                [(record_ids[index], batch.row(index))
                 for index in range(position, total)]
            )
        return appended

    def _batch_chunk_size(self, record_ids, batch, position) -> int:
        """:meth:`_columnar_chunk_size` for a ColumnBatch slice."""
        headroom = self._ram_headroom()
        if headroom is None:
            return self._COLUMNAR_CHUNK_RECORDS
        record_id = record_ids[position]
        record = batch.row(position)
        frame_estimate = 5 + len(record_id.encode()) + len(encode_record(record))
        per_record = 2 * frame_estimate + 88  # blob + matrix + directory growth
        return min(self._COLUMNAR_CHUNK_RECORDS, headroom // (4 * per_record))

    def _commit_frame_runs(self, record_ids, records, runs, plan,
                           fast: bool | None = None) -> bool:
        """Drive pre-encoded frame runs through buffer and fused pages.

        Replays exactly the scalar loop's page layout: head frames top
        up the current write buffer, maximal full pages are written
        straight from the run blobs, and the tail (anything after the
        last page boundary, including an exactly-full final page) stays
        buffered. Returns False — having written nothing — when a frame
        exceeds the page, so the scalar loop can raise its per-record
        error.
        """
        usable = self._page_size - self._PAGE_HEADER_BYTES
        for run in runs:
            if run.frame_len > usable:
                return False
        scratch = 48 * len(records)
        for run in runs:
            scratch += 2 * len(run.blob)
        self._batch_scratch_bytes = scratch
        # Append-only fast path: when no id in the chunk collides with
        # the directory, the write buffer, or another chunk id, page
        # commits need no retire interleave — the directory takes one
        # C-speed bulk update per page instead of a per-record loop.
        # ``insert_batch`` pre-computes the verdict once per batch.
        if fast is None:
            unique = set(record_ids)
            fast = (
                len(unique) == len(record_ids)
                and self._directory.keys().isdisjoint(unique)
                and self._buffered.keys().isdisjoint(unique)
            )
        try:
            self._commit_frame_stream(
                record_ids, records, runs, plan, usable, fast
            )
        finally:
            self._batch_scratch_bytes = 0
        return True

    def _commit_frame_stream(self, record_ids, records, runs, plan,
                             usable, fast) -> None:
        run_index = 0
        in_run = 0  # frames already consumed from runs[run_index]
        n_runs = len(runs)
        buffer = self._buffer
        entries = self._buffer_entries
        buffered = self._buffered
        # Phase A: top up a non-empty write buffer frame by frame, just
        # like the scalar loop, until it flushes (or the batch ends).
        while run_index < n_runs and buffer:
            run = runs[run_index]
            frame_len = run.frame_len
            if len(buffer) + frame_len > usable:
                self._flush_buffer()
                self._check_ram()
                buffer = self._buffer
                entries = self._buffer_entries
                buffered = self._buffered
                break
            offset = len(buffer)
            blob_at = in_run * frame_len
            buffer += run.blob[blob_at : blob_at + frame_len]
            index = run.start + in_run
            entries.append(
                (record_ids[index], _ENTRY_INSERT,
                 offset + run.payload_offset, run.payload_len,
                 records[index])
            )
            buffered[record_ids[index]] = len(entries) - 1
            in_run += 1
            if in_run == run.count:
                run_index += 1
                in_run = 0
        # Per-field column accessors for the fused zone-map fold. A
        # chunk-level NaN sweep (vectorized ``arr != arr``) lets pages
        # of NaN-free float columns take the clean min/max fold.
        zone_columns: list[tuple[str, str, object, object]] = []
        if self._zone_maps and run_index < n_runs:
            for name in plan.names:
                kind = plan.kinds[name]
                if kind == "c":
                    zone_columns.append((name, "c", [records[0][name]], None))
                elif kind == "f":
                    arr = plan.arrays[name]
                    flags = arr != arr
                    zone_columns.append(
                        (name, "f", arr, flags if flags.any() else None)
                    )
                else:
                    zone_columns.append((name, "i", plan.arrays[name], None))
        # Phase B: commit maximal pages straight from the run blobs.
        # Zone folds are deferred into ``zone_spans`` and applied per
        # block (and before any mid-chunk checkpoint) — see
        # :meth:`_fold_zone_spans` for the equivalence argument.
        header = self._PAGE_HEADER_BYTES
        directory = self._directory
        live = self._live_per_block
        zone_spans: list[tuple[object, int, int]] = []
        while run_index < n_runs:
            parts: list[tuple[object, int, int]] = []  # run, start, count
            fill = 0
            scan_run = run_index
            scan_in = in_run
            while scan_run < n_runs:
                run = runs[scan_run]
                fit = (usable - fill) // run.frame_len
                remaining = run.count - scan_in
                take = remaining if remaining < fit else fit
                if take <= 0:
                    break
                parts.append((run, scan_in, take))
                fill += take * run.frame_len
                scan_in += take
                if scan_in == run.count:
                    scan_run += 1
                    scan_in = 0
            if scan_run >= n_runs:
                break  # tail stays buffered (even an exactly-full page)
            page = self._allocate_page()
            self._page_sequence += 1
            sequence = self._page_sequence
            pieces = [sequence.to_bytes(header, "big")]
            for run, start_in, take in parts:
                blob_at = start_in * run.frame_len
                pieces.append(
                    run.blob[blob_at : blob_at + take * run.frame_len]
                )
            page_data = b"".join(pieces)
            self.flash.write_page(page, page_data)
            if self.page_cache is not None:
                self.page_cache.note_write(page, page_data)
            block = page // self._pages_per_block
            summary = self._block_summary(block)
            summary.note_page(sequence)
            if self._integrity_key is not None:
                self._note_page_tag(page, page_data)
            offset = header
            if fast:
                on_page = 0
                for run, start_in, take in parts:
                    frame_len = run.frame_len
                    value_at = offset + run.payload_offset
                    base = run.start + start_in
                    directory.update(zip(
                        record_ids[base : base + take],
                        zip(repeat(page),
                            range(value_at, value_at + take * frame_len,
                                  frame_len),
                            repeat(run.payload_len)),
                    ))
                    offset += take * frame_len
                    on_page += take
                live[block] = live.get(block, 0) + on_page
            else:
                # Replacement-capable slow path: live-count increments
                # are deferred in ``pending`` and flushed before any
                # retire, so an intra-page duplicate id sees the earlier
                # occurrences' counts, exactly as the sequential
                # retire/set/increment interleave would.
                pending = 0
                for run, start_in, take in parts:
                    frame_len = run.frame_len
                    payload_len = run.payload_len
                    value_at = offset + run.payload_offset
                    base = run.start + start_in
                    for record_id in record_ids[base : base + take]:
                        if record_id in directory:
                            if pending:
                                live[block] = live.get(block, 0) + pending
                                pending = 0
                            self._retire(record_id)
                        directory[record_id] = (page, value_at, payload_len)
                        value_at += frame_len
                        pending += 1
                    offset += take * frame_len
                if pending:
                    live[block] = live.get(block, 0) + pending
            if zone_columns:
                first_run, first_in, _ = parts[0]
                last_run, last_in, last_take = parts[-1]
                zone_spans.append((
                    summary,
                    first_run.start + first_in,
                    last_run.start + last_in + last_take,
                ))
            _FLUSHES.inc()
            self._pages_since_checkpoint += 1
            if (
                self._checkpoint_interval is not None
                and self._pages_since_checkpoint >= self._checkpoint_interval
            ):
                # The checkpoint serializes zone summaries: pending
                # folds must land first or recovered blocks would carry
                # under-approximate (unsafe) bounds.
                if zone_spans:
                    self._fold_zone_spans(zone_columns, zone_spans)
                    zone_spans = []
                self.checkpoint()
            self._check_ram()
            run_index, in_run = scan_run, scan_in
        if zone_spans:
            self._fold_zone_spans(zone_columns, zone_spans)
        # Phase C: buffer the tail frames with their original records
        # (zone maps fold them at the next flush, like scalar entries).
        buffer = self._buffer
        entries = self._buffer_entries
        buffered = self._buffered
        while run_index < n_runs:
            run = runs[run_index]
            frame_len = run.frame_len
            take = run.count - in_run
            blob_at = in_run * frame_len
            offset = len(buffer)
            buffer += run.blob[blob_at : blob_at + take * frame_len]
            base = run.start + in_run
            for j in range(take):
                index = base + j
                entries.append(
                    (record_ids[index], _ENTRY_INSERT,
                     offset + run.payload_offset, run.payload_len,
                     records[index])
                )
                buffered[record_ids[index]] = len(entries) - 1
                offset += frame_len
            run_index += 1
            in_run = 0

    def _fold_zone_spans(self, zone_columns, zone_spans) -> None:
        """Fold committed pages' column slices into block summaries,
        grouped per block: two numpy reductions per field per block
        instead of a Python ``min``/``max`` pass per page.

        Exactly equivalent to the scalar flush path's per-page
        ``note_values`` folds: min/max are associative and the pages of
        one chunk consume contiguous column ranges in commit order.
        The cases where "which equal element wins" is observable — NaN
        pages and ``±0.0`` ties — replay the per-page fold verbatim.
        """
        groups: list[tuple[object, list[tuple[int, int]]]] = []
        for summary, lo, hi in zone_spans:
            if groups and groups[-1][0] is summary:
                groups[-1][1].append((lo, hi))
            else:
                groups.append((summary, [(lo, hi)]))
        for summary, spans in groups:
            group_lo = spans[0][0]
            group_hi = spans[-1][1]
            for name, kind, column, nan_flags in zone_columns:
                if kind == "c":
                    summary.note_values(name, column)
                    continue
                if (
                    nan_flags is not None
                    and nan_flags[group_lo:group_hi].any()
                ):
                    for lo, hi in spans:
                        values = column[lo:hi].tolist()
                        if nan_flags[lo:hi].any():
                            summary.note_values(name, values)
                        else:
                            summary.note_values(name, values, clean=True)
                    continue
                block = column[group_lo:group_hi]
                bound_lo = block.min().item()
                bound_hi = block.max().item()
                if kind == "f" and (bound_lo == 0.0 or bound_hi == 0.0):
                    # A ±0.0 tie: numpy reductions may keep a different
                    # (repr-distinguishable) zero than the sequential
                    # fold would. Replay per page instead.
                    for lo, hi in spans:
                        summary.note_values(
                            name, column[lo:hi].tolist(), clean=True)
                    continue
                summary.note_values(name, [bound_lo, bound_hi], clean=True)

    def delete(self, record_id: str) -> None:
        """Delete a record (raises :class:`NotFoundError` if absent)."""
        if not self.contains(record_id):
            raise NotFoundError(f"no record {record_id!r}")
        self._append(_ENTRY_DELETE, record_id, b"")
        self.deletes += 1

    def contains(self, record_id: str) -> bool:
        index = self._buffered.get(record_id)
        if index is not None:
            return self._buffer_entries[index][1] == _ENTRY_INSERT
        return record_id in self._directory

    def get(self, record_id: str) -> Record:
        """Fetch the latest version of a record (one page read, unless
        the record is still in the write buffer)."""
        index = self._buffered.get(record_id)
        if index is not None:
            _, kind, offset, length, _ = self._buffer_entries[index]
            if kind == _ENTRY_DELETE:
                raise NotFoundError(f"no record {record_id!r}")
            return decode_record(
                bytes(self._buffer[offset : offset + length]),
                context="write buffer",
            )
        location = self._directory.get(record_id)
        if location is None:
            raise NotFoundError(f"no record {record_id!r}")
        page, offset, length = location
        data = self._read_page(page)
        try:
            return decode_record(data[offset : offset + length])
        except StorageError as error:
            raise StorageError(
                f"{error} [record {record_id!r} page {page} block "
                f"{page // self._pages_per_block} offset {offset}]"
            ) from error

    def get_many(self, record_ids: list[str]) -> list[Record]:
        """Fetch several records, reading each flash page at most once.

        This is what an index-driven fetch uses: postings that share a
        page cost a single page read.
        """
        buffered = [record_id for record_id in record_ids
                    if record_id in self._buffered]
        flushed = [record_id for record_id in record_ids
                   if record_id not in self._buffered]
        page_cache: dict[int, bytes] = {}
        results: dict[str, Record] = {}
        for record_id in flushed:
            location = self._directory.get(record_id)
            if location is None:
                raise NotFoundError(f"no record {record_id!r}")
            page, offset, length = location
            if page not in page_cache:
                page_cache[page] = self._read_page(page)
            try:
                results[record_id] = decode_record(
                    page_cache[page][offset : offset + length]
                )
            except StorageError as error:
                raise StorageError(
                    f"{error} [record {record_id!r} page {page} block "
                    f"{page // self._pages_per_block} offset {offset}]"
                ) from error
        for record_id in buffered:
            results[record_id] = self.get(record_id)
        return [results[record_id] for record_id in record_ids]

    def flush(self) -> None:
        """Force buffered entries to flash (partial page write)."""
        self._flush_buffer()

    def record_ids(self) -> list[str]:
        """All live record ids (buffered writes included), sorted."""
        ids = set(self._directory)
        for entry_id, index in self._buffered.items():
            if self._buffer_entries[index][1] == _ENTRY_INSERT:
                ids.add(entry_id)
            else:
                ids.discard(entry_id)
        return sorted(ids)

    def scan(self) -> Iterator[tuple[str, Record]]:
        """Iterate ``(record_id, record)`` over all live records.

        Reads each flash page at most once (records are grouped by
        page), so this is the honest full-scan baseline that E8
        compares against index lookups.
        """
        buffered_ids = set(self._buffered)
        by_page: dict[int, list[tuple[str, int, int]]] = {}
        for record_id, (page, offset, length) in self._directory.items():
            if record_id not in buffered_ids:
                by_page.setdefault(page, []).append((record_id, offset, length))
        for page in sorted(by_page):
            data = self._read_page(page)
            for record_id, offset, length in sorted(by_page[page], key=lambda e: e[1]):
                try:
                    record = decode_record(data[offset : offset + length])
                except StorageError as error:
                    raise StorageError(
                        f"{error} [page {page} block "
                        f"{page // self._pages_per_block} offset {offset}]"
                    ) from error
                yield record_id, record
        for entry_id in sorted(buffered_ids):
            if self.contains(entry_id):
                yield entry_id, self.get(entry_id)

    # -- zone-map-pruned scans ------------------------------------------------

    @property
    def zone_maps_enabled(self) -> bool:
        return self._zone_maps

    @property
    def columnar_enabled(self) -> bool:
        return self._columnar

    def _locations_by_page(self, buffered_ids, prune, field, low, high):
        """Group flash-resident directory entries by page, applying
        zone-map block pruning with one ``admits`` verdict per block
        (the verdict is a pure function of the block summary)."""
        by_page: dict[int, list[tuple[str, int, int]]] = {}
        if prune:
            pages_per_block = self._pages_per_block
            summaries = self._summaries
            admitted: dict[int, bool] = {}
            for record_id, (page, offset, length) in self._directory.items():
                if record_id in buffered_ids:
                    continue
                block = page // pages_per_block
                verdict = admitted.get(block)
                if verdict is None:
                    summary = summaries.get(block)
                    verdict = (
                        summary is None or summary.admits(field, low, high)
                    )
                    admitted[block] = verdict
                if not verdict:
                    continue
                by_page.setdefault(page, []).append(
                    (record_id, offset, length))
        else:
            for record_id, (page, offset, length) in self._directory.items():
                if record_id in buffered_ids:
                    continue
                by_page.setdefault(page, []).append(
                    (record_id, offset, length))
        return by_page

    def scan_range(self, field: str, low: Value = None,
                   high: Value = None) -> Iterator[tuple[str, Record]]:
        """Skip-scan: like :meth:`scan`, but pages of blocks whose zone
        map proves no record can satisfy ``low <= record[field] <=
        high`` are never read. Yields a *superset* of the matching
        records (block granularity) — callers re-filter, exactly as
        they re-filter index candidates. Falls back to a plain scan
        when zone maps are disabled.
        """
        buffered_ids = set(self._buffered)
        by_page = self._locations_by_page(
            buffered_ids, self._zone_maps, field, low, high
        )
        for page in sorted(by_page):
            data = self._read_page(page)
            for record_id, offset, length in sorted(by_page[page], key=lambda e: e[1]):
                try:
                    record = decode_record(data[offset : offset + length])
                except StorageError as error:
                    raise StorageError(
                        f"{error} [page {page} block "
                        f"{page // self._pages_per_block} offset {offset}]"
                    ) from error
                yield record_id, record
        for entry_id in sorted(buffered_ids):
            if self.contains(entry_id):
                yield entry_id, self.get(entry_id)

    def scan_batches(
        self, field: str | None = None, low: Value = None, high: Value = None,
        *, chunk_pages: int = 64,
    ) -> Iterator[tuple[list[str], ColumnBatch]]:
        """Columnar scan: yield ``(record_ids, ColumnBatch)`` chunks.

        Covers exactly what :meth:`scan` (or, with ``field``,
        :meth:`scan_range`) yields — same records, same order, same
        page reads, same zone-map pruning — but decodes a chunk of
        pages at a time through :func:`encoding.decode_page`, so
        uniform frames become column slices instead of per-record
        dicts. The buffered tail arrives as one final scalar batch.
        Chunk size shrinks with the RAM budget headroom so decode
        scratch stays charged but bounded.
        """
        headroom = self._ram_headroom()
        if headroom is not None:
            chunk_pages = max(
                1, min(chunk_pages, headroom // (4 * self._page_size))
            )
        buffered_ids = set(self._buffered)
        by_page = self._locations_by_page(
            buffered_ids, self._zone_maps and field is not None,
            field, low, high,
        )
        pages = sorted(by_page)
        for chunk_at in range(0, len(pages), chunk_pages):
            chunk = pages[chunk_at : chunk_at + chunk_pages]
            self._batch_scratch_bytes = 3 * len(chunk) * self._page_size
            try:
                record_ids: list[str] = []
                payloads: list[bytes] = []
                for page in chunk:
                    data = self._read_page(page)
                    for record_id, offset, length in sorted(
                        by_page[page], key=lambda e: e[1]
                    ):
                        record_ids.append(record_id)
                        payloads.append(data[offset : offset + length])
                batch = decode_page(
                    payloads,
                    context=f"pages {chunk[0]}..{chunk[-1]}",
                )
            finally:
                self._batch_scratch_bytes = 0
            yield record_ids, batch
        tail_ids = [
            entry_id for entry_id in sorted(buffered_ids)
            if self.contains(entry_id)
        ]
        if tail_ids:
            tail_records = [self.get(entry_id) for entry_id in tail_ids]
            yield tail_ids, ColumnBatch.from_records(tail_records)

    def __len__(self) -> int:
        return len(self.record_ids())

    # -- compaction -----------------------------------------------------------

    @property
    def pages_used(self) -> int:
        """Pages currently holding log data (allocated, not yet erased)."""
        return self._allocated_pages

    def _used_blocks(self) -> list[int]:
        """Blocks currently holding log data (including the active one)."""
        free = set(self._free_blocks)
        return [
            block for block in range(self._tail_block)
            if block not in free
        ]

    def _erase_block(self, block: int) -> None:
        """Erase one data block and drop its zone map (the page cache
        invalidates itself through the device's erase listener)."""
        self.flash.erase_block(block)
        self._summaries.pop(block, None)
        if self._page_tags:
            first_page = block * self._pages_per_block
            for page in range(first_page, first_page + self._pages_per_block):
                self._page_tags.pop(page, None)

    def compact(self) -> int:
        """Full compaction: stage the live set in RAM, erase every used
        block, and rewrite the live records from scratch.

        This is the stop-the-world strategy of the smallest embedded
        log stores; it needs no reserved space and its full cost (page
        reads + block erases + page writes) lands in the flash
        counters. Returns the number of blocks erased. See
        :meth:`compact_incremental` for the pay-as-you-go alternative.
        """
        self._flush_buffer()
        live = [(record_id, self.get(record_id)) for record_id in self.record_ids()]
        used = self._used_blocks()
        for block in used:
            self._erase_block(block)
        self._directory.clear()
        self._live_per_block.clear()
        self._tail_block = 0
        self._active_block = None
        self._active_offset = 0
        self._free_blocks = []
        self._allocated_pages = 0
        for record_id, record in live:
            self._append(_ENTRY_INSERT, record_id, encode_record(record), record)
        self._flush_buffer()
        _COMPACTIONS.inc()
        return len(used)

    def compact_incremental(self, max_victims: int = 1) -> int:
        """Victim-block garbage collection: relocate the live records of
        the emptiest full blocks, erase them, recycle them.

        The classic flash-GC strategy: cost is proportional to the
        *live* data in the victims (often near zero for churn-heavy
        workloads) instead of the whole store, at the price of
        bookkeeping and potentially uneven wear. Returns the number of
        blocks reclaimed; picking fewer than ``max_victims`` (or none)
        happens when no full, non-active block exists.
        """
        self._flush_buffer()
        pages_per_block = self._pages_per_block
        candidates = [
            block for block in self._used_blocks()
            if block != self._active_block
        ]
        victims = sorted(
            candidates, key=lambda block: self._live_per_block.get(block, 0)
        )[:max_victims]
        reclaimed = 0
        for victim in victims:
            live_ids = [
                record_id
                for record_id, (page, _, _) in self._directory.items()
                if page // pages_per_block == victim
            ]
            if live_ids:
                relocated = self.get_many(sorted(live_ids))
                for record_id, record in zip(sorted(live_ids), relocated):
                    self._append(
                        _ENTRY_INSERT, record_id, encode_record(record), record
                    )
                self._flush_buffer()
            self._erase_block(victim)
            self._live_per_block.pop(victim, None)
            self._free_blocks.append(victim)
            self._allocated_pages -= pages_per_block
            reclaimed += 1
        if reclaimed:
            _COMPACTIONS.inc()
        return reclaimed

    # -- directory checkpoints -------------------------------------------------

    @property
    def _region_start_block(self) -> int:
        return self.flash.block_count - self._checkpoint_blocks

    def _half_blocks(self, half: int) -> range:
        half_size = self._checkpoint_blocks // 2
        start = self._region_start_block + half * half_size
        return range(start, start + half_size)

    def _serialize_checkpoint(self) -> bytes:
        directory_blob = bytearray()
        for record_id, (page, offset, length) in self._directory.items():
            id_bytes = record_id.encode()
            directory_blob += len(id_bytes).to_bytes(2, "big") + id_bytes
            directory_blob += page.to_bytes(4, "big")
            directory_blob += offset.to_bytes(2, "big")
            directory_blob += length.to_bytes(2, "big")
        live_blob = bytearray()
        for block, count in sorted(self._live_per_block.items()):
            live_blob += block.to_bytes(4, "big") + count.to_bytes(4, "big")
        zone_blob = bytearray()
        for block, summary in sorted(self._summaries.items()):
            encoded = encode_record(summary.to_record())
            zone_blob += block.to_bytes(4, "big")
            zone_blob += len(encoded).to_bytes(4, "big")
            zone_blob += encoded
        parts = [b"CKP1", self._page_sequence.to_bytes(8, "big")]
        for blob in (directory_blob, live_blob, zone_blob):
            parts.append(len(blob).to_bytes(8, "big"))
            parts.append(bytes(blob))
        return b"".join(parts)

    @staticmethod
    def _parse_checkpoint(payload: bytes) -> dict:
        if payload[:4] != b"CKP1":
            raise StorageError("malformed checkpoint payload")
        sequence = int.from_bytes(payload[4:12], "big")
        cursor = 12

        def take_blob() -> bytes:
            nonlocal cursor
            length = int.from_bytes(payload[cursor : cursor + 8], "big")
            cursor += 8
            blob = payload[cursor : cursor + length]
            if len(blob) != length:
                raise StorageError("truncated checkpoint payload")
            cursor += length
            return blob

        directory_blob = take_blob()
        live_blob = take_blob()
        zone_blob = take_blob()
        directory: dict[str, tuple[int, int, int]] = {}
        position = 0
        while position < len(directory_blob):
            id_length = int.from_bytes(
                directory_blob[position : position + 2], "big")
            position += 2
            record_id = directory_blob[position : position + id_length].decode()
            position += id_length
            page = int.from_bytes(directory_blob[position : position + 4], "big")
            offset = int.from_bytes(
                directory_blob[position + 4 : position + 6], "big")
            length = int.from_bytes(
                directory_blob[position + 6 : position + 8], "big")
            position += 8
            directory[record_id] = (page, offset, length)
        live: dict[int, int] = {}
        for position in range(0, len(live_blob), 8):
            block = int.from_bytes(live_blob[position : position + 4], "big")
            live[block] = int.from_bytes(
                live_blob[position + 4 : position + 8], "big")
        summaries: dict[int, BlockSummary] = {}
        position = 0
        while position < len(zone_blob):
            block = int.from_bytes(zone_blob[position : position + 4], "big")
            length = int.from_bytes(zone_blob[position + 4 : position + 8], "big")
            position += 8
            summaries[block] = BlockSummary.from_record(
                decode_record(
                    bytes(zone_blob[position : position + length]),
                    context=f"checkpoint zone map block {block}",
                )
            )
            position += length
        return {
            "seq": sequence, "directory": directory,
            "live": live, "summaries": summaries,
        }

    def checkpoint(self) -> int:
        """Persist the directory, live counts and zone maps into the
        reserved checkpoint region; returns the pages written.

        Alternates between the region's two halves (A/B), erasing the
        target half first, so a crash mid-write always leaves the
        previous complete checkpoint intact. Reboot recovery then
        replays only pages written after the checkpoint's sequence
        number (see :meth:`recover`).
        """
        if not self._checkpoint_blocks:
            raise ConfigurationError(
                "store was built without a checkpoint region"
            )
        self._flush_buffer()
        payload = self._serialize_checkpoint()
        chunk_capacity = self._page_size - _CKPT_HEADER_BYTES
        chunks = [
            payload[position : position + chunk_capacity]
            for position in range(0, len(payload), chunk_capacity)
        ] or [b""]
        half_pages = (self._checkpoint_blocks // 2) * self._pages_per_block
        if len(chunks) > half_pages:
            raise StorageError(
                f"checkpoint needs {len(chunks)} pages but each half of the "
                f"region holds {half_pages}; grow checkpoint_blocks"
            )
        if not self._ckpt_region_known:
            # Fresh store over a device of unknown history: wipe the
            # whole region so stale checkpoints cannot shadow this one.
            for block in range(self._region_start_block, self.flash.block_count):
                first_page = block * self._pages_per_block
                if any(
                    self.flash.is_written(page)
                    for page in range(first_page, first_page + self._pages_per_block)
                ):
                    self.flash.erase_block(block)
            self._ckpt_region_known = True
            target = 0
        else:
            target = 1 - self._ckpt_half
            for block in self._half_blocks(target):
                first_page = block * self._pages_per_block
                if any(
                    self.flash.is_written(page)
                    for page in range(first_page, first_page + self._pages_per_block)
                ):
                    self.flash.erase_block(block)
        self._checkpoint_counter += 1
        target_blocks = list(self._half_blocks(target))
        for index, chunk in enumerate(chunks):
            block = target_blocks[index // self._pages_per_block]
            page = block * self._pages_per_block + index % self._pages_per_block
            header = (
                _CKPT_MAGIC
                + self._checkpoint_counter.to_bytes(8, "big")
                + index.to_bytes(2, "big")
                + len(chunks).to_bytes(2, "big")
                + len(chunk).to_bytes(2, "big")
            )
            self.flash.write_page(page, header + chunk)
        self._ckpt_half = target
        self._pages_since_checkpoint = 0
        self.checkpoints_written += 1
        _CHECKPOINTS.inc()
        _OBS.events.emit(
            "store.checkpoint", seq=self._page_sequence,
            pages=len(chunks), records=len(self._directory),
        )
        return len(chunks)

    def _load_latest_checkpoint(self, stats: RecoveryStats) -> dict | None:
        """Scan the reserved region; returns the newest complete
        checkpoint (or None) and restores the writer's A/B state."""
        chunks: dict[int, dict[int, bytes]] = {}
        totals: dict[int, int] = {}
        halves: dict[int, int] = {}
        half_size = self._checkpoint_blocks // 2
        for block in range(self._region_start_block, self.flash.block_count):
            first_page = block * self._pages_per_block
            for page in range(first_page, first_page + self._pages_per_block):
                if not self.flash.is_written(page):
                    continue
                data = self.flash.read_page(page)
                stats.checkpoint_pages_read += 1
                if data[:2] != _CKPT_MAGIC:
                    continue
                ckpt_id = int.from_bytes(data[2:10], "big")
                index = int.from_bytes(data[10:12], "big")
                total = int.from_bytes(data[12:14], "big")
                length = int.from_bytes(data[14:16], "big")
                chunks.setdefault(ckpt_id, {})[index] = data[16 : 16 + length]
                totals[ckpt_id] = total
                halves[ckpt_id] = (
                    0 if block < self._region_start_block + half_size else 1
                )
        self._ckpt_region_known = True
        self._checkpoint_counter = max(chunks, default=0)
        complete = [
            ckpt_id for ckpt_id, got in chunks.items()
            if len(got) == totals.get(ckpt_id)
        ]
        if not complete:
            return None
        latest = max(complete)
        self._ckpt_half = halves[latest]
        payload = b"".join(
            chunks[latest][index] for index in range(totals[latest])
        )
        return self._parse_checkpoint(payload)

    # -- reboot recovery -------------------------------------------------------

    @classmethod
    def recover(cls, flash: NandFlash,
                ram_budget_bytes: int | None = None, *,
                page_cache_bytes: int | None = None,
                zone_maps: bool = True,
                checkpoint_blocks: int = 0,
                checkpoint_interval_pages: int | None = None,
                use_checkpoint: bool = True,
                columnar: bool = True,
                integrity_key: bytes | None = None) -> "LogStructuredStore":
        """Rebuild a store from a flash device after a reboot.

        The RAM directory is volatile; a restarted cell reconstructs it
        by replaying log pages in sequence order. Without a checkpoint
        (or with ``use_checkpoint=False``) every programmed page is
        read — the seed behaviour, cost visible in the flash counters.
        With a checkpoint region the replay is *incremental*: the
        newest complete checkpoint restores the directory and zone
        maps, one probe read per previously known block proves it
        unchanged (NAND sequence numbers are monotone, so a matching
        first-page sequence rules out recycling), and only pages
        written after the checkpoint are replayed. ``last_recovery``
        records what the reboot cost either way.
        """
        store = cls(
            flash, ram_budget_bytes=ram_budget_bytes,
            page_cache_bytes=page_cache_bytes, zone_maps=zone_maps,
            checkpoint_blocks=checkpoint_blocks,
            checkpoint_interval_pages=checkpoint_interval_pages,
            columnar=columnar, integrity_key=integrity_key,
        )
        pages_per_block = flash.timings.pages_per_block
        header = cls._PAGE_HEADER_BYTES
        stats = RecoveryStats(mode="full")
        data_page_limit = store._data_block_count * pages_per_block
        written = [
            page for page in flash.written_pages() if page < data_page_limit
        ]
        checkpoint = None
        if checkpoint_blocks:
            checkpoint = store._load_latest_checkpoint(stats)
        sequenced: list[tuple[int, int, bytes]] = []
        if checkpoint is not None and use_checkpoint:
            stats.mode = "checkpoint"
            stats.checkpoint_seq = checkpoint["seq"]
            store._directory = checkpoint["directory"]
            store._live_per_block = checkpoint["live"]
            store._summaries = checkpoint["summaries"]
            store._page_sequence = checkpoint["seq"]
            by_block: dict[int, list[int]] = {}
            for page in written:
                by_block.setdefault(page // pages_per_block, []).append(page)
            # Blocks the checkpoint knew that were erased (and possibly
            # rewritten) since — by compaction — are *stale*: their
            # checkpointed directory entries point at recycled pages.
            # Every record that survived lives in a strictly newer log
            # entry (GC relocates before erasing; full compaction
            # rewrites everything), so the stale entries are purged and
            # the replay below restores the survivors.
            stale_blocks: set[int] = set()
            for block in list(store._summaries):
                if block not in by_block:
                    stale_blocks.add(block)
                    store._summaries.pop(block)
                    store._live_per_block.pop(block, None)
            for block, pages in sorted(by_block.items()):
                pages.sort()
                summary = store._summaries.get(block)
                if summary is None or not summary.pages:
                    fresh = pages  # block unknown to the checkpoint
                else:
                    probe = flash.read_page(pages[0])
                    stats.probe_reads += 1
                    first_seq = int.from_bytes(probe[:header], "big")
                    if first_seq == summary.min_seq:
                        # unchanged prefix: replay only the tail pages
                        # programmed after the checkpoint
                        fresh = pages[summary.pages :]
                    else:
                        # erased and recycled since the checkpoint:
                        # every page here is newer; rebuild its summary
                        # from the replay
                        stale_blocks.add(block)
                        store._summaries.pop(block, None)
                        store._live_per_block.pop(block, None)
                        sequenced.append((first_seq, pages[0], probe))
                        fresh = pages[1:]
                for page in fresh:
                    data = flash.read_page(page)
                    sequenced.append(
                        (int.from_bytes(data[:header], "big"), page, data)
                    )
            if stale_blocks:
                for record_id, location in list(store._directory.items()):
                    if location[0] // pages_per_block in stale_blocks:
                        del store._directory[record_id]
        else:
            for page in written:
                data = flash.read_page(page)
                sequenced.append(
                    (int.from_bytes(data[:header], "big"), page, data)
                )
        sequenced.sort()
        for sequence, page, data in sequenced:
            store._replay_page(page, data, sequence)
            if sequence > store._page_sequence:
                store._page_sequence = sequence
        stats.pages_replayed = len(sequenced)
        _RECOVERY_PAGES.inc(len(sequenced))
        # Rebuild the allocator: tail past the last programmed block;
        # the block with trailing unprogrammed pages (at most one, by
        # the sequential-write discipline) resumes as the active block;
        # fully-erased blocks below the tail return to the free list.
        written_set = set(written)
        blocks_with_data = sorted(
            {page // pages_per_block for page in written_set}
        )
        store._allocated_pages = len(written_set)
        if blocks_with_data:
            store._tail_block = blocks_with_data[-1] + 1
            store._free_blocks = [
                block for block in range(store._tail_block)
                if block not in blocks_with_data
            ]
            # The sequential-program discipline guarantees at most one
            # partially-filled block: whatever was active at shutdown
            # (which, after GC recycling, need not be the highest one).
            for block in blocks_with_data:
                used_in_block = sum(
                    1 for page in written_set
                    if page // pages_per_block == block
                )
                if used_in_block < pages_per_block:
                    store._active_block = block
                    store._active_offset = used_in_block
                    break
        store.last_recovery = stats
        _OBS.events.emit(
            "store.recovery", mode=stats.mode,
            pages_replayed=stats.pages_replayed,
            checkpoint_pages=stats.checkpoint_pages_read,
            probes=stats.probe_reads,
        )
        return store

    def _replay_page(self, page: int, data: bytes, sequence: int) -> None:
        """Apply one page's log entries to the directory (and fold the
        page into its block's zone map)."""
        offset = self._PAGE_HEADER_BYTES
        block = page // self._pages_per_block
        summary = self._block_summary(block)
        summary.note_page(sequence)
        if self._integrity_key is not None:
            self._note_page_tag(page, data)
        while offset + 5 <= len(data):
            kind = data[offset]
            if kind not in (_ENTRY_INSERT, _ENTRY_DELETE):
                break  # 0xFF padding: end of entries on this page
            id_length = int.from_bytes(data[offset + 1 : offset + 3], "big")
            id_start = offset + 3
            payload_length = int.from_bytes(
                data[id_start + id_length : id_start + id_length + 2], "big"
            )
            payload_start = id_start + id_length + 2
            if payload_start + payload_length > len(data):
                break  # torn write: ignore the partial tail entry
            record_id = data[id_start : id_start + id_length].decode()
            if kind == _ENTRY_INSERT:
                self._retire(record_id)
                self._directory[record_id] = (
                    page, payload_start, payload_length,
                )
                self._live_per_block[block] = (
                    self._live_per_block.get(block, 0) + 1
                )
                if self._zone_maps:
                    try:
                        replayed = decode_record(
                            data[payload_start : payload_start + payload_length]
                        )
                    except StorageError as error:
                        raise StorageError(
                            f"{error} [replay page {page} block {block} "
                            f"offset {payload_start}]"
                        ) from error
                    summary.note_record(replayed)
            else:
                self._retire(record_id)
                self._directory.pop(record_id, None)
            offset = payload_start + payload_length
