"""Compact binary encoding for records.

The embedded store persists records as flat field maps. The encoding is
a deterministic tagged binary format (not JSON) because (a) records
must round-trip ``bytes`` values such as wrapped keys and digests, and
(b) determinism matters: the same record must serialize to the same
bytes so Merkle leaves and MACs are stable.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``.
"""

from __future__ import annotations

import struct

from ..errors import StorageError

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6

Value = None | bool | int | float | str | bytes
Record = dict[str, Value]


def _encode_value(value: Value) -> bytes:
    if value is None:
        return bytes([_TAG_NONE])
    if value is True:
        return bytes([_TAG_TRUE])
    if value is False:
        return bytes([_TAG_FALSE])
    if isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return bytes([_TAG_INT]) + _varlen(payload)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        return bytes([_TAG_STR]) + _varlen(value.encode())
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + _varlen(value)
    raise StorageError(f"unsupported record value type: {type(value).__name__}")


def _varlen(payload: bytes) -> bytes:
    return len(payload).to_bytes(4, "big") + payload


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise StorageError("truncated record encoding")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_varlen(self) -> bytes:
        length = int.from_bytes(self.take(4), "big")
        return self.take(length)

    @property
    def exhausted(self) -> bool:
        return self.offset == len(self.data)


def _decode_value(reader: _Reader) -> Value:
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(reader.take_varlen(), "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take_varlen().decode()
    if tag == _TAG_BYTES:
        return reader.take_varlen()
    raise StorageError(f"unknown value tag {tag}")


def encode_record(record: Record) -> bytes:
    """Serialize a record deterministically (fields in sorted order)."""
    parts = [len(record).to_bytes(2, "big")]
    for field_name in sorted(record):
        parts.append(_varlen(field_name.encode()))
        parts.append(_encode_value(record[field_name]))
    return b"".join(parts)


def decode_record(data: bytes) -> Record:
    """Inverse of :func:`encode_record`; raises :class:`StorageError`
    on any malformed input (including invalid UTF-8 from bit flips)."""
    reader = _Reader(data)
    field_count = int.from_bytes(reader.take(2), "big")
    record: Record = {}
    try:
        for _ in range(field_count):
            field_name = reader.take_varlen().decode()
            record[field_name] = _decode_value(reader)
    except UnicodeDecodeError as exc:
        raise StorageError("corrupted text in record encoding") from exc
    if not reader.exhausted:
        raise StorageError("trailing bytes after record")
    return record
