"""Compact binary encoding for records, scalar and columnar.

The embedded store persists records as flat field maps. The encoding is
a deterministic tagged binary format (not JSON) because (a) records
must round-trip ``bytes`` values such as wrapped keys and digests, and
(b) determinism matters: the same record must serialize to the same
bytes so Merkle leaves and MACs are stable.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``.

Two encode/decode paths share this format, same pattern as
:mod:`repro.commons.kernels`:

* the **scalar reference** (:func:`encode_record` /
  :func:`decode_record`) — one record at a time, the semantic oracle;
* the **columnar batch path** (:func:`encode_records`,
  :func:`encode_frames`, :func:`decode_page`) — numpy-backed when
  available, operating on a page's or a batch's worth of records as
  per-field typed arrays (:class:`ColumnBatch`). It is pinned
  bit-for-bit to the scalar path: batch-encoded payloads are byte
  identical and batch-decoded records compare equal, for every value
  tag. Batches that do not fit the vectorized lane (mixed schemas,
  negative or >63-bit ints, non-numeric columns) transparently fall
  back to the scalar reference, so callers never see a semantic
  difference — only a cost difference.
"""

from __future__ import annotations

import struct

from ..errors import StorageError

try:  # numpy accelerates the columnar lane; the scalar lane needs nothing
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None
    HAVE_NUMPY = False

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6

Value = None | bool | int | float | str | bytes
Record = dict[str, Value]


def _encode_value(value: Value) -> bytes:
    if value is None:
        return bytes([_TAG_NONE])
    if value is True:
        return bytes([_TAG_TRUE])
    if value is False:
        return bytes([_TAG_FALSE])
    if isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return bytes([_TAG_INT]) + _varlen(payload)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        return bytes([_TAG_STR]) + _varlen(value.encode())
    if isinstance(value, bytes):
        return bytes([_TAG_BYTES]) + _varlen(value)
    raise StorageError(f"unsupported record value type: {type(value).__name__}")


def _varlen(payload: bytes) -> bytes:
    return len(payload).to_bytes(4, "big") + payload


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise StorageError("truncated record encoding")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_varlen(self) -> bytes:
        length = int.from_bytes(self.take(4), "big")
        return self.take(length)

    @property
    def exhausted(self) -> bool:
        return self.offset == len(self.data)


def _decode_value(reader: _Reader) -> Value:
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(reader.take_varlen(), "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take_varlen().decode()
    if tag == _TAG_BYTES:
        return reader.take_varlen()
    raise StorageError(f"unknown value tag {tag}")


def encode_record(record: Record) -> bytes:
    """Serialize a record deterministically (fields in sorted order)."""
    parts = [len(record).to_bytes(2, "big")]
    for field_name in sorted(record):
        parts.append(_varlen(field_name.encode()))
        parts.append(_encode_value(record[field_name]))
    return b"".join(parts)


def _decode_record_inner(data: bytes) -> Record:
    reader = _Reader(data)
    field_count = int.from_bytes(reader.take(2), "big")
    record: Record = {}
    try:
        for _ in range(field_count):
            field_name = reader.take_varlen().decode()
            record[field_name] = _decode_value(reader)
    except UnicodeDecodeError as exc:
        raise StorageError("corrupted text in record encoding") from exc
    if not reader.exhausted:
        raise StorageError("trailing bytes after record")
    return record


def decode_record(data: bytes, *, context: str | None = None) -> Record:
    """Inverse of :func:`encode_record`; raises :class:`StorageError`
    on any malformed input (including invalid UTF-8 from bit flips).

    ``context`` is appended to the error message so corrupt-flash
    diagnostics can name the page/block/offset the bytes came from,
    not just "bad tag".
    """
    if context is None:
        return _decode_record_inner(data)
    try:
        return _decode_record_inner(data)
    except StorageError as error:
        raise StorageError(f"{error} [{context}]") from error


# -- columnar batch path ------------------------------------------------------
#
# Everything below is the vectorized lane. It exists purely for speed:
# every function either produces byte-identical output to the scalar
# reference above or returns None / falls back to it, so callers treat
# the two lanes as interchangeable.

# Below this many records the numpy call overhead dominates; the scalar
# loop is faster and trivially exact.
COLUMNAR_MIN_BATCH = 16

_INT64_MIN = -(2**63)


class ColumnBatch:
    """A batch of decoded records held as per-field columns.

    ``fields`` is the (sorted) schema of the columnar lane; ``columns``
    maps each field to a list of ``count`` Python values. Rows that did
    not fit the uniform schema live whole in ``scalar_rows`` (row index
    -> record); their slots in the column lists hold placeholders that
    must never be read. ``row(i)`` / ``rows()`` materialize plain
    records equal to what :func:`decode_record` would have produced.
    """

    __slots__ = ("count", "fields", "columns", "scalar_rows", "_numeric")

    def __init__(self, count: int, fields: tuple[str, ...] = (),
                 columns: dict[str, list] | None = None,
                 scalar_rows: dict[int, Record] | None = None) -> None:
        self.count = count
        self.fields = tuple(fields)
        self.columns = columns if columns is not None else {}
        self.scalar_rows = scalar_rows if scalar_rows is not None else {}
        self._numeric: dict[str, tuple | None] = {}

    @classmethod
    def from_records(cls, records: list[Record]) -> "ColumnBatch":
        """A fully scalar batch (used when vectorization is off)."""
        return cls(len(records), scalar_rows=dict(enumerate(records)))

    @classmethod
    def from_arrays(cls, arrays: dict[str, object],
                    consts: dict[str, Value] | None = None,
                    count: int | None = None) -> "ColumnBatch":
        """Build a batch straight from per-field numpy arrays.

        ``arrays`` maps field name -> one-dimensional integer/float
        array (one value per row); ``consts`` maps field name -> one
        str/bytes/bool/None value repeated for every row. This is the
        producer-side entry point of the columnar ingest lane: the
        arrays are kept as the batch's cached numeric views, so
        :func:`lane_plan_for_batch` skips the per-record gathers and
        type scans entirely and the encoder works on the arrays the
        producer already holds. ``row()``/``rows()`` still materialize
        records equal to what the scalar path would have seen.
        """
        if not HAVE_NUMPY:
            raise StorageError("ColumnBatch.from_arrays requires numpy")
        consts = consts or {}
        columns: dict[str, list] = {}
        numeric: dict[str, tuple] = {}
        for name, column in arrays.items():
            arr = _np.asarray(column)
            if arr.ndim != 1:
                raise StorageError(
                    f"column {name!r} must be one-dimensional")
            if count is None:
                count = arr.shape[0]
            elif arr.shape[0] != count:
                raise StorageError(
                    f"column {name!r} has {arr.shape[0]} values, "
                    f"expected {count}")
            kind = arr.dtype.kind
            try:
                if kind in "iu":
                    arr = _np.ascontiguousarray(
                        arr.astype(_np.int64, casting="safe", copy=False))
                    numeric[name] = ("i", arr)
                elif kind == "f":
                    arr = _np.ascontiguousarray(
                        arr.astype(_np.float64, casting="safe", copy=False))
                    numeric[name] = ("f", arr)
                else:
                    raise StorageError(
                        f"column {name!r}: unsupported dtype {arr.dtype} "
                        "(pass non-numeric fields via consts)")
            except TypeError as exc:  # e.g. uint64 cannot cast safely
                raise StorageError(
                    f"column {name!r}: dtype {arr.dtype} does not fit "
                    "int64") from exc
        if count is None:
            count = 0
        for name, value in consts.items():
            if name in numeric:
                raise StorageError(f"field {name!r} given twice")
            if not (value is None or type(value) in (bool, str, bytes)):
                raise StorageError(
                    f"const field {name!r}: unsupported type "
                    f"{type(value).__name__}")
            columns[name] = [value] * count
        # Numeric columns stay as their arrays; the Python value lists
        # materialize lazily (``row``/``rows``) so the fused ingest
        # path never pays a whole-column ``tolist``.
        batch = cls(count, tuple(sorted(set(columns) | set(numeric))), columns)
        batch._numeric.update(numeric)
        return batch

    def row(self, index: int) -> Record:
        if index in self.scalar_rows:
            return self.scalar_rows[index]
        columns = self.columns
        if len(columns) != len(self.fields):  # lazy from_arrays batch
            out = {}
            for name in self.fields:
                column = columns.get(name)
                if column is not None:
                    out[name] = column[index]
                else:
                    out[name] = self._numeric[name][1][index].item()
            return out
        return {name: columns[name][index] for name in self.fields}

    def _materialize_columns(self) -> None:
        for name in self.fields:
            if name not in self.columns:
                self.columns[name] = self._numeric[name][1].tolist()

    def rows(self) -> list[Record]:
        if not self.scalar_rows:
            names = self.fields
            if not names:
                return [{} for _ in range(self.count)]
            if len(self.columns) != len(names):
                self._materialize_columns()
            return [
                dict(zip(names, values))
                for values in zip(*(self.columns[name] for name in names))
            ]
        return [self.row(index) for index in range(self.count)]

    def scalar_indices(self):
        """Row indexes the vectorized predicate path must re-evaluate
        per record (sorted)."""
        return sorted(self.scalar_rows)

    def numeric_view(self, name: str):
        """``(kind, array)`` for a pure-numeric column, else ``None``.

        ``kind`` is ``"i"`` (int64) or ``"f"`` (float64); the array has
        ``count`` entries and is only meaningful at non-scalar rows.
        Returns ``None`` when the column is absent, mixed-type, holds
        bools, or holds ints outside int64 — callers must then fall
        back to per-record :meth:`Predicate.matches`.
        """
        if name in self._numeric:
            return self._numeric[name]
        view = None
        column = self.columns.get(name)
        if column is not None and HAVE_NUMPY:
            kinds = set(map(type, column))
            if kinds == {int}:
                try:
                    view = ("i", _np.fromiter(
                        column, dtype=_np.int64, count=self.count))
                except OverflowError:
                    view = None
            elif kinds == {float}:
                view = ("f", _np.fromiter(
                    column, dtype=_np.float64, count=self.count))
        self._numeric[name] = view
        return view


# -- vectorized encode --------------------------------------------------------


class _LanePlan:
    """Column classification of a uniform-schema record batch."""

    __slots__ = ("names", "kinds", "arrays", "consts", "lengths", "count")

    def __init__(self, names, kinds, arrays, consts, lengths, count):
        self.names = names      # sorted field names
        self.kinds = kinds      # name -> "i" | "f" | "c"
        self.arrays = arrays    # name -> int64/float64 ndarray
        self.consts = consts    # name -> encoded (tag + value) bytes
        self.lengths = lengths  # name -> per-record int payload lengths
        self.count = count


def _int_lengths(arr) -> "object":
    """Per-value encoded length of the INT payload (the ``L`` in
    ``tag | varlen(L) | L bytes``), matching ``(bit_length+8)//8 + 1``
    of the scalar encoder for the full int64 range."""
    lengths = _np.full(arr.shape, 2, dtype=_np.int64)
    for k in range(1, 8):
        bound = 1 << (8 * k - 1)
        lengths += arr >= bound
        lengths += arr <= -bound
    lengths += arr == _INT64_MIN  # bit_length 64 needs one more byte
    return lengths


def lane_plan(records: list[Record]) -> _LanePlan | None:
    """Classify a batch for the vectorized encoder.

    Returns ``None`` (caller falls back to the scalar encoder) unless
    every record has the same field set and every column is pure
    ``int`` (within int64), pure ``float``, or a constant
    str/bytes/None/bool. ``type() is`` checks keep bools and subclasses
    out of the numeric lanes — they encode differently.
    """
    if not HAVE_NUMPY:
        return None
    count = len(records)
    if count < COLUMNAR_MIN_BATCH:
        return None
    names = sorted(records[0])
    width = len(names)
    # Uniform-schema check in two C-speed passes: every record holds all
    # of ``names`` (the gathers below raise KeyError otherwise), and the
    # field-count total matches — together those force len(r) == width
    # for every record.
    if sum(map(len, records)) != width * count:
        return None
    kinds: dict[str, str] = {}
    arrays: dict[str, object] = {}
    consts: dict[str, bytes] = {}
    lengths: dict[str, object] = {}
    for name in names:
        try:
            column = [record[name] for record in records]
        except KeyError:
            return None
        col_types = set(map(type, column))
        if col_types == {int}:
            try:
                arr = _np.fromiter(column, dtype=_np.int64, count=count)
            except OverflowError:
                return None
            kinds[name] = "i"
            arrays[name] = arr
            lengths[name] = _int_lengths(arr)
        elif col_types == {float}:
            kinds[name] = "f"
            arrays[name] = _np.fromiter(column, dtype=_np.float64, count=count)
        elif len(col_types) == 1 and col_types <= {str, bytes, type(None), bool}:
            if column.count(column[0]) != count:
                return None
            kinds[name] = "c"
            consts[name] = _encode_value(column[0])
        else:
            return None
    return _LanePlan(names, kinds, arrays, consts, lengths, count)


def lane_plan_for_batch(batch: ColumnBatch, start: int = 0,
                        end: int | None = None) -> _LanePlan | None:
    """Lane plan for a slice of a :class:`ColumnBatch`, classifying
    from the batch's cached numeric views instead of per-record
    gathers. Returns ``None`` (callers fall back to materialized rows)
    unless every column is a numeric view or a constant
    str/bytes/None/bool column — the :meth:`ColumnBatch.from_arrays`
    shape. The resulting plan encodes bit-identically to
    :func:`lane_plan` over ``batch.rows()[start:end]``.
    """
    if not HAVE_NUMPY or batch.scalar_rows or not batch.fields:
        return None
    if end is None:
        end = batch.count
    count = end - start
    if count < COLUMNAR_MIN_BATCH:
        return None
    names = sorted(batch.fields)
    kinds: dict[str, str] = {}
    arrays: dict[str, object] = {}
    consts: dict[str, bytes] = {}
    lengths: dict[str, object] = {}
    for name in names:
        view = batch.numeric_view(name)
        if view is not None:
            kind, arr = view
            arr = arr[start:end]
            kinds[name] = kind
            arrays[name] = arr
            if kind == "i":
                lengths[name] = _int_lengths(arr)
        else:
            column = batch.columns[name][start:end]
            first = column[0]
            if not (first is None or type(first) in (bool, str, bytes)):
                return None
            if column.count(first) != count:
                return None
            kinds[name] = "c"
            consts[name] = _encode_value(first)
    return _LanePlan(names, kinds, arrays, consts, lengths, count)


def _int_column_bytes(arr, length: int):
    """``(n, length)`` uint8 matrix: each value's big-endian
    two's-complement bytes, exactly ``to_bytes(length, signed=True)``."""
    out = _np.empty((arr.shape[0], length), dtype=_np.uint8)
    for j in range(length):
        shift = 8 * (length - 1 - j)
        if shift >= 64:
            out[:, j] = _np.where(arr < 0, 0xFF, 0x00)
        else:
            out[:, j] = ((arr >> shift) & 0xFF).astype(_np.uint8)
    return out


def _float_column_bytes(arr):
    """``(n, 8)`` uint8 matrix of IEEE big-endian doubles (``>d``)."""
    return _np.ascontiguousarray(arr, dtype=">f8").view(_np.uint8).reshape(-1, 8)


def _payload_layout(plan: _LanePlan, records: list[Record], start: int):
    """Template payload + per-field value-byte offsets for the run
    beginning at ``start``. The template comes from the *scalar*
    encoder, so the skeleton (everything but numeric value bytes) is
    correct by construction."""
    template = encode_record(records[start])
    offsets: dict[str, tuple[int, int]] = {}
    position = 2
    for name in plan.names:
        position += 4 + len(name.encode())
        kind = plan.kinds[name]
        if kind == "i":
            length = int(plan.lengths[name][start])
            offsets[name] = (position + 5, length)  # tag + 4-byte varlen
            position += 5 + length
        elif kind == "f":
            offsets[name] = (position + 1, 8)
            position += 9
        else:
            position += len(plan.consts[name])
    if position != len(template):  # pragma: no cover - structural guard
        return None
    return template, offsets


def _run_bounds(plan: _LanePlan, extra=None) -> list[int]:
    """Cut points where any int column's byte length (or the optional
    ``extra`` signature array) changes — within a run every frame has
    one fixed layout."""
    count = plan.count
    signatures = list(plan.lengths.values())
    if extra is not None:
        signatures.append(extra)
    if not signatures or count < 2:
        return [0, count]
    change = _np.zeros(count - 1, dtype=bool)
    for signature in signatures:
        change |= signature[1:] != signature[:-1]
    return [0] + (_np.flatnonzero(change) + 1).tolist() + [count]


def _scatter_columns(plan, matrix, offsets, start, end) -> None:
    for name, (value_offset, length) in offsets.items():
        kind = plan.kinds[name]
        if kind == "i":
            matrix[:, value_offset : value_offset + length] = _int_column_bytes(
                plan.arrays[name][start:end], length
            )
        elif kind == "f":
            matrix[:, value_offset : value_offset + 8] = _float_column_bytes(
                plan.arrays[name][start:end]
            )


def encode_records(records: list[Record]) -> list[bytes]:
    """Batch :func:`encode_record`: byte-identical payloads, one numpy
    matrix per constant-layout run instead of one call per record."""
    if not isinstance(records, list):
        records = list(records)
    plan = lane_plan(records)
    if plan is None:
        return [encode_record(record) for record in records]
    out: list[bytes] = []
    bounds = _run_bounds(plan)
    for start, end in zip(bounds, bounds[1:]):
        layout = _payload_layout(plan, records, start)
        if layout is None:  # pragma: no cover - structural guard
            out.extend(encode_record(r) for r in records[start:end])
            continue
        template, offsets = layout
        width = len(template)
        matrix = _np.empty((end - start, width), dtype=_np.uint8)
        matrix[:] = _np.frombuffer(template, dtype=_np.uint8)
        _scatter_columns(plan, matrix, offsets, start, end)
        blob = matrix.tobytes()
        out.extend(
            blob[i * width : (i + 1) * width] for i in range(end - start)
        )
    return out


class FrameRun:
    """One constant-layout run of encoded log frames.

    ``blob`` holds ``count`` back-to-back frames of ``frame_len`` bytes
    each, byte-identical to ``LogStructuredStore._frame`` output for the
    same (kind, id, record) triples. ``payload_offset`` is where the
    encoded record starts inside each frame."""

    __slots__ = ("start", "count", "frame_len", "payload_len",
                 "payload_offset", "blob")

    def __init__(self, start, count, frame_len, payload_len,
                 payload_offset, blob):
        self.start = start
        self.count = count
        self.frame_len = frame_len
        self.payload_len = payload_len
        self.payload_offset = payload_offset
        self.blob = blob


def encode_frame_runs(kind: int, record_ids: list[str],
                      records: list[Record],
                      plan: _LanePlan | None = None) -> list[FrameRun] | None:
    """Vectorized log-frame assembly for a whole batch.

    Returns ``None`` when the batch does not fit the columnar lane (the
    caller runs its scalar loop). Otherwise the concatenation of the
    returned runs' blobs equals ``b"".join(_frame(kind, id, payload))``
    over the batch, bit for bit.
    """
    if plan is None:
        plan = lane_plan(records)
    if plan is None:
        return None
    count = plan.count
    # One encode of the joined ids beats 86k per-id encodes; when the
    # byte length matches the char length the batch is pure ASCII and
    # char offsets are byte offsets, so runs slice straight out of the
    # joined blob.
    joined = "".join(record_ids)
    joined_bytes = joined.encode()
    if len(joined_bytes) == len(joined):
        id_lengths = _np.fromiter(
            map(len, record_ids), dtype=_np.int64, count=count)
    else:
        encoded_ids = [record_id.encode() for record_id in record_ids]
        joined_bytes = b"".join(encoded_ids)
        id_lengths = _np.fromiter(
            map(len, encoded_ids), dtype=_np.int64, count=count)
    id_starts = _np.zeros(count + 1, dtype=_np.int64)
    _np.cumsum(id_lengths, out=id_starts[1:])
    runs: list[FrameRun] = []
    bounds = _run_bounds(plan, extra=id_lengths)
    kind_byte = bytes([kind])
    for start, end in zip(bounds, bounds[1:]):
        layout = _payload_layout(plan, records, start)
        if layout is None:  # pragma: no cover - structural guard
            return None
        template, offsets = layout
        id_length = int(id_lengths[start])
        first_id_at = int(id_starts[start])
        payload_offset = 5 + id_length
        header = (
            kind_byte
            + id_length.to_bytes(2, "big")
            + joined_bytes[first_id_at : first_id_at + id_length]
            + len(template).to_bytes(2, "big")
        )
        frame_template = header + template
        frame_len = len(frame_template)
        run_count = end - start
        matrix = _np.empty((run_count, frame_len), dtype=_np.uint8)
        matrix[:] = _np.frombuffer(frame_template, dtype=_np.uint8)
        if id_length:
            matrix[:, 3 : 3 + id_length] = _np.frombuffer(
                joined_bytes[first_id_at : int(id_starts[end])],
                dtype=_np.uint8,
            ).reshape(run_count, id_length)
        shifted = {
            name: (payload_offset + value_offset, length)
            for name, (value_offset, length) in offsets.items()
        }
        _scatter_columns(plan, matrix, shifted, start, end)
        runs.append(FrameRun(
            start=start, count=run_count, frame_len=frame_len,
            payload_len=len(template), payload_offset=payload_offset,
            blob=matrix.tobytes(),
        ))
    return runs


# -- vectorized decode --------------------------------------------------------


def _template_layout(template: bytes, record: Record):
    """Walk a decoded template payload; per sorted field returns
    ``(kind, value_offset, value_length)`` with kind ``"i"`` (int, only
    when the vector accumulator stays in int64: L <= 8), ``"f"``
    (float), ``"s"``/``"b"`` (str/bytes, sliced per row), or ``"k"``
    (tag-only constants: None/bools). Returns ``None`` when a field
    cannot be handled (the whole group decodes scalar)."""
    layout = []
    position = 2
    for name in sorted(record):
        position += 4 + len(name.encode())
        tag = template[position]
        position += 1
        if tag in (_TAG_NONE, _TAG_TRUE, _TAG_FALSE):
            layout.append((name, "k", position, 0))
        elif tag == _TAG_INT:
            length = int.from_bytes(template[position : position + 4], "big")
            if length > 8:
                return None  # int64 accumulator would overflow
            layout.append((name, "i", position + 4, length))
            position += 4 + length
        elif tag == _TAG_FLOAT:
            layout.append((name, "f", position, 8))
            position += 8
        else:  # str / bytes
            length = int.from_bytes(template[position : position + 4], "big")
            layout.append(
                (name, "s" if tag == _TAG_STR else "b", position + 4, length)
            )
            position += 4 + length
    if position != len(template):  # pragma: no cover - structural guard
        return None
    return layout


def _int_column_values(matrix, offset: int, length: int):
    """Signed big-endian decode of ``matrix[:, offset:offset+length]``
    into int64 (callers guarantee ``length <= 8``)."""
    first = matrix[:, offset].astype(_np.int64)
    values = _np.where(first >= 128, first - 256, first)
    for j in range(1, length):
        values = (values << 8) | matrix[:, offset + j]
    return values


def decode_page(payloads: list[bytes], *,
                context: str | None = None) -> ColumnBatch:
    """Batch :func:`decode_record` over one page's (or chunk's) payload
    slices.

    Payloads are grouped by length; each group is decoded against its
    first payload's layout after verifying every skeleton byte (field
    counts, name bytes, tags, length prefixes) matches — identical
    skeletons imply identical structure, so only value bytes differ and
    numeric columns decode in one numpy pass. Rows failing the skeleton
    check, and groups the vector lane cannot express, fall back to the
    scalar decoder. The resulting records compare equal to per-record
    :func:`decode_record`, errors included.
    """
    count = len(payloads)
    if not HAVE_NUMPY or count < COLUMNAR_MIN_BATCH:
        return ColumnBatch.from_records(
            [decode_record(p, context=context) for p in payloads]
        )
    by_length: dict[int, list[int]] = {}
    for index, payload in enumerate(payloads):
        by_length.setdefault(len(payload), []).append(index)

    fields: tuple[str, ...] | None = None
    columns: dict[str, list] = {}
    scalar_rows: dict[int, Record] = {}

    def decode_scalar(indexes) -> None:
        for index in indexes:
            scalar_rows[index] = decode_record(payloads[index], context=context)

    for length, indexes in by_length.items():
        if len(indexes) < COLUMNAR_MIN_BATCH:
            decode_scalar(indexes)
            continue
        template = payloads[indexes[0]]
        first_record = decode_record(template, context=context)
        layout = _template_layout(template, first_record)
        group_fields = tuple(sorted(first_record))
        if layout is None or (fields is not None and group_fields != fields):
            decode_scalar(indexes)
            continue
        if fields is None:
            fields = group_fields
            columns = {name: [None] * count for name in fields}
        matrix = _np.frombuffer(
            b"".join(payloads[i] for i in indexes), dtype=_np.uint8
        ).reshape(len(indexes), length)
        template_arr = _np.frombuffer(template, dtype=_np.uint8)
        value_mask = _np.zeros(length, dtype=bool)
        for _name, kind, offset, value_len in layout:
            if kind != "k":
                value_mask[offset : offset + value_len] = True
        skeleton = _np.flatnonzero(~value_mask)
        ok = (matrix[:, skeleton] == template_arr[skeleton]).all(axis=1)
        good = _np.flatnonzero(ok)
        if len(good) < len(indexes):
            decode_scalar(indexes[i] for i in _np.flatnonzero(~ok).tolist())
        if not len(good):
            continue
        good_rows = matrix[good] if len(good) < len(indexes) else matrix
        good_indexes = [indexes[i] for i in good.tolist()]
        for name, kind, offset, value_len in layout:
            column = columns[name]
            if kind == "i":
                values = _int_column_values(
                    good_rows, offset, value_len).tolist()
                for index, value in zip(good_indexes, values):
                    column[index] = value
            elif kind == "f":
                values = _np.ascontiguousarray(
                    good_rows[:, offset : offset + 8]
                ).view(">f8").ravel().tolist()
                for index, value in zip(good_indexes, values):
                    column[index] = value
            elif kind == "k":
                value = first_record[name]
                for index in good_indexes:
                    column[index] = value
            else:
                if kind == "s":
                    try:
                        for index in good_indexes:
                            payload = payloads[index]
                            column[index] = payload[
                                offset : offset + value_len].decode()
                    except UnicodeDecodeError as exc:
                        raise StorageError(
                            "corrupted text in record encoding"
                            + (f" [{context}]" if context else "")
                        ) from exc
                else:
                    for index in good_indexes:
                        payload = payloads[index]
                        column[index] = payload[offset : offset + value_len]
    if fields is None or len(scalar_rows) == count:
        return ColumnBatch(count, scalar_rows=scalar_rows)
    # placeholder-fill the slots owned by scalar rows so numeric_view's
    # type scan never trips over them
    if scalar_rows:
        for name in fields:
            column = columns[name]
            filler = column[next(
                i for i in range(count) if i not in scalar_rows)]
            for index in scalar_rows:
                column[index] = filler
    return ColumnBatch(count, fields, columns, scalar_rows)
