"""Cross-collection joins for in-cell cross-analysis.

"...organizing all these data in a common personal digital space,
providing a consistent view, facilitating querying and cross-analysis".
Cross-analysis needs joins: receipts x medical records, trips x
calendar, pay slips x bills. This module provides an equality hash
join over two collections of one catalog — executed entirely inside
the cell, which is the point: correlations this sensitive are exactly
what must never be computed on somebody else's server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import QueryError
from .catalog import Catalog
from .query import MATCH_ALL, Predicate


@dataclass
class JoinQuery:
    """An equality join: ``left.left_field == right.right_field``.

    Each side can be pre-filtered; the output row merges both records,
    prefixing field names with the collection names to keep provenance
    (``receipts.amount``, ``medical.disease``).
    """

    left: str
    right: str
    left_field: str
    right_field: str
    where_left: Predicate = field(default_factory=lambda: MATCH_ALL)
    where_right: Predicate = field(default_factory=lambda: MATCH_ALL)
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise QueryError("self-joins are not supported")


@dataclass
class JoinResult:
    """Joined rows plus cost accounting."""

    rows: list[dict[str, Any]]
    left_examined: int
    right_examined: int

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def execute_join(catalog: Catalog, query: JoinQuery) -> JoinResult:
    """Hash join: build on the smaller filtered side, probe the other."""
    from .query import Query

    left_rows = catalog.query(
        Query(query.left, where=query.where_left)
    ).rows
    right_rows = catalog.query(
        Query(query.right, where=query.where_right)
    ).rows

    # Build on the smaller side (classic optimization, and on a token
    # the build table is the RAM-resident part).
    swap = len(right_rows) < len(left_rows)
    build_rows, probe_rows = (
        (right_rows, left_rows) if swap else (left_rows, right_rows)
    )
    build_name, probe_name = (
        (query.right, query.left) if swap else (query.left, query.right)
    )
    build_field, probe_field = (
        (query.right_field, query.left_field)
        if swap
        else (query.left_field, query.right_field)
    )

    buckets: dict[Any, list[dict[str, Any]]] = {}
    for row in build_rows:
        key = row.get(build_field)
        if key is not None:
            buckets.setdefault(key, []).append(row)

    joined: list[dict[str, Any]] = []
    for probe_row in probe_rows:
        key = probe_row.get(probe_field)
        if key is None:
            continue
        for build_row in buckets.get(key, ()):
            merged: dict[str, Any] = {}
            for name, value in build_row.items():
                merged[f"{build_name}.{name}"] = value
            for name, value in probe_row.items():
                merged[f"{probe_name}.{name}"] = value
            joined.append(merged)
            if query.limit is not None and len(joined) >= query.limit:
                return JoinResult(
                    rows=joined,
                    left_examined=len(left_rows),
                    right_examined=len(right_rows),
                )
    return JoinResult(
        rows=joined,
        left_examined=len(left_rows),
        right_examined=len(right_rows),
    )
