"""Sim-time span tracing.

A span brackets one protocol phase (an aggregation round, a vault
push, a recovery poll) and is stamped with the *simulation* clock when
the tracer belongs to a :class:`~repro.sim.world.World` — so a trace
of an asynchronous protocol reads in protocol time, not host time.
The process-default tracer (no world) stamps with ``time.perf_counter``
so benchmark spans carry real durations.

Spans nest: the tracer keeps an open-span stack, and every finished
span records its depth and its parent's id, which is exactly the shape
a flame-style renderer needs::

    with tracer.span("agg.round", protocol="masked", n=100):
        with tracer.span("agg.recovery"):
            ...

Finished spans are capped at ``max_spans`` (oldest kept, newest
dropped and counted) so a long soak cannot grow without bound.
"""

from __future__ import annotations

import time
from typing import Any, Callable


class Span:
    """One bracketed operation; use as a context manager."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs",
                 "start", "end", "depth", "error")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None,
                 name: str, attrs: dict[str, Any], start: float,
                 depth: int) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.depth = depth
        self.error = False

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to an open span (e.g. a result count)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.error = exc_type is not None
        self.tracer._finish(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    duration = 0.0

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects nested spans stamped by a clock callable."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True, max_spans: int = 20000) -> None:
        self._clock = clock or time.perf_counter
        self.enabled = enabled
        self.max_spans = max_spans
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._next_id = 0
        self.dropped = 0

    def span(self, name: str, **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self, self._next_id,
            parent.span_id if parent is not None else None,
            name, attrs, self._clock(), len(self._stack),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        # tolerate out-of-order exits (a caller keeping spans manually)
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        if len(self._finished) < self.max_spans:
            self._finished.append(span)
        else:
            self.dropped += 1

    # -- querying / export -------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self._finished)
        return [span for span in self._finished if span.name == name]

    def last(self, name: str) -> Span | None:
        for span in reversed(self._finished):
            if span.name == name:
                return span
        return None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stack.clear()
        self._finished.clear()
        self._next_id = 0
        self.dropped = 0

    def export(self) -> dict[str, Any]:
        """JSON-ready trace: flat span list plus bookkeeping."""
        return {
            "spans": [span.to_dict() for span in self._finished],
            "dropped": self.dropped,
        }
