"""Metrics registry: counters, gauges and histograms with label sets.

The accountability requirement (Req. 4) asks a cell to explain *what
ran and at what cost*. Instruments here are deliberately tiny — an
``inc()`` on a bound counter is one attribute increment — so protocol
hot paths (one HMAC per mask derivation, one record per network
message) can afford them unconditionally.

Design points:

* **Get-or-create registration.** ``registry.counter("net.messages")``
  returns the existing instrument if the name is taken (modules
  register at import time; re-imports and reloads must not fight).
  Re-registering a name as a different instrument type is an error.
* **Reset in place.** :meth:`MetricsRegistry.reset` zeroes every
  instrument *without replacing objects*, so counters bound at module
  import (e.g. the HMAC counter in :mod:`repro.crypto.primitives`)
  keep working after a test-fixture reset.
* **Cheap no-op mode.** A disabled registry keeps handing out the same
  instruments but their mutators return after one flag check. Counters
  created with ``always=True`` keep counting even then: they are
  protocol-cost oracles (tests assert exact HMAC deltas) and cost no
  more than the module globals they replaced.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

from ..errors import ConfigurationError

DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, float("inf")
)


def _label_key(labelnames: tuple[str, ...], labels: dict[str, Any]) -> tuple:
    if set(labels) != set(labelnames):
        raise ConfigurationError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """A monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 labelnames: tuple[str, ...] = (), always: bool = False) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.always = always
        self.value = 0
        self._children: dict[tuple, "Counter"] = {}

    def labels(self, **labels: Any) -> "Counter":
        """The child counter for one concrete label set (cached)."""
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = Counter(self._registry, self.name, self.help,
                            always=self.always)
            self._children[key] = child
        return child

    def inc(self, amount: int = 1) -> None:
        if self._registry.enabled or self.always:
            self.value += amount

    def reset(self) -> None:
        self.value = 0
        for child in self._children.values():
            child.reset()

    def snapshot(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind, "value": self.value}
        if self._children:
            data["labels"] = {
                "|".join(key): child.value
                for key, child in sorted(self._children.items())
            }
        return data


class Gauge:
    """A value that can go up and down (queue depth, staleness, ...)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.value = 0.0
        self._children: dict[tuple, "Gauge"] = {}

    def labels(self, **labels: Any) -> "Gauge":
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = Gauge(self._registry, self.name, self.help)
            self._children[key] = child
        return child

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        if self._registry.enabled:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        self.value = 0.0
        for child in self._children.values():
            child.reset()

    def snapshot(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind, "value": self.value}
        if self._children:
            data["labels"] = {
                "|".join(key): child.value
                for key, child in sorted(self._children.items())
            }
        return data


class Histogram:
    """A distribution: cumulative buckets plus count/sum/min/max."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket")
        bounds = tuple(sorted(buckets))
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self._registry = registry
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        # first bound >= value; the trailing +Inf bound always matches
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def reset(self) -> None:
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {
                ("+Inf" if bound == float("inf") else repr(bound)): count
                for bound, count in zip(self.bounds, self.counts)
            },
        }


class MetricsRegistry:
    """Names instruments, owns the enabled flag, exports snapshots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Any] = {}

    # -- registration (get-or-create) -----------------------------------------

    def _get_or_create(self, cls, name: str, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = (),
                always: bool = False) -> Counter:
        return self._get_or_create(
            Counter, name,
            lambda: Counter(self, name, help, tuple(labelnames), always),
        )

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(
            Gauge, name, lambda: Gauge(self, name, help, tuple(labelnames))
        )

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, lambda: Histogram(self, name, help, buckets)
        )

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    # -- lifecycle --------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument in place (bound references stay valid)."""
        for instrument in self._instruments.values():
            instrument.reset()

    # -- export -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Stable-schema export: ``{name: {kind, value | count/sum/...}}``."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }
