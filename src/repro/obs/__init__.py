"""Simulation-wide observability: metrics, span tracing, event logs.

Three pillars, one facade:

* :class:`~repro.obs.metrics.MetricsRegistry` — ``Counter`` / ``Gauge``
  / ``Histogram`` instruments with label sets;
* :class:`~repro.obs.tracing.Tracer` — nestable spans stamped with
  sim-time (per-:class:`~repro.sim.world.World`) or wall time (process
  default), exportable as a flame-ready JSON trace;
* :class:`~repro.obs.events.EventLog` — structured protocol events
  (mask rounds, vault detections, policy decisions, network drops).

Two instances matter:

* ``world.obs`` — per-:class:`~repro.sim.world.World`, stamped with
  the world's :class:`~repro.sim.clock.SimClock`. Everything holding a
  world (network, vault, replicator, async aggregation) records here.
* :func:`get_default` — the process-wide instance used by components
  with no world (crypto primitives, synchronous aggregation, policy
  evaluation, audit logs, the time-series store) and dumped by
  ``python -m repro obs``. It is a singleton that is **reset in
  place**, never replaced, so modules may bind instruments at import
  time; the test suite resets it between tests (``tests/conftest.py``).

Disabling (``obs.disable()``) switches every pillar to a cheap no-op
mode: spans become a shared do-nothing object, events return after one
flag check, and only ``always=True`` counters (protocol-cost oracles
like the HMAC counter) keep counting.
"""

from __future__ import annotations

from typing import Any, Callable

from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span, Tracer

EXPORT_SCHEMA_VERSION = 1


class Observability:
    """One coherent observability scope: metrics + tracer + events."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True, max_spans: int = 20000,
                 event_capacity: int = 10000) -> None:
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock, enabled=enabled, max_spans=max_spans)
        self.events = EventLog(clock, enabled=enabled, capacity=event_capacity)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def enable(self) -> None:
        self.metrics.enable()
        self.tracer.enable()
        self.events.enable()

    def disable(self) -> None:
        self.metrics.disable()
        self.tracer.disable()
        self.events.disable()

    def reset(self) -> None:
        """Clear all recorded data in place (instruments stay bound)."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()

    def export(self) -> dict[str, Any]:
        """The stable JSON export consumed by benches and the CLI."""
        return {
            "schema": EXPORT_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "trace": self.tracer.export(),
            "events": self.events.export(),
        }


_DEFAULT = Observability()


def get_default() -> Observability:
    """The process-default observability scope (a stable singleton)."""
    return _DEFAULT


__all__ = [
    "Counter",
    "EventLog",
    "EXPORT_SCHEMA_VERSION",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "get_default",
]
