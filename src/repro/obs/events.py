"""Structured protocol event log.

Where metrics answer "how many / how fast", events answer "what
happened": one record per protocol-level occurrence — a mask
derivation round, a vault integrity detection, a policy decision, a
network drop — with whatever fields the emitter finds relevant.
Experiments read them to build tables; the accountability layer reads
them as the raw material for an audit trail.

Records are plain dicts ``{"seq": int, "t": <clock>, "kind": str,
**fields}`` kept in a bounded deque (oldest evicted first), so the
log is safe to leave enabled in soak runs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..errors import ConfigurationError


class EventLog:
    """Bounded, append-only structured event log."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True, capacity: int = 10000) -> None:
        if capacity < 1:
            raise ConfigurationError("event log capacity must be >= 1")
        self._clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self.emitted = 0  # total ever, including evicted records

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        record: dict[str, Any] = {"seq": self._seq, "kind": kind}
        if self._clock is not None:
            record["t"] = self._clock()
        record.update(fields)
        self._seq += 1
        self.emitted += 1
        self._events.append(record)

    # -- querying ---------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self._events)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._events.clear()
        self._seq = 0
        self.emitted = 0

    def export(self) -> dict[str, Any]:
        """JSON-ready export: retained records plus totals."""
        return {
            "events": [dict(event) for event in self._events],
            "emitted": self.emitted,
            "retained": len(self._events),
        }
