"""The coordinator tree: hierarchical federation for very large fleets.

A flat :class:`~repro.fedquery.coordinator.Coordinator` does O(N) work
per query *and* ships every cell the full roster, so wire bytes and
coordinator work grow as O(N^2) — fine at a thousand cells, hopeless
at a hundred thousand. The tree splits the fan-out two ways:

* a root :class:`HierarchicalCoordinator` partitions the global roster
  into ~sqrt(N) **contiguous shards** and ships each shard to a
  :class:`RegionalCoordinator` — the root's own work is O(sqrt(N));
* each region runs the *existing* collect / re-ask / demote / recovery
  machinery (it subclasses the flat coordinator) over its shard, and
  ships each cell an O(k) roster **window** — the cell's ring
  neighbors plus their global positions — instead of the full roster.

The privacy argument is the boundary-mask trick: cells mask on the
**global** ring graph, exactly as the flat path does. Within a shard
the pairwise masks of interior edges cancel in the shard's partial
sum, but the k/2 edges crossing each shard boundary are unpaired —
so every shard partial a region forwards is still a uniformly masked
field element. No level of the tree below the final combine learns
anything: regions see per-cell masked elements (meaningless, as
before), the root sees masked shard sums, and only the sum over *all*
shards — bit-for-bit the flat total — unmasks. Sealed record batches
pass through regions as opaquely as they pass the flat coordinator.

Degradation composes recursively. Regions demote unresponsive cells
exactly as the flat coordinator does; the root re-asks and, on an
exhausted budget, demotes a whole *region* — all its cells become
missing (none of their contributions entered the combine, so their
interior edges cancel by absence and only their boundary edges need
survivor recovery). The root compiles the **global** missing list,
regions fan it to the survivors whose ring neighborhoods intersect it,
and the net recovery masks sum — through the regions — to exactly the
flat path's correction. Every level runs under its own bounded
horizon, and the root's horizon includes the regions', so a lossy run
settles to ``partial`` (survivor-exact) or ``abandoned`` instead of
hanging.

Privacy parameters never shrink with the shards: plan windows carry
``global_size``, so the cohort floor and the DP noise calibration are
global, and each cell's noise share is drawn once per query no matter
how the roster is sharded.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any

from ..commons import kernels
from ..commons.aggregation import _effective_degree, ring_neighbor_positions
from ..crypto import shamir
from ..errors import CellOfflineError, ConfigurationError, ProtocolError
from ..faults.retry import RetryPolicy, schedule_retry
from ..infrastructure.network import Network
from ..sim.world import World
from .coordinator import (
    _DEMOTED,
    _PENDING,
    OUTCOME_ABANDONED,
    OUTCOME_COMPLETE,
    OUTCOME_PARTIAL,
    Coordinator,
    FedQueryResult,
    _RunState,
)
from .journal import (
    REC_DEMOTE,
    REC_DONE,
    REC_MASK,
    REC_MASK_REPORT,
    REC_PARTIAL,
    REC_RECOVER,
    REC_REPORT,
    REC_START,
    QueryJournal,
)
from .spec import (
    MSG_SHARD_MASK,
    MSG_SHARD_PARTIAL,
    MSG_SHARD_PLAN,
    MSG_SHARD_RECOVER,
    STATUS_DECLINED,
    STATUS_FLOOR,
    STATUS_OK,
    FedQuerySpec,
    plan_message,
    recover_message,
    shard_mask_message,
    shard_partial_message,
    shard_plan_message,
    shard_recover_message,
    wire_size,
)


def partition_shards(roster: list[str], regions: int) -> list[list[str]]:
    """Split a roster into ``regions`` contiguous shards, sizes within 1.

    Contiguity is load-bearing: it is what confines a shard's unpaired
    mask edges to the two ring boundaries, keeping each region's
    positions map (shard plus k/2 of boundary zone on either side)
    O(shard) instead of O(N).
    """
    count = min(regions, len(roster))
    if count < 1:
        raise ConfigurationError("the roster needs at least one cell")
    base, extra = divmod(len(roster), count)
    shards, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(roster[start:start + size])
        start += size
    return shards


class RegionalCoordinator(Coordinator):
    """One region of the tree: the flat machinery over one shard.

    A pure event-driven endpoint — it never drives the world loop (the
    root does). It reuses the superclass's per-cell re-ask ladder,
    demotion and accounting verbatim; what changes is the edges of the
    state machine: runs start from a ``fq.shard_plan`` message instead
    of :meth:`run`, collection settles into a ``fq.shard_partial``
    report instead of a combine, and recovery is triggered by the
    root's **global** missing list and settles into a ``fq.shard_mask``
    report. Both reports are cached and replayed verbatim when the
    root re-asks, so the root's retry ladder is idempotent.
    """

    def __init__(self, world: World, network: Network, *, region: int,
                 address: str, **kwargs: Any) -> None:
        super().__init__(world, network, address=address, **kwargs)
        self.region = region
        # tag -> (root address, message): idempotent replay caches.
        self._sent: dict[str, tuple[str, dict[str, Any]]] = {}
        self._mask_sent: dict[str, tuple[str, dict[str, Any]]] = {}
        # tag -> the region's coordinator_view (leakage audit surface).
        self.views: dict[str, list[Any]] = {}

    # -- inbound ---------------------------------------------------------------

    def _on_message(self, sender: str, payload: Any) -> None:
        if self._crashed:
            return  # a delivery already in flight when the process died
        if not isinstance(payload, dict):
            return
        kind = payload.get("kind")
        if kind == MSG_SHARD_PLAN:
            self._on_shard_plan(payload)
        elif kind == MSG_SHARD_RECOVER:
            self._on_shard_recover(payload)
        else:
            super()._on_message(sender, payload)

    def _on_shard_plan(self, message: dict[str, Any]) -> None:
        tag = message["tag"]
        if tag in self._sent:
            root, reply = self._sent[tag]
            self._send_up(root, reply)  # root re-ask: replay verbatim
            return
        if tag in self._active:
            return  # still collecting; the settle will reply
        spec = FedQuerySpec.from_wire(message["spec"])
        shard = list(message["shard"])
        state = _RunState(
            tag, spec, shard, message["round_tag"], message["neighbors"]
        )
        state.positions = {
            name: int(position)
            for name, position in message["positions"].items()
        }
        state.global_size = int(message["global_size"])
        state.name_at = {
            position: name for name, position in state.positions.items()
        }
        state.root = message["reply_to"]
        state.recover_targets = []
        state.reported = (0, 0, 0)
        if _effective_degree(state.global_size, state.neighbors) is None:
            raise ProtocolError(
                "the coordinator tree needs a k-regular masking graph "
                "(neighbors < global size - 1)"
            )
        state.started_at = self.world.now
        self._active[tag] = state
        self.journal.append(self._start_record(state))
        with self._tracer.span(
            "fedquery.shard.fanout", tag=tag, region=self.region,
            shard=len(shard),
        ):
            for name in shard:
                self._ship(state, name)
        if self._notify_phase(state, "fanout"):
            return  # crashed right after fan-out; restart resumes
        state.deadline_handle = self.world.loop.schedule_in(
            self.collect_timeout_s, lambda: self._collect_deadline(state),
            label=f"fq shard deadline {tag} r{self.region}",
        )

    def _start_record(self, state: _RunState) -> dict[str, Any]:
        record = super()._start_record(state)
        record.update(
            region=self.region, positions=dict(state.positions),
            global_size=state.global_size, root=state.root,
        )
        return record

    # -- windowed fan-out ------------------------------------------------------

    def _plan_for(self, state: _RunState, name: str) -> dict[str, Any]:
        """An O(k) plan: the cell's ring window, with global positions."""
        position = state.positions[name]
        degree = _effective_degree(state.global_size, state.neighbors)
        window = ring_neighbor_positions(
            position, state.global_size, degree
        ) + [position]
        window.sort()
        return plan_message(
            state.tag, state.spec,
            [state.name_at[entry] for entry in window], self.address,
            round_tag=state.round_tag, neighbors=state.neighbors,
            positions={state.name_at[entry]: entry for entry in window},
            global_size=state.global_size,
        )

    # -- settle: report the shard partial upward -------------------------------

    def _settle(self, state: _RunState) -> None:
        if state.phase != "collect":
            return
        if state.deadline_handle is not None:
            state.deadline_handle.cancel()
        ok = state.ok_cells()
        plan_mix: dict[str, int] = {}
        for plan in state.plans.values():
            plan_mix[plan] = plan_mix.get(plan, 0) + 1
        if state.spec.numeric:
            # Still masked: the shard's boundary edges have no partner
            # in this sum, so the root learns nothing per shard.
            masked_sum = kernels.accumulate(
                state.payloads[name]["masked"] for name in ok
            )
            count = len(ok)
            sealed: list[tuple[str, str]] = []
        else:
            masked_sum = None
            count = sum(state.payloads[name]["count"] for name in ok)
            sealed = [
                (name, state.payloads[name]["blob"]) for name in ok
                if state.payloads[name]["blob"] is not None
            ]
        state.phase = "report"
        reply = shard_partial_message(
            state.tag, self.address, self.region,
            statuses=dict(state.status), masked_sum=masked_sum, count=count,
            sealed=sealed, plan_mix=plan_mix, examined=state.examined,
            messages=state.messages, bytes_=state.bytes, reasks=state.reasks,
        )
        self.journal.append({
            "type": REC_REPORT, "tag": state.tag, "region": self.region,
            "reply": reply,
        })
        if state.phase != "report":
            return  # the journal hook crashed us mid-append
        self._sent[state.tag] = (state.root, reply)
        state.reported = (state.messages, state.bytes, state.reasks)
        self.views[state.tag] = state.view
        self._events.emit(
            "fedquery.shard.settle", tag=state.tag, region=self.region,
            participants=len(ok), reasks=state.reasks,
        )
        self._send_up(state.root, reply)
        if not state.spec.numeric:
            del self._active[state.tag]  # record shards have no recovery

    def _send_up(self, root: str, message: dict[str, Any]) -> None:
        # Root-level traffic is billed by the root (both directions),
        # exactly as cell-level traffic is billed by this region.
        try:
            self.network.send(
                self.address, root, message, size_bytes=wire_size(message)
            )
        except CellOfflineError:
            pass  # the root's re-ask ladder owns this failure

    # -- recovery: the root's global missing list ------------------------------

    def _on_shard_recover(self, message: dict[str, Any]) -> None:
        tag = message["tag"]
        if tag in self._mask_sent:
            root, reply = self._mask_sent[tag]
            self._send_up(root, reply)
            return
        state = self._active.get(tag)
        if state is None or state.phase != "report":
            return  # unknown tag, or recovery already in flight
        state.phase = "recover"
        state.recovery_rounds = 1
        state.missing = list(message["missing"])
        # Only survivors whose ring neighborhood intersects the missing
        # set are asked; everyone else's net mask is identically zero,
        # so skipping them is bit-for-bit free and keeps recovery
        # traffic proportional to the damage, not the fleet.
        state.recover_targets = self._relevant_survivors(state)
        self.journal.append({
            "type": REC_RECOVER, "tag": tag, "missing": list(state.missing),
        })
        if self._notify_phase(state, "recover") or state.phase != "recover":
            return  # crashed entering recovery; restart resumes it
        self._events.emit(
            "fedquery.shard.recover", tag=tag, region=self.region,
            missing=len(state.missing), survivors=len(state.recover_targets),
        )
        if not state.recover_targets:
            self._masks_complete(state)
            return
        for name in state.recover_targets:
            state.mask_attempts[name] = 1
            self._ship_recover(
                state, name,
                recover_message(tag, 1, state.missing, self.address),
            )
        self.world.loop.schedule_in(
            self.recovery_timeout_s,
            lambda: self._recovery_deadline(state),
            label=f"fq shard recover deadline {tag} r{self.region}",
        )

    def _relevant_survivors(self, state: _RunState) -> list[str]:
        missing = set(state.missing)
        degree = _effective_degree(state.global_size, state.neighbors)
        targets = []
        for name in state.ok_cells():
            ring = ring_neighbor_positions(
                state.positions[name], state.global_size, degree
            )
            if any(state.name_at.get(entry) in missing for entry in ring):
                targets.append(name)
        return targets

    def _recovery_deadline(self, state: _RunState) -> None:
        if state.phase != "recover":
            return
        for name in state.recover_targets:
            if name not in state.masks:
                self._reask_mask(state, name)

    def _on_mask(self, state: _RunState, message: dict[str, Any]) -> None:
        name = message["from"]
        if state.phase != "recover" or name in state.masks \
                or name not in state.recover_targets:
            return
        size = wire_size(message)
        self.journal.append({
            "type": REC_MASK, "tag": state.tag, "from": name,
            "net_mask": message["net_mask"], "size": size,
        })
        if state.phase != "recover":
            return  # the journal hook crashed us mid-append
        state.messages += 1
        state.bytes += size
        self._bytes_metric.inc(size)
        state.masks[name] = message["net_mask"]
        state.view.append(message["net_mask"])
        if len(state.masks) == len(state.recover_targets):
            self._masks_complete(state)

    def _masks_complete(self, state: _RunState) -> None:
        self._report_mask(
            state, net_sum=kernels.accumulate(state.masks.values())
        )

    def _mask_recovery_failed(self, state: _RunState) -> None:
        # A survivor whose value is in the total cannot reveal its
        # masks: report the failure upward; the root must abandon.
        self._report_mask(state, net_sum=None, failure="mask-recovery")

    def _report_mask(self, state: _RunState, *, net_sum: int | None,
                     failure: str | None = None) -> None:
        messages, bytes_, reasks = state.reported
        reply = shard_mask_message(
            state.tag, self.address, self.region, net_sum=net_sum,
            reasks=state.reasks - reasks,
            messages=state.messages - messages,
            bytes_=state.bytes - bytes_, failure=failure,
        )
        self.journal.append({
            "type": REC_MASK_REPORT, "tag": state.tag,
            "region": self.region, "reply": reply,
        })
        if state.phase == "crashed":
            return  # the journal hook crashed us mid-append
        state.phase = "done"
        self._mask_sent[state.tag] = (state.root, reply)
        self._send_up(state.root, reply)
        del self._active[state.tag]

    # -- crash and restart -----------------------------------------------------

    def _replay_journal(self) -> None:
        # Regions never write ``done`` records: their terminal states
        # are the two cached upward reports, which the root's re-ask
        # ladder replays. Restore the caches, then resume whatever was
        # still mid-flight.
        for tag, records in self.journal.by_tag().items():
            start = records[0]
            if start["type"] != REC_START:
                continue
            report = next(
                (r for r in records if r["type"] == REC_REPORT), None)
            mask_report = next(
                (r for r in records if r["type"] == REC_MASK_REPORT), None)
            if report is not None:
                self._sent[tag] = (start["root"], report["reply"])
            if mask_report is not None:
                self._mask_sent[tag] = (start["root"], mask_report["reply"])
                continue  # terminal for this region
            state = self._restore_state(start, records)
            if report is not None:
                self.views[tag] = state.view
                if not state.spec.numeric:
                    continue  # record shards end at the report
            self._active[tag] = state
            self._events.emit(
                "crash.recovered", address=self.address, tag=tag,
                records=len(records), phase=state.phase,
            )
            self._resume(state)

    def _restore_state(self, start: dict[str, Any],
                       records: list[dict[str, Any]]) -> _RunState:
        state = super()._restore_state(start, records)
        state.positions = {
            name: int(position)
            for name, position in start["positions"].items()
        }
        state.global_size = int(start["global_size"])
        state.name_at = {
            position: name for name, position in state.positions.items()
        }
        state.root = start["root"]
        state.recover_targets = []
        state.reported = (0, 0, 0)
        report = next((r for r in records if r["type"] == REC_REPORT), None)
        if report is not None:
            # The report snapshot is the authoritative accounting at
            # settle time; outbound ships lost to the crash are not in
            # the journal, so rebuild from the snapshot plus the
            # journaled post-report mask traffic. Deltas in the mask
            # report stay non-negative by construction.
            reply = report["reply"]
            masks = [r for r in records if r["type"] == REC_MASK]
            state.messages = reply["messages"] + len(masks)
            state.bytes = reply["bytes"] + sum(
                r.get("size", 0) for r in masks)
            state.reasks = reply["reasks"]
            state.reported = (
                reply["messages"], reply["bytes"], reply["reasks"])
            if state.phase == "collect":
                state.phase = "report"
        if state.phase == "recover":
            state.recover_targets = self._relevant_survivors(state)
        return state

    def _recover_targets(self, state: _RunState) -> list[str]:
        return list(state.recover_targets)

    def _resume(self, state: _RunState) -> None:
        if state.phase == "report":
            # Settled and reported; waiting on the root's recover list
            # (or nothing). The root's re-ask ladder replays the cached
            # report — there is nothing for this region to send.
            return
        super()._resume(state)


class _RootClock:
    """Accumulates wall time spent inside the root's own code.

    The whole-query wall is linear in N by construction — every cell
    computes in-process — so the sub-linearity claim needs the root's
    share alone. Re-entrant (handlers call handlers): only the
    outermost span is counted.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._depth = 0
        self._entered = 0.0

    def __enter__(self) -> "_RootClock":
        if self._depth == 0:
            self._entered = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.seconds += time.perf_counter() - self._entered


class _TreeState:
    """Mutable per-query bookkeeping at the root (one per run)."""

    def __init__(self, tag: str, spec: FedQuerySpec, roster: list[str],
                 round_tag: str, neighbors: int,
                 shards: list[list[str]]) -> None:
        self.tag = tag
        self.spec = spec
        self.roster = roster
        self.round_tag = round_tag
        self.neighbors = neighbors
        self.shards = shards
        self.starts: list[int] = []
        start = 0
        for shard in shards:
            self.starts.append(start)
            start += len(shard)
        self.region_status: dict[int, str] = {
            region: _PENDING for region in range(len(shards))
        }
        self.partials: dict[int, dict[str, Any]] = {}
        self.attempts: dict[int, int] = {
            region: 1 for region in range(len(shards))
        }
        self.mask_replies: dict[int, dict[str, Any]] = {}
        self.mask_attempts: dict[int, int] = {}
        self.statuses: dict[str, str] = {}
        self.missing: list[str] = []
        self.phase = "collect"
        self.view: list[Any] = []
        self.reasks = 0
        self.messages = 0  # the ROOT's own traffic, both directions
        self.bytes = 0
        self.recovery_rounds = 0
        self.started_at = 0
        self.deadline_handle = None
        self.result: FedQueryResult | None = None
        # Phases already reported to the fault plane (crash triggers
        # are per-query, once per phase).
        self.phases_seen: set[str] = set()
        # A journaled shard mask failure that must abandon the query
        # after a restart (the failure beat the crash to the journal).
        self.failed: str | None = None

    def collected(self) -> bool:
        return all(
            status != _PENDING for status in self.region_status.values()
        )

    def ok_regions(self) -> list[int]:
        return [
            region for region in range(len(self.shards))
            if self.region_status[region] == STATUS_OK
        ]


class HierarchicalCoordinator:
    """The root of the coordinator tree.

    Owns ``regions`` :class:`RegionalCoordinator` endpoints (addresses
    ``{address}.r{i}``) and, per query, partitions the roster into that
    many contiguous shards — pick ``regions ~ sqrt(N)`` and the root's
    work per query is O(sqrt(N)) messages instead of the flat path's
    O(N). The rest of the contract matches :class:`Coordinator`:
    :meth:`run` drives the loop to a bounded horizon (which *includes*
    the regions' horizons, so no level can hang the tree) and returns a
    :class:`FedQueryResult` with the same outcomes, plus the tree
    extras — ``regions``, ``root_messages``, ``root_bytes`` — while
    ``messages``/``bytes``/``reasks`` aggregate the whole tree.

    The windowed masking graph must be k-regular, so the global roster
    must satisfy ``neighbors < len(roster) - 1``; below that, use the
    flat coordinator (a tree over a roster that small is pointless).
    """

    def __init__(
        self,
        world: World,
        network: Network,
        *,
        regions: int,
        neighbors: int = 32,
        address: str = "fq-root",
        retry_policy: RetryPolicy | None = None,
        collect_timeout_s: int = 60,
        recovery_timeout_s: int = 60,
        region_retry_policy: RetryPolicy | None = None,
        region_collect_timeout_s: int = 30,
        region_recovery_timeout_s: int = 30,
        latency_ms: float = 5.0,
        bandwidth_bytes_per_s: float = 1e9,
        journal: QueryJournal | None = None,
        horizon_slack_s: int = 0,
    ) -> None:
        if regions < 1:
            raise ConfigurationError("the tree needs at least one region")
        if collect_timeout_s < 1 or recovery_timeout_s < 1:
            raise ConfigurationError("timeouts must be at least 1 s")
        if _effective_degree(regions + neighbors + 2, neighbors) is None:
            raise ConfigurationError(
                "neighbors must be an even integer >= 2 for the tree's "
                "windowed masking graph"
            )
        self.world = world
        self.network = network
        self.address = address
        self.neighbors = neighbors
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=2.0, multiplier=2.0,
            max_delay_s=30.0, jitter=0.1,
        )
        self.collect_timeout_s = collect_timeout_s
        self.recovery_timeout_s = recovery_timeout_s
        self.regions = [
            RegionalCoordinator(
                world, network, region=region,
                address=f"{address}.r{region}",
                retry_policy=region_retry_policy,
                collect_timeout_s=region_collect_timeout_s,
                recovery_timeout_s=region_recovery_timeout_s,
                neighbors=neighbors,
            )
            for region in range(regions)
        ]
        self._retry_rng = world.rng(f"fedquery.tree.reask.{address}")
        self._sequence = 0
        self._active: dict[str, _TreeState] = {}
        # The root's own write-ahead journal (regions each keep their
        # own): a root crash resumes the whole query from here.
        self.journal = journal if journal is not None else QueryJournal()
        self.horizon_slack_s = horizon_slack_s
        self._crashed = False
        self._results: dict[str, FedQueryResult] = {}
        self.clock = _RootClock()
        network.register(
            address, self._on_message,
            latency_ms=latency_ms,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        )
        if network.fault_injector is not None:
            network.fault_injector.register_crashable(self)
        metrics = world.obs.metrics
        self._events = world.obs.events
        self._tracer = world.obs.tracer
        self._shard_plans_metric = metrics.counter(
            "fedquery.tree.shard_plans",
            help="shard plans shipped to regional coordinators")
        self._bytes_metric = metrics.counter(
            "fedquery.tree.root_bytes",
            help="root coordinator wire bytes, both directions")
        self._reasks_metric = metrics.counter(
            "fedquery.tree.reasks", help="region-level re-asks sent")
        self._demotions_metric = metrics.counter(
            "fedquery.tree.demotions",
            help="whole regions demoted after the retry budget")
        self._respawns_metric = metrics.counter(
            "fedquery.tree.respawns",
            help="crashed regional coordinators revived by the root")
        self._queries_metric = metrics.counter(
            "fedquery.tree.queries",
            help="tree queries by terminal outcome", labelnames=("outcome",))

    # -- public API ------------------------------------------------------------

    def run(self, spec: FedQuerySpec, roster: list[str], *,
            round_tag: str | None = None) -> FedQueryResult:
        """Execute ``spec`` across ``roster`` through the tree."""
        if not roster:
            raise ConfigurationError("the roster needs at least one cell")
        if len(set(roster)) != len(roster):
            raise ConfigurationError("roster names must be unique")
        if _effective_degree(len(roster), self.neighbors) is None:
            raise ConfigurationError(
                f"a roster of {len(roster)} cannot carry a {self.neighbors}-"
                "regular masking ring; use the flat Coordinator below "
                f"{self.neighbors + 2} cells"
            )
        self._sequence += 1
        tag = f"fqh{self._sequence}|{spec.recipient}|{spec.purpose}"
        clock_before = self.clock.seconds
        with self.clock:
            state = _TreeState(
                tag, spec, list(roster),
                round_tag if round_tag is not None
                else f"{spec.recipient}|{spec.purpose}",
                self.neighbors, partition_shards(roster, len(self.regions)),
            )
            state.started_at = self.world.now
            self._active[tag] = state
            self.journal.append(self._start_record(state))
            with self._tracer.span(
                "fedquery.tree.fanout", tag=tag, transform=spec.transform,
                roster=len(roster), regions=len(state.shards),
            ):
                for region in range(len(state.shards)):
                    self._ship_shard(state, region)
            self._notify_phase(state, "fanout")
            self._events.emit(
                "fedquery.tree.start", tag=tag, transform=spec.transform,
                roster=len(roster), regions=len(state.shards),
            )
            state.deadline_handle = self.world.loop.schedule_in(
                self.collect_timeout_s, lambda: self._collect_deadline(state),
                label=f"fq tree deadline {tag}",
            )
        self.world.loop.run_until(self.world.now + self._horizon_s())
        # Read the reply channel, not the state object: a root crash
        # and restart mid-query rebuilds _TreeState from the journal,
        # so the instance created above may not be the one that settled.
        result = self._results.pop(tag, None)
        if result is None:
            raise ProtocolError(f"tree query {tag!r} did not settle")
        result.root_wall_seconds = self.clock.seconds - clock_before
        self._active.pop(tag, None)
        return result

    def _horizon_s(self) -> int:
        """Bounded horizon for the whole tree: the root's own collect +
        recovery ladders on top of the slowest region's horizon."""
        backoff = sum(self.retry_policy.worst_case_delays())
        deepest = max(
            (region._horizon_s() for region in self.regions), default=0
        )
        return int(
            2 * (self.collect_timeout_s + self.recovery_timeout_s
                 + 2 * backoff)
        ) + deepest + self._crash_slack_s() + 120

    def _crash_slack_s(self) -> int:
        """Extra horizon covering planned crash downtime plus a fresh
        collect/recovery episode per restart (the ladder restarts with
        the process). Region crashes are double-counted — the deepest
        region's horizon already includes its own slack — which only
        widens the bound."""
        slack = self.horizon_slack_s
        injector = self.network.fault_injector
        if injector is not None and injector.plan.crashes:
            episode = int(
                self.collect_timeout_s + self.recovery_timeout_s
                + 2 * sum(self.retry_policy.worst_case_delays())
            )
            for spec in injector.plan.crashes:
                slack += (spec.restart_after_s or 0) + episode
        return slack

    # -- crash and restart -----------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _notify_phase(self, state: _TreeState, phase: str) -> bool:
        if phase in state.phases_seen:
            return False
        state.phases_seen.add(phase)
        injector = self.network.fault_injector
        if injector is None:
            return False
        return injector.phase_reached(self.address, phase)

    def crash(self) -> None:
        """Kill the root: every in-memory tree state dies, the journal
        survives. Regions are separate processes — they keep running
        (and their reports to the dark root are simply lost; the resumed
        root re-asks and they replay from their caches)."""
        if self._crashed:
            return
        self._crashed = True
        for state in self._active.values():
            if state.deadline_handle is not None:
                state.deadline_handle.cancel()
            state.phase = "crashed"  # neutralizes stale loop callbacks
        self._active.clear()
        if self.network.is_online(self.address):
            self.network.set_online(self.address, False)
        self._events.emit(
            "crash.down", address=self.address, journal=len(self.journal),
        )

    def restart(self) -> None:
        if not self._crashed:
            return
        self._crashed = False
        if not self.network.is_online(self.address):
            self.network.set_online(self.address, True)
        with self.clock:
            self._replay_journal()

    def _replay_journal(self) -> None:
        for tag, records in self.journal.by_tag().items():
            done = next(
                (r for r in records if r["type"] == REC_DONE), None)
            if done is not None:
                if tag not in self._results:
                    self._results[tag] = self._result_from_wire(
                        done["result"])
                continue
            if records[0]["type"] != REC_START:
                continue
            state = self._restore_state(records[0], records)
            self._active[tag] = state
            self._events.emit(
                "crash.recovered", address=self.address, tag=tag,
                records=len(records), phase=state.phase,
            )
            self._resume(state)

    def _start_record(self, state: _TreeState) -> dict[str, Any]:
        return {
            "type": REC_START, "tag": state.tag,
            "spec": state.spec.to_wire(), "roster": list(state.roster),
            "round_tag": state.round_tag, "neighbors": state.neighbors,
            "regions": len(state.shards), "sequence": self._sequence,
            "at": state.started_at,
        }

    def _restore_state(self, start: dict[str, Any],
                       records: list[dict[str, Any]]) -> _TreeState:
        roster = list(start["roster"])
        state = _TreeState(
            start["tag"], FedQuerySpec.from_wire(start["spec"]), roster,
            start["round_tag"], int(start["neighbors"]),
            partition_shards(roster, int(start["regions"])),
        )
        state.started_at = int(start.get("at", 0))
        self._sequence = max(self._sequence, int(start.get("sequence", 0)))
        for record in records[1:]:
            kind = record["type"]
            if kind == REC_PARTIAL:
                region = int(record["region"])
                message = record["message"]
                state.region_status[region] = STATUS_OK
                state.partials[region] = message
                state.messages += 1
                state.bytes += record.get("size", 0)
                if message["masked_sum"] is not None:
                    state.view.append(message["masked_sum"])
            elif kind == REC_DEMOTE:
                state.region_status[int(record["region"])] = _DEMOTED
            elif kind == REC_RECOVER:
                state.phase = "recover"
                state.recovery_rounds = 1
                state.missing = list(record["missing"])
            elif kind == REC_MASK:
                region = int(record["region"])
                message = record["message"]
                state.messages += 1
                state.bytes += record.get("size", 0)
                if message.get("failure"):
                    state.failed = message["failure"]
                else:
                    state.mask_replies[region] = message
                    state.view.append(message["net_sum"])
        if state.phase == "recover":
            # Rebuild the global statuses the settle computed (the
            # journal holds every input the settle had).
            statuses: dict[str, str] = {}
            for region, shard in enumerate(state.shards):
                if state.region_status[region] == _DEMOTED:
                    for name in shard:
                        statuses[name] = _DEMOTED
                elif region in state.partials:
                    statuses.update(state.partials[region]["statuses"])
            state.statuses = statuses
        return state

    def _result_from_wire(self, wire: dict[str, Any]) -> FedQueryResult:
        sealed = wire.get("sealed_records")
        if sealed is not None:
            wire = dict(wire, sealed_records=[
                (sender, blob) for sender, blob in sealed
            ])
        return FedQueryResult(**wire)

    def _resume(self, state: _TreeState) -> None:
        if state.failed:
            # A shard reported unrecoverable masks just before the
            # crash: the abandon is already decided, finish it.
            self._finalize(state, failure=state.failed)
            return
        if state.phase == "collect":
            if state.collected():
                self._settle(state)
                return
            for region in range(len(state.shards)):
                if state.region_status[region] == _PENDING:
                    state.attempts[region] = 1  # the ladder restarts too
                    self._respawn_region(state, region)
                    self._ship_shard(state, region)
            state.deadline_handle = self.world.loop.schedule_in(
                self.collect_timeout_s,
                lambda: self._collect_deadline(state),
                label=f"fq tree deadline {state.tag} (resumed)",
            )
            return
        if len(state.mask_replies) >= len(state.ok_regions()):
            self._finish_numeric(state)
            return
        for region in state.ok_regions():
            if region not in state.mask_replies:
                state.mask_attempts[region] = 1
                self._respawn_region(state, region)
                self._ship_recover(state, region)
        self.world.loop.schedule_in(
            self.recovery_timeout_s,
            lambda: self._recovery_deadline(state),
            label=f"fq tree recover deadline {state.tag} (resumed)",
        )

    def _respawn_region(self, state: _TreeState, region: int) -> None:
        """Regional failover: revive a crashed region before re-asking.

        The root's retry ladder is the failure detector — a region that
        missed its shard deadline and is found crashed is restarted
        here, replays its own journal, and answers the re-ask from its
        caches or by re-collecting.
        """
        endpoint = self.regions[region]
        if not endpoint.crashed:
            return
        self._respawns_metric.inc()
        self._events.emit(
            "crash.respawn", address=endpoint.address, region=region,
            tag=state.tag,
        )
        endpoint.restart()

    # -- shard fan-out and region re-asks --------------------------------------

    def _zone(self, state: _TreeState, region: int) -> dict[str, int]:
        """Global positions for a shard plus its ring boundary zones."""
        size = len(state.roster)
        degree = _effective_degree(size, state.neighbors)
        half = degree // 2
        start = state.starts[region]
        positions = {}
        for offset in range(start - half,
                            start + len(state.shards[region]) + half):
            position = offset % size
            positions[state.roster[position]] = position
        return positions

    def _ship_shard(self, state: _TreeState, region: int) -> None:
        message = shard_plan_message(
            state.tag, state.spec, state.shards[region],
            self._zone(state, region), len(state.roster), self.address,
            region=region, round_tag=state.round_tag,
            neighbors=state.neighbors,
        )
        self._bill(state, message)
        self._shard_plans_metric.inc()
        try:
            self.network.send(
                self.address, self.regions[region].address, message,
                size_bytes=wire_size(message),
            )
        except CellOfflineError:
            pass  # stays pending; the deadline's re-ask chain owns it

    def _bill(self, state: _TreeState, message: dict[str, Any]) -> None:
        size = wire_size(message)
        state.messages += 1
        state.bytes += size
        self._bytes_metric.inc(size)

    def _collect_deadline(self, state: _TreeState) -> None:
        with self.clock:
            if state.phase != "collect":
                return
            for region in range(len(state.shards)):
                if state.region_status[region] == _PENDING:
                    self._reask_region(state, region)

    def _reask_region(self, state: _TreeState, region: int) -> None:
        with self.clock:
            self._reask_region_clocked(state, region)

    def _reask_region_clocked(self, state: _TreeState, region: int) -> None:
        if state.phase != "collect" \
                or state.region_status[region] != _PENDING:
            return
        handle = schedule_retry(
            self.world, self.retry_policy, state.attempts[region],
            lambda: self._reask_region(state, region),
            rng=self._retry_rng, label=f"fq region reask {region}",
        )
        if handle is None:
            self._demote_region(state, region)
            return
        state.attempts[region] += 1
        state.reasks += 1
        self._reasks_metric.inc()
        self._respawn_region(state, region)
        self._ship_shard(state, region)

    def _demote_region(self, state: _TreeState, region: int) -> None:
        # A silent region's cells all become missing: none of their
        # contributions entered the combine, so their interior mask
        # edges cancel by absence and only the shard's boundary edges
        # need survivor recovery — handled by the global missing list.
        self.journal.append({
            "type": REC_DEMOTE, "tag": state.tag, "region": region,
        })
        if state.phase != "collect":
            return  # the journal hook crashed us mid-append
        state.region_status[region] = _DEMOTED
        self._demotions_metric.inc()
        self._events.emit(
            "fedquery.region.demote", tag=state.tag, region=region,
            cells=len(state.shards[region]), attempts=state.attempts[region],
        )
        if state.collected():
            self._settle(state)

    # -- inbound ---------------------------------------------------------------

    def _on_message(self, sender: str, payload: Any) -> None:
        with self.clock:
            if self._crashed:
                return  # a delivery already in flight when the root died
            if not isinstance(payload, dict):
                return
            state = self._active.get(payload.get("tag"))
            if state is None:
                return
            kind = payload.get("kind")
            if kind == MSG_SHARD_PARTIAL:
                self._on_shard_partial(state, payload)
            elif kind == MSG_SHARD_MASK:
                self._on_shard_mask(state, payload)

    def _on_shard_partial(self, state: _TreeState,
                          message: dict[str, Any]) -> None:
        region = message["region"]
        if state.phase != "collect" \
                or state.region_status.get(region) != _PENDING:
            return  # duplicate, late (post-demotion), or off-tree
        if self._notify_phase(state, "collect"):
            return  # crashed mid-collect: this delivery dies unrecorded
        self.journal.append({
            "type": REC_PARTIAL, "tag": state.tag, "region": region,
            "message": message, "size": wire_size(message),
        })
        if state.phase != "collect":
            return  # the journal hook crashed us mid-append
        self._bill(state, message)
        state.region_status[region] = STATUS_OK
        state.partials[region] = message
        if message["masked_sum"] is not None:
            state.view.append(message["masked_sum"])
        if state.collected():
            self._settle(state)

    def _on_shard_mask(self, state: _TreeState,
                       message: dict[str, Any]) -> None:
        region = message["region"]
        if state.phase != "recover" or region in state.mask_replies \
                or state.region_status.get(region) != STATUS_OK:
            return
        self.journal.append({
            "type": REC_MASK, "tag": state.tag, "region": region,
            "message": message, "size": wire_size(message),
        })
        if state.phase != "recover":
            return  # the journal hook crashed us mid-append
        self._bill(state, message)
        if message.get("failure"):
            self._finalize(state, failure=message["failure"])
            return
        state.mask_replies[region] = message
        state.view.append(message["net_sum"])
        if len(state.mask_replies) == len(state.ok_regions()):
            self._finish_numeric(state)

    # -- settle: merge, recover, finish ----------------------------------------

    def _settle(self, state: _TreeState) -> None:
        if state.phase != "collect":
            return
        if state.deadline_handle is not None:
            state.deadline_handle.cancel()
        statuses: dict[str, str] = {}
        for region, shard in enumerate(state.shards):
            if state.region_status[region] == _DEMOTED:
                for name in shard:
                    statuses[name] = _DEMOTED
            else:
                statuses.update(state.partials[region]["statuses"])
        state.statuses = statuses
        ok = [
            name for name in state.roster if statuses.get(name) == STATUS_OK
        ]
        if not ok:
            self._finalize(state, failure="no-participants")
            return
        if len(ok) < state.spec.min_cohort:
            self._finalize(state, failure="privacy-floor")
            return
        if state.spec.numeric:
            state.missing = [
                name for name in state.roster
                if statuses.get(name) != STATUS_OK
            ]
            if not state.missing:
                state.phase = "recover"  # vacuous: nothing to recover
                if self._notify_phase(state, "recover"):
                    return  # restart re-settles from the journal
                self._finish_numeric(state)
                return
            self._start_recovery(state)
        else:
            self._finish_kanon(state)

    def _start_recovery(self, state: _TreeState) -> None:
        state.phase = "recover"
        state.recovery_rounds = 1
        self.journal.append({
            "type": REC_RECOVER, "tag": state.tag,
            "missing": list(state.missing),
        })
        if self._notify_phase(state, "recover") \
                or state.phase != "recover":
            return  # crashed entering recovery; restart resumes it
        self._events.emit(
            "fedquery.tree.recover", tag=state.tag,
            missing=len(state.missing), regions=len(state.ok_regions()),
        )
        for region in state.ok_regions():
            state.mask_attempts[region] = 1
            self._ship_recover(state, region)
        self.world.loop.schedule_in(
            self.recovery_timeout_s,
            lambda: self._recovery_deadline(state),
            label=f"fq tree recover deadline {state.tag}",
        )

    def _ship_recover(self, state: _TreeState, region: int) -> None:
        message = shard_recover_message(
            state.tag, state.missing, self.address
        )
        self._bill(state, message)
        try:
            self.network.send(
                self.address, self.regions[region].address, message,
                size_bytes=wire_size(message),
            )
        except CellOfflineError:
            pass

    def _recovery_deadline(self, state: _TreeState) -> None:
        with self.clock:
            if state.phase != "recover" or state.result is not None:
                return
            for region in state.ok_regions():
                if region not in state.mask_replies:
                    self._reask_mask(state, region)

    def _reask_mask(self, state: _TreeState, region: int) -> None:
        with self.clock:
            self._reask_mask_clocked(state, region)

    def _reask_mask_clocked(self, state: _TreeState, region: int) -> None:
        if state.phase != "recover" or state.result is not None \
                or region in state.mask_replies:
            return
        handle = schedule_retry(
            self.world, self.retry_policy, state.mask_attempts[region],
            lambda: self._reask_mask(state, region),
            rng=self._retry_rng, label=f"fq region mask reask {region}",
        )
        if handle is None:
            # A region whose shard sum is in the combine cannot report
            # its survivors' net masks: nothing releasable remains.
            self._finalize(state, failure="mask-recovery")
            return
        state.mask_attempts[region] += 1
        state.reasks += 1
        self._reasks_metric.inc()
        self._respawn_region(state, region)
        self._ship_recover(state, region)

    def _finish_numeric(self, state: _TreeState) -> None:
        if state.result is not None:
            return
        # Sum of shard partials + net recovery sums = bit-for-bit the
        # flat path's total: every interior edge cancelled inside its
        # shard, every boundary/missing edge cancels across them here.
        total = kernels.accumulate(
            [state.partials[region]["masked_sum"]
             for region in state.ok_regions()]
            + [reply["net_sum"] for reply in state.mask_replies.values()]
        )
        value = shamir.decode_signed(total) / state.spec.scale
        self._finalize(state, field_total=total, value=value)

    def _finish_kanon(self, state: _TreeState) -> None:
        released = sum(
            state.partials[region]["count"]
            for region in state.ok_regions()
        )
        if released < max(state.spec.k, state.spec.min_cohort):
            self._finalize(state, failure="privacy-floor")
            return
        sealed = [
            (sender, blob)
            for region in state.ok_regions()
            for sender, blob in state.partials[region]["sealed"]
        ]
        self._finalize(state, sealed_records=sealed)

    def _finalize(
        self,
        state: _TreeState,
        *,
        failure: str | None = None,
        field_total: int | None = None,
        value: float | None = None,
        sealed_records: list[tuple[str, str]] | None = None,
    ) -> None:
        if state.result is not None:
            return
        state.phase = "done"
        counts = {STATUS_DECLINED: 0, STATUS_FLOOR: 0}
        demoted = []
        for name in state.roster:
            status = state.statuses.get(name)
            if status in counts:
                counts[status] += 1
            elif status == _DEMOTED or status is None:
                demoted.append(name)
        ok = [
            name for name in state.roster
            if state.statuses.get(name) == STATUS_OK
        ]
        plan_mix: dict[str, int] = {}
        examined = 0
        tree_messages, tree_bytes, tree_reasks = 0, 0, 0
        for region in state.ok_regions():
            partial = state.partials[region]
            for plan, count in partial["plan_mix"].items():
                plan_mix[plan] = plan_mix.get(plan, 0) + count
            examined += partial["examined"]
            tree_messages += partial["messages"]
            tree_bytes += partial["bytes"]
            tree_reasks += partial["reasks"]
        for reply in state.mask_replies.values():
            tree_messages += reply["messages"]
            tree_bytes += reply["bytes"]
            tree_reasks += reply["reasks"]
        if failure is not None:
            outcome = OUTCOME_ABANDONED
        elif demoted:
            outcome = OUTCOME_PARTIAL
        else:
            outcome = OUTCOME_COMPLETE
        with self._tracer.span(
            "fedquery.tree.collect", tag=state.tag,
            transform=state.spec.transform,
        ) as span:
            span.annotate(
                outcome=outcome, participants=len(ok), demoted=len(demoted),
                regions=len(state.shards), reasks=state.reasks + tree_reasks,
                waited_s=self.world.now - state.started_at,
            )
        self._queries_metric.labels(outcome=outcome).inc()
        self._events.emit(
            "fedquery.tree.settle", tag=state.tag, outcome=outcome,
            participants=len(ok), demoted=len(demoted), failure=failure,
        )
        result = FedQueryResult(
            transform=state.spec.transform,
            tag=state.tag,
            roster_size=len(state.roster),
            participants=len(ok),
            declined=counts[STATUS_DECLINED],
            floored=counts[STATUS_FLOOR],
            demoted=demoted,
            value=value,
            field_total=field_total,
            sealed_records=sealed_records,
            plan_mix=plan_mix,
            records_examined=examined,
            messages=state.messages + tree_messages,
            bytes=state.bytes + tree_bytes,
            reasks=state.reasks + tree_reasks,
            recovery_rounds=state.recovery_rounds,
            outcome=outcome,
            failure=failure,
            completed_at=self.world.now,
            coordinator_view=state.view,
            regions=len(state.shards),
            root_messages=state.messages,
            root_bytes=state.bytes,
        )
        # Journal the terminal record *before* publishing: a crash
        # between the two republishes from the journal on restart.
        self.journal.append({
            "type": REC_DONE, "tag": state.tag, "outcome": outcome,
            "result": dataclasses.asdict(result),
        })
        if self._crashed:
            return  # died after the durable record; restart republishes
        state.result = result
        self._results[state.tag] = result
