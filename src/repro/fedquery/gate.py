"""The egress privacy gate: the last thing a cell does before the wire.

Nothing leaves a cell in the clear. The gate turns a local query result
into the only three shapes the untrusted coordinator is allowed to see:

* a **masked field element** — the cell's (optionally noised, scaled)
  numeric contribution plus the pairwise masks of the k-regular SecAgg
  graph (:mod:`repro.commons.aggregation` machinery, same keystreams,
  same sign convention, so the coordinator's sum is bit-for-bit the
  legacy :class:`~repro.commons.aggregation.MaskedSum` total);
* a **net recovery mask** — what a survivor reveals so the edges it
  shares with cells that never contributed cancel out of the total;
* a **sealed record batch** — AEAD ciphertext under a key derived for
  the *recipient*, which the coordinator forwards but cannot open.

The gate also owns the **minimum-cohort floor**: a cell refuses to
contribute at all when the plan's roster is smaller than the spec's
``min_cohort`` (a tiny roster would let the recipient subtract its way
to an individual value).
"""

from __future__ import annotations

import json
import random
from typing import Any

from ..commons import kernels
from ..commons.aggregation import (
    AggregationNode,
    _effective_degree,
    _masking_peers,
    ring_neighbor_positions,
)
from ..commons.dp import gamma_noise_share, laplace_scale
from ..crypto import aead, shamir
from ..crypto.primitives import KEY_SIZE, sha256
from ..errors import ProtocolError
from .spec import FedQuerySpec

Directory = dict[str, AggregationNode]


def cohort_allows(spec: FedQuerySpec, roster_size: int) -> bool:
    """Whether a roster is large enough for this spec's privacy floor."""
    return roster_size >= spec.min_cohort


def dp_noise_share(rng: random.Random, participants: int,
                   epsilon: float) -> float:
    """This cell's additive share of the distributed Laplace noise.

    Calibrated for ``participants`` cells (the shipped roster size —
    every cell sees the same roster, so the shares sum to one exact
    Laplace draw when everyone contributes; dropouts leave the total
    slightly under-dispersed, quantified in E10).
    """
    return gamma_noise_share(
        rng, participants=participants, scale=laplace_scale(1.0, epsilon)
    )


def _roster_nodes(directory: Directory, roster: list[str]) -> list[AggregationNode]:
    nodes = []
    for name in roster:
        node = directory.get(name)
        if node is None:
            raise ProtocolError(f"no key material for roster member {name!r}")
        nodes.append(node)
    return nodes


# Memoized roster resolution, keyed by (roster token, roster).  Every
# cell of a fleet resolves the *same* roster for the same query, and
# repeated queries reuse the same roster — so the per-call name->node
# walk (O(N) per cell, O(N^2) per fan-out) is paid once per distinct
# roster instead.  The token (`AggregationNode.roster_token`) names the
# node's key-material universe — (secret, generation) for preshared
# nodes, (directory, epoch, generation) for directory-issued epoch
# nodes — so a key rotation changes the key and stale resolutions can
# never be served across an epoch.  A `None` token disables memoization
# (per-ring DH nodes).  Bounded FIFO so ad-hoc test rosters cannot grow
# it without limit.
_ROSTER_CACHE: dict[tuple, tuple[
    list[AggregationNode], dict[str, int]]] = {}
_ROSTER_CACHE_MAX = 64


def _resolved_roster(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
) -> tuple[list[AggregationNode], dict[str, int]]:
    """Roster names to (nodes, position map), memoized when tokenized."""
    secret = node._preshared
    token = node.roster_token()
    key = None
    if token is not None:
        key = (token, tuple(roster))
        cached = _ROSTER_CACHE.get(key)
        if cached is not None:
            return cached
    order = {name: position for position, name in enumerate(roster)}
    if secret is None:
        nodes = _roster_nodes(directory, roster)
    else:
        # Preshared fleets can synthesize key material for any name, so
        # a member absent from this cell's (possibly shard-local)
        # directory still resolves.  Directory-issued nodes cannot (and
        # must not — a missing name means no agreed edge): they resolve
        # strictly through _roster_nodes above.
        nodes = [
            directory.get(name)
            or AggregationNode._with_group_secret(name, secret)
            for name in roster
        ]
    if key is not None:
        if len(_ROSTER_CACHE) >= _ROSTER_CACHE_MAX:
            _ROSTER_CACHE.pop(next(iter(_ROSTER_CACHE)))
        _ROSTER_CACHE[key] = (nodes, order)
    return nodes, order


def _window_peers(
    node: AggregationNode,
    directory: Directory,
    positions: dict[str, int],
    size: int,
    neighbors: int | None,
) -> tuple[int, list[tuple[AggregationNode, int]]]:
    """Resolve a cell's ring neighborhood from global positions.

    The hierarchical path ships each cell only a *window* of the
    global roster — its k ring-neighbors plus itself — together with
    their global positions and the global roster size.  Masks and
    signs computed from those positions are identical to the flat
    path's, so shard partial sums compose to the same global total.
    """
    if node.name not in positions:
        raise ProtocolError(f"cell {node.name!r} is not on the roster")
    position = positions[node.name]
    degree = _effective_degree(size, neighbors)
    if degree is None:
        raise ProtocolError(
            "windowed masking needs a k-regular graph (neighbors < size-1)"
        )
    name_at = {pos: name for name, pos in positions.items()}
    secret = node._preshared
    peers = []
    for peer_position in ring_neighbor_positions(position, size, degree):
        name = name_at.get(peer_position)
        if name is None:
            raise ProtocolError(
                f"no roster window entry for ring position {peer_position}"
            )
        peer = directory.get(name)
        if peer is None:
            if secret is None:
                raise ProtocolError(
                    f"no key material for roster member {name!r}"
                )
            peer = AggregationNode._with_group_secret(name, secret)
            directory[name] = peer  # cache the stub for later rounds
        peers.append((peer, peer_position))
    return position, peers


def _masking_terms(
    node: AggregationNode,
    position: int,
    peers: list[tuple[AggregationNode, int]],
    round_tag: str,
) -> tuple[list[int], list[int]]:
    """All pairwise masks for one cell, split by sign, in one batch."""
    elements = node.mask_elements_many(
        [peer for peer, _ in peers], round_tag, 1
    )
    plus = [row[0] for (_, peer_position), row in zip(peers, elements)
            if position < peer_position]
    minus = [row[0] for (_, peer_position), row in zip(peers, elements)
             if position > peer_position]
    return plus, minus


def masked_contribution(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    value: int,
    neighbors: int | None = None,
    *,
    positions: dict[str, int] | None = None,
    size: int | None = None,
) -> int:
    """``encode_signed(value)`` plus this cell's pairwise masks.

    Signs follow roster position exactly as :class:`MaskedSum` follows
    node-list position: the lower-positioned end adds, the higher end
    subtracts, so the masks of every online pair cancel in the
    coordinator's sum. A roster of one has no peers — the "mask" is
    just the field encoding (the legacy single-member path).

    With ``positions``/``size`` the cell masks from a roster *window*
    (the hierarchical path): ``roster`` then only needs to cover the
    cell's ring neighborhood, signs follow the supplied global
    positions, and the result is bit-for-bit what the flat path would
    compute over the full roster.  Masks are derived and applied in
    one batch-kernel pass per roster; the per-element scalar loop
    survives as :func:`masked_contribution_reference`.
    """
    if positions is not None:
        if size is None:
            raise ProtocolError("windowed masking needs the global size")
        position, peers = _window_peers(
            node, directory, positions, size, neighbors
        )
    else:
        nodes, order = _resolved_roster(node, directory, roster)
        if node.name not in order:
            raise ProtocolError(f"cell {node.name!r} is not on the roster")
        position = order[node.name]
        degree = _effective_degree(len(roster), neighbors)
        peers = [
            (peer, order[peer.name])
            for peer in _masking_peers(nodes, position, degree)
        ]
    plus, minus = _masking_terms(node, position, peers, round_tag)
    return kernels.signed_accumulate(shamir.encode_signed(value), plus, minus)


def masked_contribution_reference(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    value: int,
    neighbors: int | None = None,
) -> int:
    """Scalar reference for :func:`masked_contribution` (flat rosters).

    The historical per-element loop, kept as the oracle the batch
    kernels are pinned against in ``tests/test_kernels.py``.
    """
    order = {name: position for position, name in enumerate(roster)}
    if node.name not in order:
        raise ProtocolError(f"cell {node.name!r} is not on the roster")
    nodes = _roster_nodes(directory, roster)
    position = order[node.name]
    degree = _effective_degree(len(roster), neighbors)
    masked = shamir.encode_signed(value)
    for peer in _masking_peers(nodes, position, degree):
        mask = node.pairwise_mask(peer, round_tag)
        if position < order[peer.name]:
            masked = (masked + mask) % shamir.PRIME
        else:
            masked = (masked - mask) % shamir.PRIME
    return masked


def net_recovery_mask(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    missing: list[str],
    neighbors: int | None = None,
    *,
    positions: dict[str, int] | None = None,
    size: int | None = None,
) -> int:
    """The survivor's net unmasking term for a set of missing cells.

    The coordinator adds this (mod PRIME) to its running total; summed
    over all survivors it cancels exactly the masks the survivors
    applied against cells that never contributed. Revealing it protects
    nothing — the missing cells sent no values. Reads the cached round
    keystream, so recovery costs zero fresh derivations.  Accepts the
    same ``positions``/``size`` window form as
    :func:`masked_contribution`.
    """
    if positions is not None:
        if size is None:
            raise ProtocolError("windowed masking needs the global size")
        position, peers = _window_peers(
            node, directory, positions, size, neighbors
        )
    else:
        nodes, order = _resolved_roster(node, directory, roster)
        position = order[node.name]
        degree = _effective_degree(len(roster), neighbors)
        peers = [
            (peer, order[peer.name])
            for peer in _masking_peers(nodes, position, degree)
        ]
    missing_set = set(missing)
    gone = [entry for entry in peers if entry[0].name in missing_set]
    plus, minus = _masking_terms(node, position, gone, round_tag)
    # Signs invert: the survivor *removes* the masks it applied.
    return kernels.signed_accumulate(0, minus, plus)


def net_recovery_mask_reference(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    missing: list[str],
    neighbors: int | None = None,
) -> int:
    """Scalar reference for :func:`net_recovery_mask` (flat rosters)."""
    order = {name: position for position, name in enumerate(roster)}
    nodes = _roster_nodes(directory, roster)
    position = order[node.name]
    degree = _effective_degree(len(roster), neighbors)
    missing_set = set(missing)
    net = 0
    for peer in _masking_peers(nodes, position, degree):
        if peer.name not in missing_set:
            continue
        mask = node.pairwise_mask(peer, round_tag)
        if position < order[peer.name]:
            net = (net - mask) % shamir.PRIME
        else:
            net = (net + mask) % shamir.PRIME
    return net


# -- sealed record egress ----------------------------------------------------


def recipient_key(recipient: str, fleet_secret: bytes) -> bytes:
    """The AEAD key a fleet's cells share with one *recipient*.

    Derived from the fleet's group secret and the recipient name, so
    the coordinator (which holds neither) can forward sealed batches
    but never open them. Stands in for a per-recipient key agreement —
    the fleets here already share a group secret for masking keys.
    """
    return sha256(b"fq-recipient|" + fleet_secret + b"|" + recipient.encode())[
        :KEY_SIZE
    ]


def seal_records(key: bytes, rows: list[dict[str, Any]], tag: str,
                 sender: str) -> str:
    """Seal a record batch for the recipient; returns hex for the wire.

    The header binds the batch to this query and sender, so a
    coordinator cannot splice one query's records into another's
    release without failing authentication.
    """
    header = f"fq|{tag}|{sender}".encode()
    blob = aead.seal(
        key,
        json.dumps(rows, sort_keys=True).encode(),
        header=header,
        nonce_seed=header,
    )
    return blob.to_bytes().hex()


def open_records(key: bytes, blob_hex: str) -> list[dict[str, Any]]:
    """Recipient-side: verify and decrypt one cell's sealed batch."""
    blob = aead.SealedBlob.from_bytes(bytes.fromhex(blob_hex))
    return json.loads(aead.open_sealed(key, blob).decode())
