"""The egress privacy gate: the last thing a cell does before the wire.

Nothing leaves a cell in the clear. The gate turns a local query result
into the only three shapes the untrusted coordinator is allowed to see:

* a **masked field element** — the cell's (optionally noised, scaled)
  numeric contribution plus the pairwise masks of the k-regular SecAgg
  graph (:mod:`repro.commons.aggregation` machinery, same keystreams,
  same sign convention, so the coordinator's sum is bit-for-bit the
  legacy :class:`~repro.commons.aggregation.MaskedSum` total);
* a **net recovery mask** — what a survivor reveals so the edges it
  shares with cells that never contributed cancel out of the total;
* a **sealed record batch** — AEAD ciphertext under a key derived for
  the *recipient*, which the coordinator forwards but cannot open.

The gate also owns the **minimum-cohort floor**: a cell refuses to
contribute at all when the plan's roster is smaller than the spec's
``min_cohort`` (a tiny roster would let the recipient subtract its way
to an individual value).
"""

from __future__ import annotations

import json
import random
from typing import Any

from ..commons.aggregation import (
    AggregationNode,
    _effective_degree,
    _masking_peers,
)
from ..commons.dp import gamma_noise_share, laplace_scale
from ..crypto import aead, shamir
from ..crypto.primitives import KEY_SIZE, sha256
from ..errors import ProtocolError
from .spec import FedQuerySpec

Directory = dict[str, AggregationNode]


def cohort_allows(spec: FedQuerySpec, roster_size: int) -> bool:
    """Whether a roster is large enough for this spec's privacy floor."""
    return roster_size >= spec.min_cohort


def dp_noise_share(rng: random.Random, participants: int,
                   epsilon: float) -> float:
    """This cell's additive share of the distributed Laplace noise.

    Calibrated for ``participants`` cells (the shipped roster size —
    every cell sees the same roster, so the shares sum to one exact
    Laplace draw when everyone contributes; dropouts leave the total
    slightly under-dispersed, quantified in E10).
    """
    return gamma_noise_share(
        rng, participants=participants, scale=laplace_scale(1.0, epsilon)
    )


def _roster_nodes(directory: Directory, roster: list[str]) -> list[AggregationNode]:
    nodes = []
    for name in roster:
        node = directory.get(name)
        if node is None:
            raise ProtocolError(f"no key material for roster member {name!r}")
        nodes.append(node)
    return nodes


def masked_contribution(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    value: int,
    neighbors: int | None = None,
) -> int:
    """``encode_signed(value)`` plus this cell's pairwise masks.

    Signs follow roster position exactly as :class:`MaskedSum` follows
    node-list position: the lower-positioned end adds, the higher end
    subtracts, so the masks of every online pair cancel in the
    coordinator's sum. A roster of one has no peers — the "mask" is
    just the field encoding (the legacy single-member path).
    """
    order = {name: position for position, name in enumerate(roster)}
    if node.name not in order:
        raise ProtocolError(f"cell {node.name!r} is not on the roster")
    nodes = _roster_nodes(directory, roster)
    position = order[node.name]
    degree = _effective_degree(len(roster), neighbors)
    masked = shamir.encode_signed(value)
    for peer in _masking_peers(nodes, position, degree):
        mask = node.pairwise_mask(peer, round_tag)
        if position < order[peer.name]:
            masked = (masked + mask) % shamir.PRIME
        else:
            masked = (masked - mask) % shamir.PRIME
    return masked


def net_recovery_mask(
    node: AggregationNode,
    directory: Directory,
    roster: list[str],
    round_tag: str,
    missing: list[str],
    neighbors: int | None = None,
) -> int:
    """The survivor's net unmasking term for a set of missing cells.

    The coordinator adds this (mod PRIME) to its running total; summed
    over all survivors it cancels exactly the masks the survivors
    applied against cells that never contributed. Revealing it protects
    nothing — the missing cells sent no values. Reads the cached round
    keystream, so recovery costs zero fresh derivations.
    """
    order = {name: position for position, name in enumerate(roster)}
    nodes = _roster_nodes(directory, roster)
    position = order[node.name]
    degree = _effective_degree(len(roster), neighbors)
    missing_set = set(missing)
    net = 0
    for peer in _masking_peers(nodes, position, degree):
        if peer.name not in missing_set:
            continue
        mask = node.pairwise_mask(peer, round_tag)
        if position < order[peer.name]:
            net = (net - mask) % shamir.PRIME
        else:
            net = (net + mask) % shamir.PRIME
    return net


# -- sealed record egress ----------------------------------------------------


def recipient_key(recipient: str, fleet_secret: bytes) -> bytes:
    """The AEAD key a fleet's cells share with one *recipient*.

    Derived from the fleet's group secret and the recipient name, so
    the coordinator (which holds neither) can forward sealed batches
    but never open them. Stands in for a per-recipient key agreement —
    the fleets here already share a group secret for masking keys.
    """
    return sha256(b"fq-recipient|" + fleet_secret + b"|" + recipient.encode())[
        :KEY_SIZE
    ]


def seal_records(key: bytes, rows: list[dict[str, Any]], tag: str,
                 sender: str) -> str:
    """Seal a record batch for the recipient; returns hex for the wire.

    The header binds the batch to this query and sender, so a
    coordinator cannot splice one query's records into another's
    release without failing authentication.
    """
    header = f"fq|{tag}|{sender}".encode()
    blob = aead.seal(
        key,
        json.dumps(rows, sort_keys=True).encode(),
        header=header,
        nonce_seed=header,
    )
    return blob.to_bytes().hex()


def open_records(key: bytes, blob_hex: str) -> list[dict[str, Any]]:
    """Recipient-side: verify and decrypt one cell's sealed batch."""
    blob = aead.SealedBlob.from_bytes(bytes.fromhex(blob_hex))
    return json.loads(aead.open_sealed(key, blob).decode())
