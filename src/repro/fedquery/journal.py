"""The write-ahead query journal: what lets a coordinator crash.

The paper parks the coordinator on "highly powerful, highly available
but untrusted infrastructure" — this module makes the *availability*
half earned instead of assumed. Every coordinator-class endpoint (the
flat :class:`~repro.fedquery.coordinator.Coordinator`, each
:class:`~repro.fedquery.hierarchy.RegionalCoordinator`, the
:class:`~repro.fedquery.hierarchy.HierarchicalCoordinator` root, and
keymgmt's ``DirectoryService``) appends a record *before* acting on
the event it describes, and on restart rebuilds its run state from the
journal alone and resumes. Cells' idempotent cached partials (DP noise
drawn once per query, masks replayed byte-for-byte) make the resumed
re-asks bit-for-bit safe.

Privacy contract — the journal is **untrusted storage**: it may only
ever hold what already crossed the egress gate. Records carry masked
field elements, net recovery masks, sealed ciphertext blobs, statuses
and wire bookkeeping — the same surface as ``coordinator_view`` — and
never a raw encoding. :func:`journal_elements` extracts every numeric
payload a journal holds so tests can intersect it with the fleet's raw
encodings and assert the intersection is empty.

Records are normalized through JSON on append. That is deliberate, not
cosmetic: replay then reconstructs state only from what a real durable
log would have held (tuples come back as lists, keys as strings, no
live-object aliasing), and a non-serializable payload — the shape a
leak would take — fails loudly at append time, not at restart time.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from ..errors import ProtocolError

#: Record types shared by the fedquery coordinators. The directory
#: service defines its own small vocabulary; the journal itself is
#: type-agnostic — it only requires ``type`` and ``tag`` fields.
REC_START = "start"
REC_PARTIAL = "partial"
REC_DEMOTE = "demote"
REC_RECOVER = "recover"
REC_MASK = "mask"
REC_REPORT = "report"
REC_MASK_REPORT = "mask_report"
REC_DONE = "done"


class QueryJournal:
    """An append-only, in-memory stand-in for a durable coordinator log.

    ``on_append(index, record)`` is the durability hook: it fires after
    the record is persisted, so a crash raised from inside it models a
    process dying right after the disk write — the record survives,
    everything the handler would have done next is lost. The
    crash-after-every-record property test drives exactly that.
    """

    def __init__(self, on_append: Callable[[int, dict], None] | None = None
                 ) -> None:
        self._records: list[dict[str, Any]] = []
        self.on_append = on_append

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one record; returns its index."""
        if "type" not in record or "tag" not in record:
            raise ProtocolError("journal records need 'type' and 'tag'")
        try:
            normalized = json.loads(
                json.dumps(record, separators=(",", ":"))
            )
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                f"unjournalable record {record.get('type')!r}: {error}"
            ) from error
        index = len(self._records)
        self._records.append(normalized)
        if self.on_append is not None:
            self.on_append(index, normalized)
        return index

    def records(self) -> list[dict[str, Any]]:
        """A copy of every record, in append order."""
        return list(self._records)

    def by_tag(self) -> dict[str, list[dict[str, Any]]]:
        """Records grouped by query tag, append order preserved."""
        grouped: dict[str, list[dict[str, Any]]] = {}
        for record in self._records:
            grouped.setdefault(record["tag"], []).append(record)
        return grouped

    def finished(self, tag: str) -> bool:
        """True when ``tag`` reached a terminal ``done`` record."""
        return any(
            record["tag"] == tag and record["type"] == REC_DONE
            for record in self._records
        )


def journal_elements(journal: QueryJournal) -> set[int]:
    """Every numeric payload element a journal holds (leakage audit).

    Walks the payload-bearing positions of every known record shape —
    flat partials (``{"masked": ...}``), net recovery masks, shard
    partial sums and shard net sums — so tests can assert the set is
    disjoint from the fleet's raw field encodings, exactly as they do
    for ``coordinator_view``.
    """
    elements: set[int] = set()

    def collect(value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, int):
            elements.add(value)
        elif isinstance(value, dict):
            for key in ("masked", "masked_sum", "net_mask", "net_sum"):
                entry = value.get(key)
                if isinstance(entry, int) and not isinstance(entry, bool):
                    elements.add(entry)

    for record in journal.records():
        for key in ("payload", "net_mask", "message", "reply"):
            if key in record:
                collect(record[key])
    return elements
