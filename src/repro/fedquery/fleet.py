"""Fleet construction: many store-backed cells on one simulated network.

Builds the population the federated-query experiments and benches run
against: each cell owns a *tiny* NAND device and an embedded
:class:`~repro.store.catalog.Catalog` holding a day of per-hour energy
records plus one demographic profile record. Cells are deliberately
heterogeneous in their storage layout — a third carry an ordered index
on ``hour``, a third rely on zone maps alone, a third must full-scan —
so a fan-out surfaces the per-cell plan mix the coordinator reports.

All randomness comes from the world's seed streams; building the same
fleet twice from the same seed yields identical stores, values and key
material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..commons.aggregation import (
    AggregationNode,
    _effective_degree,
    ring_neighbor_positions,
)
from ..crypto.keys import KeyRing
from ..errors import ConfigurationError
from ..hardware.flash import NandFlash
from ..hardware.profiles import FlashTimings
from ..infrastructure.network import Network
from ..sim.world import World
from ..store.catalog import Catalog
from .cell import CatalogSource, CellQueryAgent
from .spec import FedQuerySpec

if TYPE_CHECKING:  # imported lazily at runtime (keymgmt imports commons)
    from ..keymgmt.directory import KeyDirectory

#: A smart-meter-class device: 512 B pages, 16-page blocks, 64 KiB.
TINY_FLASH = FlashTimings(
    page_size=512, pages_per_block=16,
    read_page_us=25.0, write_page_us=200.0, erase_block_us=1500.0,
)
TINY_CAPACITY = 64 * 1024

LAYOUT_INDEX = "index"
LAYOUT_ZONEMAP = "zonemap"
LAYOUT_SCAN = "scan"
LAYOUTS = (LAYOUT_INDEX, LAYOUT_ZONEMAP, LAYOUT_SCAN)

DISEASES = ("asthma", "diabetes", "flu", "none")


@dataclass
class Fleet:
    """A built population, ready for a :class:`Coordinator` to query."""

    world: World
    network: Network
    secret: bytes
    agents: dict[str, CellQueryAgent] = field(default_factory=dict)
    catalogs: dict[str, Catalog] = field(default_factory=dict)
    layouts: dict[str, str] = field(default_factory=dict)
    # Sharded builds only: the contiguous per-region rosters (empty for
    # a monolithic build).
    shard_rosters: list[list[str]] = field(default_factory=list)
    # Key-lifecycle builds only: the fleet's key directory, the live
    # directory dicts its agents resolve peers through (one per shard,
    # or one fleet-wide), the masking degree the ring was agreed at,
    # and the names revoked since the build.
    key_directory: "KeyDirectory | None" = None
    directories: list[dict[str, AggregationNode]] = field(default_factory=list)
    ring_neighbors: int | None = None
    revoked: set[str] = field(default_factory=set)

    @property
    def roster(self) -> list[str]:
        return [name for name in self.agents if name not in self.revoked]

    # -- key lifecycle -----------------------------------------------------

    def refresh_keys(self) -> None:
        """Re-issue every agent's node at the directory's current epoch.

        Swaps fresh :class:`~repro.keymgmt.directory.EpochNode` objects
        into every agent *and* every live directory dict atomically
        (in-place: the agents hold references to the dicts), so the
        whole fleet masks from one coherent (epoch, generation) and the
        ring masks still cancel exactly. Removed members disappear from
        the dicts entirely.
        """
        directory = self._require_directory()
        nodes = directory.issue_all()
        active = directory.roster()
        positions = {name: index for index, name in enumerate(active)}
        degree = _effective_degree(len(active), self.ring_neighbors)
        rosters = self.shard_rosters or [list(self.agents)]
        for shard_roster, shard_directory in zip(rosters, self.directories):
            shard_directory.clear()
            for name in shard_roster:
                node = nodes.get(name)
                if node is None:
                    continue  # revoked or departed
                shard_directory[name] = node
                if degree is None:
                    shard_directory.update(nodes)
                    continue
                # Cross-shard ring neighbors: the hierarchical path
                # resolves a boundary peer from this shard's dict, so
                # its epoch node must already be there.
                for peer_position in ring_neighbor_positions(
                        positions[name], len(active), degree):
                    peer = active[peer_position]
                    shard_directory[peer] = nodes[peer]
        for name, agent in self.agents.items():
            node = nodes.get(name)
            if node is not None:
                agent.node = node

    def advance_epoch(self) -> int:
        """Rotate the fleet's ring keys one epoch; re-keys every agent."""
        epoch = self._require_directory().advance_epoch()
        self.refresh_keys()
        return epoch

    def revoke(self, name: str) -> None:
        """Revoke one cell fleet-wide: banned from the directory,
        excluded from every future epoch, dropped from the roster."""
        self._require_directory().revoke(name)
        self.revoked.add(name)
        self.refresh_keys()

    def _require_directory(self) -> "KeyDirectory":
        if self.key_directory is None:
            raise ConfigurationError(
                "this fleet was built without key_lifecycle=True")
        return self.key_directory

    def ground_truth(self, spec: FedQuerySpec,
                     roster: list[str] | None = None) -> float:
        """The oracle answer: each cell's local query, summed in the
        clear (bypasses the network — for asserting engine results)."""
        names = roster if roster is not None else self.roster
        total = 0.0
        for name in names:
            result = self.catalogs[name].query(spec.local_query())
            total += float(result.scalar())
        return total

    def local_rows(self, spec: FedQuerySpec,
                   roster: list[str] | None = None) -> list[dict]:
        """Oracle record release: every cell's matching rows, in roster
        order (what a ``records-kanon`` release decrypts to)."""
        names = roster if roster is not None else self.roster
        rows: list[dict] = []
        for name in names:
            result = self.catalogs[name].query(spec.local_query())
            rows.extend(result.rows)
        return rows


def _cell_name(name_prefix: str, position: int, size: int) -> str:
    """``cell-0042``-style names; padding widens past 10k cells so the
    historical 4-digit format is preserved for every existing fleet."""
    pad = max(4, len(str(size - 1)))
    return f"{name_prefix}-{position:0{pad}d}"


def _build_cell(
    fleet: Fleet,
    position: int,
    name: str,
    directory: dict[str, AggregationNode],
    purposes: set[str],
    hours: int,
    node: AggregationNode | None = None,
) -> None:
    """One store-backed cell: tiny flash, catalog, agent, key material."""
    world = fleet.world
    layout = LAYOUTS[position % len(LAYOUTS)]
    rng = world.rng(f"fleet.{name}")
    catalog = Catalog(
        NandFlash(TINY_FLASH, TINY_CAPACITY),
        zone_maps=layout != LAYOUT_SCAN,
    )
    energy = catalog.collection("energy")
    if layout == LAYOUT_INDEX:
        energy.create_ordered_index("hour")
    energy.insert_many(
        (
            f"r{hour}",
            {
                "hour": hour,
                "watts": round(
                    rng.uniform(50.0, 450.0)
                    + (300.0 if 18 <= hour <= 21 else 0.0),
                    1,
                ),
                "day": 1,
            },
        )
        for hour in range(hours)
    )
    catalog.collection("profile").insert(
        "p0",
        {
            "qi_age": rng.randint(18, 90),
            "qi_zip": rng.randint(10_000, 99_999),
            "disease": rng.choice(DISEASES),
        },
    )
    if node is None:
        node = AggregationNode._with_group_secret(name, fleet.secret)
    directory[name] = node
    fleet.agents[name] = CellQueryAgent(
        world, fleet.network, name, node, CatalogSource(catalog),
        purposes=set(purposes), directory=directory,
        fleet_secret=fleet.secret,
    )
    fleet.catalogs[name] = catalog
    fleet.layouts[name] = layout


def _agreed_nodes(
    fleet: Fleet, names: list[str], ring_neighbors: int | None,
) -> dict[str, AggregationNode]:
    """Stand up the fleet's key directory and issue epoch-0 nodes.

    Key-ring masters come from dedicated ``keymgmt.*`` world streams —
    *not* the ``fleet.*`` streams the cell data is drawn from — so a
    key-lifecycle fleet's stores and values are byte-identical to the
    preshared build's and the quiet-path totals pin bit-for-bit.
    """
    from ..keymgmt.directory import KeyDirectory

    world = fleet.world
    directory = KeyDirectory(
        rng=world.rng("keymgmt.directory"), neighbors=ring_neighbors)
    for name in names:
        directory.enroll(name, KeyRing.generate(world.rng(f"keymgmt.{name}")))
    directory.activate()
    fleet.key_directory = directory
    fleet.ring_neighbors = ring_neighbors
    return directory.issue_all()


def build_fleet(
    world: World,
    network: Network,
    size: int,
    *,
    purposes: set[str] | None = None,
    hours: int = 24,
    secret: bytes = b"fedquery-fleet-secret",
    name_prefix: str = "cell",
    key_lifecycle: bool = False,
    ring_neighbors: int | None = 32,
) -> Fleet:
    """Build ``size`` store-backed cells registered on ``network``.

    Layouts rotate ``index`` / ``zonemap`` / ``scan`` by position.
    Watts values and demographics are drawn from per-cell world
    streams, so the fleet is a pure function of the world seed.
    All cells share one fleet-wide directory — the monolithic build
    the flat coordinator wants; very large fleets should use
    :func:`build_fleet_sharded` instead.

    With ``key_lifecycle=True`` the cells mask from a
    :class:`~repro.keymgmt.KeyDirectory` instead of the preshared
    group secret: ring-edge keys are agreed (X3DH over prekey bundles)
    at ``ring_neighbors`` degree, and ``Fleet.advance_epoch`` /
    ``Fleet.revoke`` become available. Queries should then use the
    same ``neighbors=ring_neighbors`` degree — a cell holds keys for
    its agreed ring edges only. ``secret`` is still used for sealed
    ``records-kanon`` recipient keys.
    """
    fleet = Fleet(world=world, network=network, secret=secret)
    purposes = purposes if purposes is not None else {"load-forecast"}
    names = [_cell_name(name_prefix, position, size)
             for position in range(size)]
    nodes = _agreed_nodes(fleet, names, ring_neighbors) if key_lifecycle \
        else {}
    directory: dict[str, AggregationNode] = {}
    for position, name in enumerate(names):
        _build_cell(
            fleet, position, name, directory, purposes, hours,
            node=nodes.get(name),
        )
    fleet.directories = [directory]
    return fleet


def build_fleet_sharded(
    world: World,
    network: Network,
    size: int,
    *,
    shards: int,
    purposes: set[str] | None = None,
    hours: int = 24,
    secret: bytes = b"fedquery-fleet-secret",
    name_prefix: str = "cell",
    key_lifecycle: bool = False,
    ring_neighbors: int | None = 32,
) -> Fleet:
    """Build a large fleet as a fan-out of ``shards`` shard builds.

    Cells are identical to :func:`build_fleet`'s (same names, same
    seeded stores — the two builds are interchangeable cell for cell);
    what changes is the wiring: each contiguous shard gets its **own**
    key-material directory holding only that shard's nodes, instead of
    one monolithic fleet-wide dict every cell shares. That matches the
    coordinator tree's trust boundaries — a cell never holds the
    global roster; out-of-shard ring neighbors resolve through the
    preshared group secret at masking time — and keeps each build step
    O(shard). The per-region rosters land in ``Fleet.shard_rosters``.

    With ``key_lifecycle=True`` out-of-shard neighbors cannot be
    synthesized (there is no group secret to hash a stub from), so
    each shard's dict is pre-seeded with the directory-issued epoch
    nodes of its members' cross-shard ring neighbors — still O(shard
    + boundary), never the global roster.
    """
    if shards < 1:
        raise ValueError("a sharded build needs at least one shard")
    fleet = Fleet(world=world, network=network, secret=secret)
    purposes = purposes if purposes is not None else {"load-forecast"}
    names = [_cell_name(name_prefix, index, size) for index in range(size)]
    nodes = _agreed_nodes(fleet, names, ring_neighbors) if key_lifecycle \
        else {}
    count = min(shards, size)
    base, extra = divmod(size, count)
    position = 0
    for shard in range(count):
        shard_size = base + (1 if shard < extra else 0)
        directory: dict[str, AggregationNode] = {}
        roster = []
        for _ in range(shard_size):
            name = names[position]
            _build_cell(fleet, position, name, directory, purposes, hours,
                        node=nodes.get(name))
            roster.append(name)
            position += 1
        fleet.shard_rosters.append(roster)
        fleet.directories.append(directory)
    if key_lifecycle:
        # Seed every shard's boundary neighbors at the current epoch.
        fleet.refresh_keys()
    return fleet
