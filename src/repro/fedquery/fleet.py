"""Fleet construction: many store-backed cells on one simulated network.

Builds the population the federated-query experiments and benches run
against: each cell owns a *tiny* NAND device and an embedded
:class:`~repro.store.catalog.Catalog` holding a day of per-hour energy
records plus one demographic profile record. Cells are deliberately
heterogeneous in their storage layout — a third carry an ordered index
on ``hour``, a third rely on zone maps alone, a third must full-scan —
so a fan-out surfaces the per-cell plan mix the coordinator reports.

All randomness comes from the world's seed streams; building the same
fleet twice from the same seed yields identical stores, values and key
material.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..commons.aggregation import AggregationNode
from ..hardware.flash import NandFlash
from ..hardware.profiles import FlashTimings
from ..infrastructure.network import Network
from ..sim.world import World
from ..store.catalog import Catalog
from .cell import CatalogSource, CellQueryAgent
from .spec import FedQuerySpec

#: A smart-meter-class device: 512 B pages, 16-page blocks, 64 KiB.
TINY_FLASH = FlashTimings(
    page_size=512, pages_per_block=16,
    read_page_us=25.0, write_page_us=200.0, erase_block_us=1500.0,
)
TINY_CAPACITY = 64 * 1024

LAYOUT_INDEX = "index"
LAYOUT_ZONEMAP = "zonemap"
LAYOUT_SCAN = "scan"
LAYOUTS = (LAYOUT_INDEX, LAYOUT_ZONEMAP, LAYOUT_SCAN)

DISEASES = ("asthma", "diabetes", "flu", "none")


@dataclass
class Fleet:
    """A built population, ready for a :class:`Coordinator` to query."""

    world: World
    network: Network
    secret: bytes
    agents: dict[str, CellQueryAgent] = field(default_factory=dict)
    catalogs: dict[str, Catalog] = field(default_factory=dict)
    layouts: dict[str, str] = field(default_factory=dict)
    # Sharded builds only: the contiguous per-region rosters (empty for
    # a monolithic build).
    shard_rosters: list[list[str]] = field(default_factory=list)

    @property
    def roster(self) -> list[str]:
        return list(self.agents)

    def ground_truth(self, spec: FedQuerySpec,
                     roster: list[str] | None = None) -> float:
        """The oracle answer: each cell's local query, summed in the
        clear (bypasses the network — for asserting engine results)."""
        names = roster if roster is not None else self.roster
        total = 0.0
        for name in names:
            result = self.catalogs[name].query(spec.local_query())
            total += float(result.scalar())
        return total

    def local_rows(self, spec: FedQuerySpec,
                   roster: list[str] | None = None) -> list[dict]:
        """Oracle record release: every cell's matching rows, in roster
        order (what a ``records-kanon`` release decrypts to)."""
        names = roster if roster is not None else self.roster
        rows: list[dict] = []
        for name in names:
            result = self.catalogs[name].query(spec.local_query())
            rows.extend(result.rows)
        return rows


def _cell_name(name_prefix: str, position: int, size: int) -> str:
    """``cell-0042``-style names; padding widens past 10k cells so the
    historical 4-digit format is preserved for every existing fleet."""
    pad = max(4, len(str(size - 1)))
    return f"{name_prefix}-{position:0{pad}d}"


def _build_cell(
    fleet: Fleet,
    position: int,
    name: str,
    directory: dict[str, AggregationNode],
    purposes: set[str],
    hours: int,
) -> None:
    """One store-backed cell: tiny flash, catalog, agent, key material."""
    world = fleet.world
    layout = LAYOUTS[position % len(LAYOUTS)]
    rng = world.rng(f"fleet.{name}")
    catalog = Catalog(
        NandFlash(TINY_FLASH, TINY_CAPACITY),
        zone_maps=layout != LAYOUT_SCAN,
    )
    energy = catalog.collection("energy")
    if layout == LAYOUT_INDEX:
        energy.create_ordered_index("hour")
    energy.insert_many(
        (
            f"r{hour}",
            {
                "hour": hour,
                "watts": round(
                    rng.uniform(50.0, 450.0)
                    + (300.0 if 18 <= hour <= 21 else 0.0),
                    1,
                ),
                "day": 1,
            },
        )
        for hour in range(hours)
    )
    catalog.collection("profile").insert(
        "p0",
        {
            "qi_age": rng.randint(18, 90),
            "qi_zip": rng.randint(10_000, 99_999),
            "disease": rng.choice(DISEASES),
        },
    )
    node = AggregationNode.preshared(name, fleet.secret)
    directory[name] = node
    fleet.agents[name] = CellQueryAgent(
        world, fleet.network, name, node, CatalogSource(catalog),
        purposes=set(purposes), directory=directory,
        fleet_secret=fleet.secret,
    )
    fleet.catalogs[name] = catalog
    fleet.layouts[name] = layout


def build_fleet(
    world: World,
    network: Network,
    size: int,
    *,
    purposes: set[str] | None = None,
    hours: int = 24,
    secret: bytes = b"fedquery-fleet-secret",
    name_prefix: str = "cell",
) -> Fleet:
    """Build ``size`` store-backed cells registered on ``network``.

    Layouts rotate ``index`` / ``zonemap`` / ``scan`` by position.
    Watts values and demographics are drawn from per-cell world
    streams, so the fleet is a pure function of the world seed.
    All cells share one fleet-wide directory — the monolithic build
    the flat coordinator wants; very large fleets should use
    :func:`build_fleet_sharded` instead.
    """
    fleet = Fleet(world=world, network=network, secret=secret)
    purposes = purposes if purposes is not None else {"load-forecast"}
    directory: dict[str, AggregationNode] = {}
    for position in range(size):
        _build_cell(
            fleet, position, _cell_name(name_prefix, position, size),
            directory, purposes, hours,
        )
    return fleet


def build_fleet_sharded(
    world: World,
    network: Network,
    size: int,
    *,
    shards: int,
    purposes: set[str] | None = None,
    hours: int = 24,
    secret: bytes = b"fedquery-fleet-secret",
    name_prefix: str = "cell",
) -> Fleet:
    """Build a large fleet as a fan-out of ``shards`` shard builds.

    Cells are identical to :func:`build_fleet`'s (same names, same
    seeded stores — the two builds are interchangeable cell for cell);
    what changes is the wiring: each contiguous shard gets its **own**
    key-material directory holding only that shard's nodes, instead of
    one monolithic fleet-wide dict every cell shares. That matches the
    coordinator tree's trust boundaries — a cell never holds the
    global roster; out-of-shard ring neighbors resolve through the
    preshared group secret at masking time — and keeps each build step
    O(shard). The per-region rosters land in ``Fleet.shard_rosters``.
    """
    if shards < 1:
        raise ValueError("a sharded build needs at least one shard")
    fleet = Fleet(world=world, network=network, secret=secret)
    purposes = purposes if purposes is not None else {"load-forecast"}
    count = min(shards, size)
    base, extra = divmod(size, count)
    position = 0
    for shard in range(count):
        shard_size = base + (1 if shard < extra else 0)
        directory: dict[str, AggregationNode] = {}
        roster = []
        for _ in range(shard_size):
            name = _cell_name(name_prefix, position, size)
            _build_cell(fleet, position, name, directory, purposes, hours)
            roster.append(name)
            position += 1
        fleet.shard_rosters.append(roster)
    return fleet
