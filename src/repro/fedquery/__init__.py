"""Federated query engine: global queries fanned out over the network.

The paper's functional contract item (6) — "participation in
distributed computations" — executed the way the architecture demands:
a declarative query spec ships from an **untrusted coordinator** to a
fleet of trusted cells over the simulated network; each cell runs a
local plan against its own embedded store, applies its opt-in policy
and the egress privacy gate, and returns only a transformed partial
(masked field element, sealed record batch). The coordinator combines
partials under straggler timeouts, retry re-asks and graceful
degradation. See ``docs/fedquery.md``.
"""

# Load the commons package first: its orchestrator imports back into
# fedquery.cell, so importing ``repro.fedquery`` before ``repro.commons``
# used to trip the cycle. Anchoring the order here makes this package
# importable first from scripts and tests.
from .. import commons as _commons  # noqa: F401  (import-order anchor)
from .cell import CatalogSource, CellQueryAgent, LocalSource, ValueSource
from .coordinator import (
    OUTCOME_ABANDONED,
    OUTCOME_COMPLETE,
    OUTCOME_PARTIAL,
    Coordinator,
    FedQueryResult,
    open_release,
)
from .fleet import Fleet, build_fleet, build_fleet_sharded
from .gate import net_recovery_mask, open_records, recipient_key, seal_records
from .hierarchy import (
    HierarchicalCoordinator,
    RegionalCoordinator,
    partition_shards,
)
from .journal import QueryJournal, journal_elements
from .standing import (
    MSG_SUB,
    StandingCoordinator,
    StandingSubscription,
    WindowClause,
    window_tag,
)
from .traffic import (
    TRAFFIC_PURPOSES,
    TrafficReport,
    run_traffic,
    seed_stream_data,
    tenant_specs,
)
from .spec import (
    TRANSFORM_DP,
    TRANSFORM_EXACT,
    TRANSFORM_KANON,
    TRANSFORMS,
    FedQuerySpec,
    plan_kind,
    predicate_from_wire,
    predicate_to_wire,
    wire_size,
)

__all__ = [
    "CatalogSource",
    "CellQueryAgent",
    "Coordinator",
    "FedQueryResult",
    "FedQuerySpec",
    "Fleet",
    "HierarchicalCoordinator",
    "LocalSource",
    "MSG_SUB",
    "OUTCOME_ABANDONED",
    "OUTCOME_COMPLETE",
    "OUTCOME_PARTIAL",
    "QueryJournal",
    "RegionalCoordinator",
    "StandingCoordinator",
    "StandingSubscription",
    "TRAFFIC_PURPOSES",
    "TrafficReport",
    "WindowClause",
    "TRANSFORMS",
    "TRANSFORM_DP",
    "TRANSFORM_EXACT",
    "TRANSFORM_KANON",
    "ValueSource",
    "build_fleet",
    "build_fleet_sharded",
    "journal_elements",
    "net_recovery_mask",
    "partition_shards",
    "open_records",
    "open_release",
    "plan_kind",
    "predicate_from_wire",
    "predicate_to_wire",
    "recipient_key",
    "run_traffic",
    "seal_records",
    "seed_stream_data",
    "tenant_specs",
    "window_tag",
    "wire_size",
]
