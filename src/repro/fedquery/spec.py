"""Declarative federated query specs and their wire format.

A :class:`FedQuerySpec` is the unit the coordinator ships to a fleet:
one local query (predicate tree + aggregate or projection, reusing the
:mod:`repro.store.query` types) plus the commons contract — recipient,
purpose, transformation, privacy parameters. Everything serializes to
plain JSON-able dicts so a plan can cross the simulated network the
same way sealed blobs and share offers do (``docs/fedquery.md`` is the
wire reference).

The transformation names are the canonical ones the orchestrator has
always used; :mod:`repro.commons.orchestrator` re-exports them from
here so existing imports keep working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, ProtocolError
from ..store.query import (
    MATCH_ALL,
    Aggregate,
    And,
    Between,
    Contains,
    Eq,
    HasKeyword,
    Ne,
    Not,
    Or,
    Predicate,
    Query,
    TruePredicate,
)

TRANSFORM_DP = "aggregate-dp"
TRANSFORM_KANON = "records-kanon"
TRANSFORM_EXACT = "aggregate-exact"
TRANSFORMS = (TRANSFORM_DP, TRANSFORM_KANON, TRANSFORM_EXACT)

#: Aggregates a cell may compute locally for the numeric transforms.
#: Only additive functions survive masked summation.
NUMERIC_AGGREGATES = ("sum", "count")


# -- predicate wire codec ----------------------------------------------------


def predicate_to_wire(predicate: Predicate) -> dict[str, Any]:
    """Serialize a predicate tree to a JSON-able dict."""
    if isinstance(predicate, TruePredicate):
        return {"op": "all"}
    if isinstance(predicate, Eq):
        return {"op": "eq", "field": predicate.field, "value": predicate.value}
    if isinstance(predicate, Ne):
        return {"op": "ne", "field": predicate.field, "value": predicate.value}
    if isinstance(predicate, Between):
        return {
            "op": "between", "field": predicate.field,
            "low": predicate.low, "high": predicate.high,
        }
    if isinstance(predicate, Contains):
        return {
            "op": "contains", "field": predicate.field,
            "needle": predicate.needle,
        }
    if isinstance(predicate, HasKeyword):
        return {
            "op": "keyword", "field": predicate.field,
            "terms": list(predicate.terms),
        }
    if isinstance(predicate, And):
        return {
            "op": "and",
            "children": [predicate_to_wire(child) for child in predicate.children],
        }
    if isinstance(predicate, Or):
        return {
            "op": "or",
            "children": [predicate_to_wire(child) for child in predicate.children],
        }
    if isinstance(predicate, Not):
        return {"op": "not", "child": predicate_to_wire(predicate.child)}
    raise ConfigurationError(
        f"predicate {type(predicate).__name__} has no wire form"
    )


def predicate_from_wire(data: dict[str, Any]) -> Predicate:
    """Rebuild a predicate tree from its wire form."""
    op = data.get("op")
    if op == "all":
        return MATCH_ALL
    if op == "eq":
        return Eq(data["field"], data["value"])
    if op == "ne":
        return Ne(data["field"], data["value"])
    if op == "between":
        return Between(data["field"], data.get("low"), data.get("high"))
    if op == "contains":
        return Contains(data["field"], data["needle"])
    if op == "keyword":
        return HasKeyword(data["field"], tuple(data["terms"]))
    if op == "and":
        return And(*[predicate_from_wire(child) for child in data["children"]])
    if op == "or":
        return Or(*[predicate_from_wire(child) for child in data["children"]])
    if op == "not":
        return Not(predicate_from_wire(data["child"]))
    raise ProtocolError(f"unknown predicate op {op!r} on the wire")


# -- the query spec ----------------------------------------------------------


@dataclass(frozen=True)
class FedQuerySpec:
    """One global query, as shipped to every participating cell.

    ``value_field``/``aggregate`` drive the numeric transforms (each
    cell computes ``aggregate(value_field)`` over its matching records
    and contributes that one number); ``project`` selects the fields a
    ``records-kanon`` release ships (``None`` releases whole records).
    ``min_cohort`` is the egress privacy floor: a cell refuses to
    contribute to a cohort smaller than this, and the coordinator
    abandons a combine that degrades below it.
    """

    recipient: str
    purpose: str
    transform: str
    collection: str
    where: Predicate = field(default_factory=lambda: MATCH_ALL)
    value_field: str = "value"
    aggregate: str = "sum"
    project: tuple[str, ...] | None = None
    epsilon: float = 1.0
    k: int = 5
    scale: int = 1
    min_cohort: int = 2

    def __post_init__(self) -> None:
        if self.transform not in TRANSFORMS:
            raise ConfigurationError(f"unknown transform {self.transform!r}")
        if self.aggregate not in NUMERIC_AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate {self.aggregate!r}; "
                f"known: {NUMERIC_AGGREGATES}"
            )
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.k < 1:
            raise ConfigurationError("k must be at least 1")
        if self.scale < 1:
            raise ConfigurationError("scale must be a positive integer")
        if self.min_cohort < 1:
            raise ConfigurationError("min_cohort must be at least 1")

    @property
    def numeric(self) -> bool:
        return self.transform in (TRANSFORM_DP, TRANSFORM_EXACT)

    def local_query(self) -> Query:
        """The query one cell runs against its own catalog."""
        if self.numeric:
            return Query(
                collection=self.collection,
                where=self.where,
                aggregates=[Aggregate(self.aggregate, self.value_field)],
            )
        return Query(
            collection=self.collection,
            where=self.where,
            project=list(self.project) if self.project is not None else None,
        )

    def to_wire(self) -> dict[str, Any]:
        return {
            "recipient": self.recipient,
            "purpose": self.purpose,
            "transform": self.transform,
            "collection": self.collection,
            "where": predicate_to_wire(self.where),
            "value_field": self.value_field,
            "aggregate": self.aggregate,
            "project": list(self.project) if self.project is not None else None,
            "epsilon": self.epsilon,
            "k": self.k,
            "scale": self.scale,
            "min_cohort": self.min_cohort,
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "FedQuerySpec":
        project = data.get("project")
        return cls(
            recipient=data["recipient"],
            purpose=data["purpose"],
            transform=data["transform"],
            collection=data["collection"],
            where=predicate_from_wire(data["where"]),
            value_field=data.get("value_field", "value"),
            aggregate=data.get("aggregate", "sum"),
            project=tuple(project) if project is not None else None,
            epsilon=data.get("epsilon", 1.0),
            k=data.get("k", 5),
            scale=data.get("scale", 1),
            min_cohort=data.get("min_cohort", 2),
        )


# -- message kinds -----------------------------------------------------------

MSG_PLAN = "fq.plan"
MSG_PARTIAL = "fq.partial"
MSG_RECOVER = "fq.recover"
MSG_MASK = "fq.mask"

# Hierarchical (coordinator-tree) message kinds: root <-> regional
# sub-coordinators. Everything in them is already transformed by the
# cells' egress gates — shard partial sums stay masked by the unpaired
# cross-shard boundary edges, so no tree level below the final combine
# learns anything.
MSG_SHARD_PLAN = "fq.shard_plan"
MSG_SHARD_PARTIAL = "fq.shard_partial"
MSG_SHARD_RECOVER = "fq.shard_recover"
MSG_SHARD_MASK = "fq.shard_mask"

STATUS_OK = "ok"
STATUS_DECLINED = "declined"
STATUS_FLOOR = "floor"
PARTIAL_STATUSES = (STATUS_OK, STATUS_DECLINED, STATUS_FLOOR)


def plan_message(tag: str, spec: FedQuerySpec, roster: list[str],
                 reply_to: str, *, round_tag: str | None = None,
                 neighbors: int | None = None,
                 positions: dict[str, int] | None = None,
                 global_size: int | None = None) -> dict[str, Any]:
    """The fan-out message: the plan plus the masking roster in order.

    ``round_tag`` keys the pairwise mask keystreams (defaults to the
    message tag); ``neighbors`` selects the k-regular masking graph
    (``None`` = complete). Both must be identical across the roster or
    masks will not cancel — which is why the coordinator ships them in
    the plan instead of letting cells choose.

    The hierarchical path ships a roster *window* instead of the full
    roster: ``roster`` then lists only the recipient cell and its ring
    neighbors, ``positions`` maps each of them to its global roster
    position (signs and the masking graph follow global positions),
    and ``global_size`` carries the full roster size — which the cell
    must use for its cohort floor and DP noise calibration, so privacy
    parameters stay global even though the wire message is O(k).
    """
    message = {
        "kind": MSG_PLAN, "tag": tag, "spec": spec.to_wire(),
        "roster": list(roster), "reply_to": reply_to,
        "round_tag": round_tag if round_tag is not None else tag,
        "neighbors": neighbors,
    }
    if positions is not None:
        message["positions"] = dict(positions)
    if global_size is not None:
        message["global_size"] = global_size
    return message


def partial_message(tag: str, sender: str, status: str, plan: str,
                    examined: int, payload: Any = None) -> dict[str, Any]:
    """A cell's reply: its transformed partial plus plan accounting."""
    if status not in PARTIAL_STATUSES:
        raise ConfigurationError(f"unknown partial status {status!r}")
    return {
        "kind": MSG_PARTIAL, "tag": tag, "from": sender, "status": status,
        "plan": plan, "examined": examined, "payload": payload,
    }


def recover_message(tag: str, round_index: int, missing: list[str],
                    reply_to: str) -> dict[str, Any]:
    return {
        "kind": MSG_RECOVER, "tag": tag, "round": round_index,
        "missing": list(missing), "reply_to": reply_to,
    }


def mask_message(tag: str, sender: str, round_index: int,
                 net_mask: int) -> dict[str, Any]:
    return {
        "kind": MSG_MASK, "tag": tag, "from": sender, "round": round_index,
        "net_mask": net_mask,
    }


# -- hierarchical wire messages ----------------------------------------------


def shard_plan_message(
    tag: str,
    spec: FedQuerySpec,
    shard: list[str],
    positions: dict[str, int],
    global_size: int,
    reply_to: str,
    *,
    region: int,
    round_tag: str,
    neighbors: int,
) -> dict[str, Any]:
    """Root -> regional sub-coordinator: run this shard of the query.

    ``shard`` lists the region's members in global roster order;
    ``positions`` additionally covers the boundary zone (the k/2
    positions on either side of the shard) so the region can build
    each member's roster window without ever holding the full roster.
    """
    return {
        "kind": MSG_SHARD_PLAN, "tag": tag, "spec": spec.to_wire(),
        "shard": list(shard), "positions": dict(positions),
        "global_size": global_size, "reply_to": reply_to,
        "region": region, "round_tag": round_tag, "neighbors": neighbors,
    }


def shard_partial_message(
    tag: str,
    sender: str,
    region: int,
    *,
    statuses: dict[str, str],
    masked_sum: int | None,
    count: int,
    sealed: list[tuple[str, str]],
    plan_mix: dict[str, int],
    examined: int,
    messages: int,
    bytes_: int,
    reasks: int,
) -> dict[str, Any]:
    """Regional sub-coordinator -> root: one shard's combined partial.

    ``masked_sum`` is the mod-PRIME sum of the shard's masked
    contributions — still masked by the unpaired cross-shard boundary
    edges, so the root learns nothing per shard. ``statuses`` reports
    each member's terminal collect status so the root can compile the
    global missing set and the result accounting.
    """
    return {
        "kind": MSG_SHARD_PARTIAL, "tag": tag, "from": sender,
        "region": region, "statuses": dict(statuses),
        "masked_sum": masked_sum, "count": count,
        "sealed": [list(item) for item in sealed],
        "plan_mix": dict(plan_mix), "examined": examined,
        "messages": messages, "bytes": bytes_, "reasks": reasks,
    }


def shard_recover_message(tag: str, missing: list[str],
                          reply_to: str) -> dict[str, Any]:
    """Root -> regions: cancel these cells' edges (global missing set)."""
    return {
        "kind": MSG_SHARD_RECOVER, "tag": tag, "missing": list(missing),
        "reply_to": reply_to,
    }


def shard_mask_message(tag: str, sender: str, region: int, *,
                       net_sum: int | None, reasks: int,
                       messages: int, bytes_: int,
                       failure: str | None = None) -> dict[str, Any]:
    """Regional sub-coordinator -> root: the shard's net recovery mask.

    ``net_sum`` is the mod-PRIME sum of the shard survivors' net
    recovery masks (``None`` with a ``failure`` reason when a survivor
    exhausted its re-ask budget — the root must abandon, exactly as
    the flat coordinator does when masks are unrecoverable).
    """
    return {
        "kind": MSG_SHARD_MASK, "tag": tag, "from": sender,
        "region": region, "net_sum": net_sum, "reasks": reasks,
        "messages": messages, "bytes": bytes_, "failure": failure,
    }


def wire_size(message: dict[str, Any]) -> int:
    """Serialized size of a message, for network billing."""
    return len(json.dumps(message, separators=(",", ":")).encode())


def plan_kind(plan: str) -> str:
    """Collapse a catalog plan string into the E14 plan-mix buckets.

    ``index:f``/``range:f``/``keyword:f`` all answered from an index;
    ``zonemap:f`` pruned blocks without one; ``scan`` read everything.
    ``memory`` marks a value-backed source with no store behind it.
    """
    head = plan.split(":", 1)[0]
    if head in ("index", "range", "keyword"):
        return "index"
    if head in ("zonemap", "scan", "memory"):
        return head
    return "scan"
