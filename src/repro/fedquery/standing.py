"""Standing federated queries: durable windowed subscriptions.

The paper's recipients do not ask one-shot questions — a utility wants
the peak-load curve every 15 minutes, an employment agency wants
eligibility counts every reporting period. This module compiles a
:class:`~repro.fedquery.spec.FedQuerySpec` plus a :class:`WindowClause`
(tumbling or sliding, sim-time aligned) into a **durable subscription**:

* Cell side — each subscribed cell runs an *incremental* window over
  the bounded-memory :mod:`repro.streams` operators, fed by its own
  store's scan path. At every window close it re-evaluates its opt-in
  and UCON policy, re-checks the cohort floor, and releases only an
  egress-gated *delta*: a masked field element under a **fresh
  per-window round tag** (so mask keystreams never repeat across
  windows, and compose with the keymgmt epoch ratchet), with a fresh
  DP draw per window for ``aggregate-dp``.

* Coordinator side — :class:`StandingCoordinator` opens one collect
  round per window, merges window partials with the full re-ask /
  demote / mask-recovery machinery of the one-shot engine, and
  journals subscription state so standing queries survive coordinator
  crashes: a restart rebuilds every subscription from the journal,
  resumes half-collected windows and opens the windows whose close it
  slept through (cells replay their cached window partials verbatim,
  or compute the equivalent one-shot windowed query — bit-for-bit the
  same value either way).

Bit-for-bit contract: a standing ``aggregate-exact`` subscription's
per-window total equals re-running the equivalent one-shot windowed
``FedQuerySpec`` on the same data. This holds because the incremental
path pushes matched rows through :class:`~repro.streams.operators.
WindowAggregate` in the store's matched order and accumulates
left-to-right from int 0 — exactly ``Aggregate.compute`` — and
requires only that rows are ingested in event-time order (the traffic
generator's contract; see ``docs/fedquery.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import CellOfflineError, ConfigurationError, ProtocolError
from ..store.query import And, Between, Predicate, TruePredicate
from ..streams import Sample, StreamPipeline, WindowAggregate
from . import gate
from .coordinator import Coordinator, FedQueryResult, _RunState
from .journal import REC_DONE
from .spec import (
    STATUS_DECLINED,
    STATUS_FLOOR,
    STATUS_OK,
    TRANSFORM_DP,
    TRANSFORM_KANON,
    FedQuerySpec,
    partial_message,
    plan_kind,
    wire_size,
)

if TYPE_CHECKING:
    from .cell import CellQueryAgent

MSG_SUB = "fq.sub"

#: Journal record type for a standing subscription's durable state.
REC_SUBSCRIBE = "subscribe"


# -- the window clause -------------------------------------------------------


@dataclass(frozen=True)
class WindowClause:
    """A bounded train of sim-time-aligned windows.

    Window ``i`` spans ``[origin_s + i*slide_s, origin_s + i*slide_s +
    width_s)`` in sim seconds; ``slide_s is None`` means tumbling.
    ``time_field`` names the event-time field of the spec's collection
    and ``field_seconds`` its unit (e.g. a field counting 15-minute
    slots has ``field_seconds=900``) — window boundaries must land on
    whole field units so the windowed predicate is exact.
    """

    width_s: int
    windows: int
    slide_s: int | None = None
    origin_s: int = 0
    time_field: str = "t"
    field_seconds: int = 1

    def __post_init__(self) -> None:
        if self.width_s < 1:
            raise ConfigurationError("window width must be >= 1 s")
        if self.windows < 1:
            raise ConfigurationError("a subscription needs >= 1 window")
        slide = self.width_s if self.slide_s is None else self.slide_s
        if not 1 <= slide <= self.width_s:
            raise ConfigurationError("slide must be in [1 s, width]")
        if self.field_seconds < 1:
            raise ConfigurationError("field_seconds must be >= 1")
        for label, value in (("width_s", self.width_s), ("slide", slide),
                             ("origin_s", self.origin_s)):
            if value % self.field_seconds:
                raise ConfigurationError(
                    f"{label} must be a whole number of field units "
                    f"({self.field_seconds} s each)"
                )

    @property
    def slide(self) -> int:
        return self.width_s if self.slide_s is None else self.slide_s

    def window_span_s(self, index: int) -> tuple[int, int]:
        """Window ``index``'s ``[start, end)`` in sim seconds."""
        start = self.origin_s + index * self.slide
        return start, start + self.width_s

    def window_bounds(self, index: int) -> tuple[int, int]:
        """Inclusive ``[low, high]`` bounds in ``time_field`` units."""
        start, end = self.window_span_s(index)
        return start // self.field_seconds, end // self.field_seconds - 1

    def windowed_spec(self, spec: FedQuerySpec, index: int) -> FedQuerySpec:
        """The one-shot spec equivalent to window ``index``."""
        low, high = self.window_bounds(index)
        bounded = Between(self.time_field, low, high)
        where: Predicate = bounded if isinstance(spec.where, TruePredicate) \
            else And(spec.where, bounded)
        return dataclasses.replace(spec, where=where)

    def to_wire(self) -> dict[str, Any]:
        return {
            "width_s": self.width_s, "windows": self.windows,
            "slide_s": self.slide_s, "origin_s": self.origin_s,
            "time_field": self.time_field,
            "field_seconds": self.field_seconds,
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> "WindowClause":
        return cls(
            width_s=data["width_s"], windows=data["windows"],
            slide_s=data.get("slide_s"), origin_s=data.get("origin_s", 0),
            time_field=data.get("time_field", "t"),
            field_seconds=data.get("field_seconds", 1),
        )


def sub_message(tag: str, spec: FedQuerySpec, window: WindowClause,
                roster: list[str], reply_to: str, *, round_base: str,
                neighbors: int | None = None) -> dict[str, Any]:
    """The subscription fan-out message.

    ``round_base`` keys the per-window mask keystreams (window ``i``
    masks under ``f"{round_base}|w{i}"``); it must be unique per
    subscription or two tenants sharing a recipient and purpose would
    reuse keystreams across different values.
    """
    return {
        "kind": MSG_SUB, "tag": tag, "spec": spec.to_wire(),
        "window": window.to_wire(), "roster": list(roster),
        "reply_to": reply_to, "round_base": round_base,
        "neighbors": neighbors,
    }


def window_tag(sub_tag: str, index: int) -> str:
    """The per-window collect tag (one one-shot-shaped run per window)."""
    return f"{sub_tag}|w{index}"


# -- the standing coordinator ------------------------------------------------


@dataclass
class StandingSubscription:
    """The caller-facing handle for one standing query.

    Like ``Coordinator._results``, this object is the reply channel: it
    survives a crash/restart cycle (the journal rebuilds the run state,
    results keep landing here).
    """

    tag: str
    spec: FedQuerySpec
    window: WindowClause
    roster: list[str]
    round_base: str
    neighbors: int | None
    started_at: int
    results: dict[int, FedQueryResult] = field(default_factory=dict)
    #: Per settled window: seconds between the window's end and the
    #: collect settling — 0 on the quiet path, the recovery latency for
    #: windows a crashed coordinator slept through.
    settle_lag_s: dict[int, int] = field(default_factory=dict)
    sub_messages: int = 0
    sub_bytes: int = 0

    @property
    def complete(self) -> bool:
        return len(self.results) == self.window.windows

    def outcomes(self) -> dict[str, int]:
        mix: dict[str, int] = {}
        for result in self.results.values():
            mix[result.outcome] = mix.get(result.outcome, 0) + 1
        return mix


class StandingCoordinator(Coordinator):
    """A coordinator that also serves durable windowed subscriptions.

    Each window of each subscription is one collect round with the full
    one-shot machinery (deadline, re-asks, demotion, mask recovery) —
    the standing layer adds the durable subscription record, the
    per-window scheduling, and crash recovery that re-opens every
    window the downtime swallowed.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._sub_sequence = 0
        self._subscriptions: dict[str, StandingSubscription] = {}
        # window tag -> (subscription tag, window index)
        self._window_of: dict[str, tuple[str, int]] = {}
        # Deliveries that beat their window's open event (defensive).
        self._early: dict[str, list[tuple[str, Any]]] = {}
        metrics = self.world.obs.metrics
        self._windows_metric = metrics.counter(
            "fedquery.windows", help="standing windows by terminal outcome",
            labelnames=("outcome",))
        self._subs_metric = metrics.counter(
            "fedquery.subscriptions", help="standing subscriptions opened")

    # -- public API ----------------------------------------------------------

    def subscribe(self, spec: FedQuerySpec, roster: list[str],
                  window: WindowClause, *,
                  round_base: str | None = None) -> StandingSubscription:
        """Open a durable subscription; windows settle as sim time runs.

        Returns immediately — drive the loop (:meth:`drive`, or the
        caller's own ``run_until``) to let windows close and settle.
        """
        if not roster:
            raise ConfigurationError("the roster needs at least one cell")
        if len(set(roster)) != len(roster):
            raise ConfigurationError("roster names must be unique")
        self._sub_sequence += 1
        tag = f"sub{self._sub_sequence}|{spec.recipient}|{spec.purpose}"
        sub = StandingSubscription(
            tag=tag, spec=spec, window=window, roster=list(roster),
            # Defaults to the tag: unique per subscription, so no two
            # tenants ever share a mask keystream.
            round_base=round_base if round_base is not None else tag,
            neighbors=self.neighbors, started_at=self.world.now,
        )
        self.journal.append({
            "type": REC_SUBSCRIBE, "tag": tag, "spec": spec.to_wire(),
            "window": window.to_wire(), "roster": list(roster),
            "round_base": sub.round_base, "neighbors": sub.neighbors,
            "at": sub.started_at, "sub_sequence": self._sub_sequence,
        })
        self._register_subscription(sub)
        self._subs_metric.inc()
        self._events.emit(
            "fedquery.subscribe", tag=tag, transform=spec.transform,
            roster=len(roster), windows=window.windows,
        )
        with self._tracer.span(
            "fedquery.subscribe", tag=tag, roster=len(roster),
            windows=window.windows,
        ):
            message = sub_message(
                tag, spec, window, sub.roster, self.address,
                round_base=sub.round_base, neighbors=sub.neighbors,
            )
            size = wire_size(message)
            for name in sub.roster:
                sub.sub_messages += 1
                sub.sub_bytes += size
                self._bytes_metric.inc(size)
                try:
                    self.network.send(
                        self.address, name, message, size_bytes=size)
                except CellOfflineError:
                    pass  # the window deadline's re-ask chain owns it
        self._arm_windows(sub)
        return sub

    def subscription(self, tag: str) -> StandingSubscription:
        sub = self._subscriptions.get(tag)
        if sub is None:
            raise ProtocolError(f"unknown subscription {tag!r}")
        return sub

    def drive(self, *, slack_s: int = 0) -> None:
        """Run the loop until every subscribed window had time to settle."""
        last_end = self.world.now
        for sub in self._subscriptions.values():
            last_end = max(
                last_end, sub.window.window_span_s(sub.window.windows - 1)[1]
            )
        self.world.loop.run_until(last_end + self._horizon_s() + slack_s)

    # -- window lifecycle -----------------------------------------------------

    def _register_subscription(self, sub: StandingSubscription) -> None:
        self._subscriptions[sub.tag] = sub
        for index in range(sub.window.windows):
            self._window_of[window_tag(sub.tag, index)] = (sub.tag, index)

    def _arm_windows(self, sub: StandingSubscription) -> None:
        for index in range(sub.window.windows):
            wtag = window_tag(sub.tag, index)
            if index in sub.results or wtag in self._active:
                continue
            _, end_s = sub.window.window_span_s(index)
            self.world.loop.schedule_in(
                max(0, end_s - self.world.now),
                lambda tag=sub.tag, i=index: self._open_window(tag, i),
                label=f"fq window open {wtag}",
            )

    def _open_window(self, sub_tag: str, index: int) -> None:
        if self._crashed:
            return
        sub = self._subscriptions.get(sub_tag)
        if sub is None or index in sub.results:
            return
        wtag = window_tag(sub_tag, index)
        if wtag in self._active:
            return  # re-armed twice across a restart
        wspec = sub.window.windowed_spec(sub.spec, index)
        state = _RunState(
            wtag, wspec, list(sub.roster),
            f"{sub.round_base}|w{index}", sub.neighbors,
        )
        state.started_at = self.world.now
        self._active[wtag] = state
        self.journal.append(self._start_record(state))
        if self._notify_phase(state, "fanout"):
            return  # crashed opening the window; restart re-opens it
        _, end_s = sub.window.window_span_s(index)
        if self.world.now > end_s:
            # Late open (the close slid past during coordinator
            # downtime): pull the window partials instead of waiting
            # for the collect deadline. Subscribed cells replay their
            # cached window delta verbatim; cells that never saw the
            # subscription compute the equivalent one-shot windowed
            # query — the same value bit-for-bit.
            for name in sub.roster:
                self._ship(state, name)
        for sender, payload in self._early.pop(wtag, []):
            super()._on_message(sender, payload)
        if state.phase != "collect":
            return  # an early partial already settled the window
        state.deadline_handle = self.world.loop.schedule_in(
            self.collect_timeout_s,
            lambda: self._collect_deadline(state),
            label=f"fq deadline {wtag}",
        )

    def _route_result(self, wtag: str) -> None:
        """Move a settled window's result onto its subscription handle."""
        entry = self._window_of.get(wtag)
        if entry is None:
            return
        sub_tag, index = entry
        sub = self._subscriptions.get(sub_tag)
        if sub is None or index in sub.results:
            return
        result = self._results.pop(wtag, None)
        if result is None:
            return
        sub.results[index] = result
        _, end_s = sub.window.window_span_s(index)
        sub.settle_lag_s[index] = max(0, result.completed_at - end_s)
        self._active.pop(wtag, None)
        self._windows_metric.labels(outcome=result.outcome).inc()
        self._events.emit(
            "fedquery.window", tag=sub_tag, window=index,
            outcome=result.outcome, lag_s=sub.settle_lag_s[index],
        )

    # -- overrides ------------------------------------------------------------

    def _on_message(self, sender: str, payload: Any) -> None:
        if not self._crashed and isinstance(payload, dict):
            wtag = payload.get("tag")
            entry = self._window_of.get(wtag) if wtag else None
            if entry is not None and wtag not in self._active:
                sub = self._subscriptions.get(entry[0])
                if sub is not None and entry[1] not in sub.results:
                    # Beat the window's open event: hold it back.
                    self._early.setdefault(wtag, []).append((sender, payload))
                    return
        super()._on_message(sender, payload)

    def _finalize(self, state: _RunState, **kwargs: Any) -> None:
        super()._finalize(state, **kwargs)
        if state.tag in self._results:
            self._route_result(state.tag)

    def crash(self) -> None:
        super().crash()
        self._early.clear()

    def _replay_journal(self) -> None:
        # Subscriptions first: window-tag results republished below
        # need their subscription to route onto. The in-memory handle
        # survives (it is the reply channel); only truly unknown tags
        # are rebuilt from their durable record.
        for records in self.journal.by_tag().values():
            record = next(
                (r for r in records if r["type"] == REC_SUBSCRIBE), None)
            if record is None:
                continue
            self._sub_sequence = max(
                self._sub_sequence, int(record.get("sub_sequence", 0)))
            if record["tag"] in self._subscriptions:
                continue
            self._register_subscription(StandingSubscription(
                tag=record["tag"],
                spec=FedQuerySpec.from_wire(record["spec"]),
                window=WindowClause.from_wire(record["window"]),
                roster=list(record["roster"]),
                round_base=record["round_base"],
                neighbors=record["neighbors"],
                started_at=int(record.get("at", 0)),
            ))
        super()._replay_journal()
        for wtag in [t for t in self._results if t in self._window_of]:
            self._route_result(wtag)
        for sub in self._subscriptions.values():
            self._arm_windows(sub)


# -- the cell-side runtime ---------------------------------------------------


def handle_subscription(agent: "CellQueryAgent",
                        message: dict[str, Any]) -> None:
    """Install a standing subscription on a cell (MSG_SUB handler)."""
    tag = message["tag"]
    standing = agent.__dict__.setdefault("_standing", {})
    if tag in standing:
        return  # duplicate delivery: the schedule is already armed
    standing[tag] = _CellSubscription(
        agent, tag,
        FedQuerySpec.from_wire(message["spec"]),
        WindowClause.from_wire(message["window"]),
        list(message["roster"]),
        message["round_base"],
        message.get("neighbors"),
        message["reply_to"],
    )


class _CellSubscription:
    """One cell's incremental runtime for one subscription.

    Holds a :class:`~repro.streams.StreamPipeline` with a single
    :class:`~repro.streams.WindowAggregate` plus an event-time
    watermark: every window close scans only the rows the watermark
    has not covered yet (through the store's normal plan selection —
    the ``Between`` bound rides zone maps and range indexes), pushes
    them through the window operator in matched order, and closes the
    window at its boundary. New rows must be ingested in event-time
    order for the matched order to equal the one-shot query's — the
    documented contract of the standing path.
    """

    def __init__(self, agent: "CellQueryAgent", tag: str,
                 spec: FedQuerySpec, window: WindowClause,
                 roster: list[str], round_base: str,
                 neighbors: int | None, reply_to: str) -> None:
        self.agent = agent
        self.tag = tag
        self.spec = spec
        self.window = window
        self.roster = roster
        self.round_base = round_base
        self.neighbors = neighbors
        self.reply_to = reply_to
        self._watermark_units = window.origin_s // window.field_seconds
        self._pipeline: StreamPipeline | None = None
        if spec.numeric:
            self._pipeline = StreamPipeline([WindowAggregate(
                window.width_s, slide=window.slide,
                aggregate=spec.aggregate, origin=window.origin_s,
            )])
        now = agent.world.now
        for index in range(window.windows):
            _, end_s = window.window_span_s(index)
            agent.world.loop.schedule_in(
                max(0, end_s - now),
                lambda i=index: self.close_window(i),
                label=f"fq window close {tag}|w{index} {agent.name}",
            )

    def close_window(self, index: int) -> None:
        agent = self.agent
        wtag = window_tag(self.tag, index)
        if wtag in agent._partials:
            return  # a coordinator plan re-ask already computed it
        wspec = self.window.windowed_spec(self.spec, index)
        if not agent._participates(wspec):
            # Re-evaluated at every close: an opt-out or a UCON
            # condition flipping mid-subscription declines from the
            # next window on.
            partial = partial_message(
                wtag, agent.name, STATUS_DECLINED, plan="none", examined=0)
        elif not gate.cohort_allows(wspec, len(self.roster)):
            partial = partial_message(
                wtag, agent.name, STATUS_FLOOR, plan="none", examined=0)
        else:
            partial = self._window_partial(wtag, wspec, index)
        agent._partials[wtag] = partial
        agent._partials[wtag + "|ctx"] = {
            "roster": list(self.roster),
            "round_tag": f"{self.round_base}|w{index}",
            "neighbors": self.neighbors,
            "positions": None, "global_size": len(self.roster),
            "contributed": partial["status"] == STATUS_OK,
        }
        agent._reply(self.reply_to, partial)

    def _window_partial(self, wtag: str, wspec: FedQuerySpec,
                        index: int) -> dict[str, Any]:
        agent = self.agent
        if not self.spec.numeric:
            # Record windows are not incremental: the sealed release
            # is the window's matching rows, bound to the window tag.
            rows, plan, examined = agent.source.run_local(wspec)
            rows = list(rows)
            if agent.fleet_secret is None:
                raise ProtocolError(
                    f"cell {agent.name!r} has no fleet secret to seal "
                    "a record release"
                )
            key = gate.recipient_key(self.spec.recipient, agent.fleet_secret)
            payload: dict[str, Any] = {
                "count": len(rows),
                "blob": gate.seal_records(key, rows, wtag, agent.name)
                if rows else None,
            }
            return partial_message(
                wtag, agent.name, STATUS_OK, plan=plan_kind(plan),
                examined=examined, payload=payload,
            )
        value, plan, examined = self._window_value(index)
        contribution = float(value)
        if self.spec.transform == TRANSFORM_DP:
            # Fresh draw per window (never re-drawn for the same
            # window: the partial cache makes re-asks replays).
            contribution += gate.dp_noise_share(
                agent._noise_rng, participants=len(self.roster),
                epsilon=self.spec.epsilon,
            )
        masked = gate.masked_contribution(
            agent.node, agent.directory, self.roster,
            f"{self.round_base}|w{index}",
            round(contribution * self.spec.scale), neighbors=self.neighbors,
        )
        return partial_message(
            wtag, agent.name, STATUS_OK, plan=plan_kind(plan),
            examined=examined, payload={"masked": masked},
        )

    def _window_value(self, index: int) -> tuple[float, str, int]:
        """Advance the watermark and close window ``index`` exactly."""
        window = self.window
        start_s, end_s = window.window_span_s(index)
        end_units = end_s // window.field_seconds
        plan, examined = "none", 0
        if end_units > self._watermark_units:
            bounded = Between(
                window.time_field, self._watermark_units, end_units - 1)
            where: Predicate = bounded \
                if isinstance(self.spec.where, TruePredicate) \
                else And(self.spec.where, bounded)
            fetch = dataclasses.replace(
                self.spec, transform=TRANSFORM_KANON, where=where,
                project=None,
            )
            rows, plan, examined = self.agent.source.run_local(fetch)
            pipeline = self._pipeline
            count_all = self.spec.aggregate == "count"
            for row in rows:
                timestamp = int(row[window.time_field]) * window.field_seconds
                if count_all:
                    pipeline.push(Sample(timestamp, 1.0))
                    continue
                value = row.get(self.spec.value_field)
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue  # Aggregate.compute's exact filter
                pipeline.push(Sample(timestamp, float(value)))
            self._watermark_units = end_units
        closed = self._pipeline.close_until(end_s)
        value = next(
            (sample.value for sample in closed
             if sample.timestamp == start_s),
            0.0,  # an empty window is a 0.0 sum/count, like the store
        )
        return value, plan, examined
