"""The cell side of the federated query engine.

A :class:`CellQueryAgent` is the endpoint a coordinator fans a plan out
to. On receiving a plan it decides participation from its *own* opt-in
state (and, optionally, a :class:`~repro.policy.ucon.UsagePolicy` —
the recipient must hold the ``aggregate`` right), runs the local query
through its own storage, pushes the result through the egress gate
(:mod:`repro.fedquery.gate`) and replies with the transformed partial.
Raw records never leave the cell unsealed; raw numeric values never
leave it unmasked.

Replies are **idempotent**: the partial for a tag is computed once and
cached, so a duplicated plan (fault plane) or a coordinator re-ask
(straggler recovery) replays the identical bytes — in particular the
DP noise share is drawn exactly once per query, so re-asks cannot be
averaged to cancel the noise.
"""

from __future__ import annotations

import random
from typing import Any, Protocol

from ..commons.aggregation import AggregationNode
from ..errors import CellOfflineError, ProtocolError
from ..infrastructure.network import Network
from ..policy.conditions import AccessContext
from ..policy.ucon import RIGHT_AGGREGATE, UsagePolicy
from ..sim.world import World
from ..store.catalog import Catalog
from . import gate
from .spec import (
    MSG_PLAN,
    MSG_RECOVER,
    STATUS_DECLINED,
    STATUS_FLOOR,
    STATUS_OK,
    TRANSFORM_DP,
    FedQuerySpec,
    mask_message,
    partial_message,
    plan_kind,
    wire_size,
)


class LocalSource(Protocol):
    """Where a cell's data lives: a catalog, or bare values for tests."""

    def run_local(self, spec: FedQuerySpec) -> tuple[Any, str, int]:
        """Execute the spec's local query.

        Returns ``(result, plan, examined)`` where ``result`` is a
        number for numeric transforms or a list of rows for record
        transforms, ``plan`` is the store's plan string and
        ``examined`` the records-examined count.
        """


class CatalogSource:
    """A cell whose data lives in its embedded store."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def run_local(self, spec: FedQuerySpec) -> tuple[Any, str, int]:
        result = self.catalog.query(spec.local_query())
        if spec.numeric:
            return result.scalar(), result.plan, result.records_examined
        return result.rows, result.plan, result.records_examined


class ValueSource:
    """A cell backed by an in-memory value and record (no store).

    The shape the legacy orchestrator's :class:`CommonsMember` carries;
    the adapter wraps members in these. ``plan`` reports ``memory``.
    """

    def __init__(self, value: float = 0.0,
                 record: dict[str, Any] | None = None) -> None:
        self.value = value
        self.record = record or {}

    def run_local(self, spec: FedQuerySpec) -> tuple[Any, str, int]:
        if spec.numeric:
            value = 1.0 if spec.aggregate == "count" else self.value
            return value, "memory", 1
        rows = [dict(self.record)] if self.record else []
        if spec.project is not None:
            rows = [{name: row.get(name) for name in spec.project}
                    for row in rows]
        return rows, "memory", 1


class CellQueryAgent:
    """One cell's federated-query endpoint."""

    def __init__(
        self,
        world: World,
        network: Network,
        name: str,
        node: AggregationNode,
        source: LocalSource,
        *,
        purposes: set[str] | None = None,
        policy: UsagePolicy | None = None,
        directory: dict[str, AggregationNode] | None = None,
        fleet_secret: bytes | None = None,
        noise_rng: random.Random | None = None,
        latency_ms: float = 20.0,
        bandwidth_bytes_per_s: float = 1e6,
    ) -> None:
        self.world = world
        self.network = network
        self.name = name
        self.node = node
        self.source = source
        self.purposes = set(purposes or ())
        self.policy = policy
        # Roster names resolve to key material here. Preshared fleets
        # need no directory at all (keys derive from the group secret),
        # so default to self-only and let callers share a fleet-wide one.
        self.directory = directory if directory is not None else {}
        self.directory.setdefault(name, node)
        self.fleet_secret = fleet_secret
        self._noise_rng = noise_rng if noise_rng is not None else world.rng(
            f"fedquery.noise.{name}"
        )
        # tag -> the exact partial message already sent (idempotency).
        self._partials: dict[str, dict[str, Any]] = {}
        network.register(
            name, self._on_message,
            latency_ms=latency_ms,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        )

    # -- participation ---------------------------------------------------------

    def opt_in(self, *purposes: str) -> None:
        self.purposes.update(purposes)

    def opt_out(self, *purposes: str) -> None:
        self.purposes.difference_update(purposes)

    def _participates(self, spec: FedQuerySpec) -> bool:
        if spec.purpose not in self.purposes:
            return False
        if self.policy is not None:
            context = AccessContext(
                subject=spec.recipient,
                timestamp=self.world.now,
                purpose=spec.purpose,
            )
            if not self.policy.evaluate(RIGHT_AGGREGATE, context).allowed:
                return False
        return True

    # -- message handling ------------------------------------------------------

    def _on_message(self, sender: str, payload: Any) -> None:
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if kind == MSG_PLAN:
            self._on_plan(payload)
        elif kind == MSG_RECOVER:
            self._on_recover(payload)
        elif kind == "fq.sub":
            # Standing subscription: installs the incremental window
            # runtime (lazy import keeps the commons anchor intact).
            from .standing import handle_subscription

            handle_subscription(self, payload)
        # Unknown kinds are dropped silently: the wire is untrusted.

    def _reply(self, destination: str, message: dict[str, Any]) -> None:
        try:
            self.network.send(
                self.name, destination, message, size_bytes=wire_size(message)
            )
        except CellOfflineError:
            pass  # the coordinator's re-ask machinery owns this failure

    def _on_plan(self, message: dict[str, Any]) -> None:
        tag = message["tag"]
        cached = self._partials.get(tag)
        if cached is not None:
            # Duplicate delivery or coordinator re-ask: replay verbatim.
            self._reply(message["reply_to"], cached)
            return
        spec = FedQuerySpec.from_wire(message["spec"])
        roster = list(message["roster"])
        round_tag = message.get("round_tag", tag)
        neighbors = message.get("neighbors")
        # Hierarchical plans ship a roster *window* plus global
        # positions; privacy parameters (cohort floor, DP calibration)
        # always follow the *global* roster size, so sharding the
        # fan-out can never weaken them.
        positions = message.get("positions")
        global_size = message.get("global_size", len(roster))

        if not self._participates(spec):
            partial = partial_message(
                tag, self.name, STATUS_DECLINED, plan="none", examined=0
            )
        elif not gate.cohort_allows(spec, global_size):
            partial = partial_message(
                tag, self.name, STATUS_FLOOR, plan="none", examined=0
            )
        else:
            partial = self._compute_partial(
                tag, spec, roster, round_tag, neighbors,
                positions=positions, global_size=global_size,
            )
        self._partials[tag] = partial
        # Remember the round context for a later recovery request.
        self._partials[tag + "|ctx"] = {
            "roster": roster, "round_tag": round_tag, "neighbors": neighbors,
            "positions": positions, "global_size": global_size,
            "contributed": partial["status"] == STATUS_OK,
        }
        self._reply(message["reply_to"], partial)

    def _compute_partial(
        self,
        tag: str,
        spec: FedQuerySpec,
        roster: list[str],
        round_tag: str,
        neighbors: int | None,
        *,
        positions: dict[str, int] | None = None,
        global_size: int | None = None,
    ) -> dict[str, Any]:
        local, plan, examined = self.source.run_local(spec)
        participants = global_size if global_size is not None else len(roster)
        if spec.numeric:
            contribution = float(local)
            if spec.transform == TRANSFORM_DP:
                # Calibrated to the GLOBAL participant count and drawn
                # exactly once per query (idempotent partial cache), so
                # the shares across all shards sum to one global
                # Laplace draw — never one draw per shard.
                contribution += gate.dp_noise_share(
                    self._noise_rng, participants=participants,
                    epsilon=spec.epsilon,
                )
            masked = gate.masked_contribution(
                self.node, self.directory, roster, round_tag,
                round(contribution * spec.scale), neighbors=neighbors,
                positions=positions,
                size=global_size if positions is not None else None,
            )
            payload: dict[str, Any] = {"masked": masked}
        else:
            rows = list(local)
            if self.fleet_secret is None:
                raise ProtocolError(
                    f"cell {self.name!r} has no fleet secret to seal "
                    "a record release"
                )
            key = gate.recipient_key(spec.recipient, self.fleet_secret)
            payload = {
                "count": len(rows),
                "blob": gate.seal_records(key, rows, tag, self.name)
                if rows else None,
            }
        return partial_message(
            tag, self.name, STATUS_OK, plan=plan_kind(plan),
            examined=examined, payload=payload,
        )

    def _on_recover(self, message: dict[str, Any]) -> None:
        tag = message["tag"]
        context = self._partials.get(tag + "|ctx")
        if context is None or not context["contributed"]:
            # Never contributed a value: nothing of ours is in the
            # total, so there is nothing to unmask. Stay silent; the
            # coordinator only queries contributors anyway.
            return
        positions = context.get("positions")
        net = gate.net_recovery_mask(
            self.node, self.directory, context["roster"],
            context["round_tag"], list(message["missing"]),
            neighbors=context["neighbors"],
            positions=positions,
            size=context.get("global_size") if positions is not None else None,
        )
        reply = mask_message(tag, self.name, message["round"], net)
        self._reply(message["reply_to"], reply)
