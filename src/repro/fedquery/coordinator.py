"""The untrusted coordinator: fans plans out, combines transformed partials.

The coordinator runs on the "highly powerful, highly available but
untrusted infrastructure" of the paper. Everything it touches is
already transformed by the cells' egress gates: masked field elements
(meaningless individually), net recovery masks (protect nothing), and
sealed record batches (ciphertext under a recipient key it does not
hold). Its job is purely operational — scheduling, collection,
straggler handling — and its view is recorded in
``FedQueryResult.coordinator_view`` so tests and benches can assert no
raw value ever appears there.

Liveness discipline (mirrors :class:`~repro.commons.async_aggregation.
AsyncMaskedAggregation`): a collect deadline, per-cell
:class:`~repro.faults.retry.RetryPolicy` re-asks, demotion when the
budget is exhausted, one mask-recovery round to cancel the demoted and
declined cells' edges, and three terminal outcomes — **complete**,
**partial** (demotions, but the survivors' answer is exact over the
survivors), **abandoned** (privacy floor or unrecoverable masks; no
value released). A run never hangs: :meth:`Coordinator.run` drives the
event loop to a bounded horizon and raises if the query somehow failed
to reach a terminal state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..commons import kernels
from ..commons.anonymize import GeneralizedRecord, k_anonymize
from ..crypto import shamir
from ..errors import CellOfflineError, ConfigurationError, ProtocolError
from ..faults.retry import RetryPolicy, schedule_retry
from ..infrastructure.network import Network
from ..sim.world import World
from . import gate
from .journal import (
    REC_DEMOTE,
    REC_DONE,
    REC_MASK,
    REC_PARTIAL,
    REC_RECOVER,
    REC_START,
    QueryJournal,
)
from .spec import (
    MSG_MASK,
    MSG_PARTIAL,
    STATUS_DECLINED,
    STATUS_FLOOR,
    STATUS_OK,
    FedQuerySpec,
    plan_message,
    recover_message,
    wire_size,
)

OUTCOME_COMPLETE = "complete"
OUTCOME_PARTIAL = "partial"
OUTCOME_ABANDONED = "abandoned"


@dataclass
class FedQueryResult:
    """Terminal state of one federated query, plus full accounting."""

    transform: str
    tag: str
    roster_size: int
    participants: int = 0  # cells whose partial made the combine
    declined: int = 0
    floored: int = 0  # refused: roster under the cell-side cohort floor
    demoted: list[str] = field(default_factory=list)
    value: float | None = None
    field_total: int | None = None  # the combined field element (numeric)
    sealed_records: list[tuple[str, str]] | None = None  # (sender, blob hex)
    plan_mix: dict[str, int] = field(default_factory=dict)
    records_examined: int = 0
    messages: int = 0
    bytes: int = 0
    reasks: int = 0
    recovery_rounds: int = 0
    outcome: str = OUTCOME_ABANDONED
    failure: str | None = None
    completed_at: int = 0
    # Every payload the untrusted side saw, verbatim.
    coordinator_view: list[Any] = field(default_factory=list)
    # Hierarchical runs only: tree shape and the ROOT's own share of
    # the wire traffic (``messages``/``bytes`` stay the whole-tree
    # totals). A flat run leaves these at zero.
    regions: int = 0
    root_messages: int = 0
    root_bytes: int = 0
    # Wall-clock seconds spent in the root's OWN code (fan-out,
    # handlers, deadlines) — excludes region and cell work, so it is
    # the honest numerator for the per-cell sub-linearity claim.
    root_wall_seconds: float = 0.0

    @property
    def partial(self) -> bool:
        return self.outcome == OUTCOME_PARTIAL

    @property
    def abandoned(self) -> bool:
        return self.outcome == OUTCOME_ABANDONED


_PENDING = "pending"
_DEMOTED = "demoted"


class _RunState:
    """Mutable per-query bookkeeping (one instance per run)."""

    def __init__(self, tag: str, spec: FedQuerySpec, roster: list[str],
                 round_tag: str, neighbors: int | None) -> None:
        self.tag = tag
        self.spec = spec
        self.roster = roster
        self.round_tag = round_tag
        self.neighbors = neighbors
        self.status: dict[str, str] = {name: _PENDING for name in roster}
        self.payloads: dict[str, Any] = {}
        self.plans: dict[str, str] = {}
        self.examined = 0
        self.attempts: dict[str, int] = {name: 1 for name in roster}
        self.reasks = 0
        self.messages = 0
        self.bytes = 0
        self.view: list[Any] = []
        self.phase = "collect"
        self.masks: dict[str, int] = {}
        self.mask_attempts: dict[str, int] = {}
        self.missing: list[str] = []
        self.recovery_rounds = 0
        self.started_at = 0
        self.deadline_handle = None
        self.result: FedQueryResult | None = None
        # Phases already reported to the fault plane (crash triggers
        # are per-query, once per phase).
        self.phases_seen: set[str] = set()

    def resolved(self, name: str) -> bool:
        return self.status[name] != _PENDING

    def collected(self) -> bool:
        return all(status != _PENDING for status in self.status.values())

    def ok_cells(self) -> list[str]:
        return [name for name in self.roster if self.status[name] == STATUS_OK]


class Coordinator:
    """Runs federated queries over a roster of cell endpoints."""

    def __init__(
        self,
        world: World,
        network: Network,
        *,
        address: str = "fq-coordinator",
        retry_policy: RetryPolicy | None = None,
        collect_timeout_s: int = 30,
        recovery_timeout_s: int = 30,
        neighbors: int | None = None,
        latency_ms: float = 5.0,
        bandwidth_bytes_per_s: float = 1e9,
        journal: QueryJournal | None = None,
        horizon_slack_s: int = 0,
    ) -> None:
        if collect_timeout_s < 1 or recovery_timeout_s < 1:
            raise ConfigurationError("timeouts must be at least 1 s")
        self.world = world
        self.network = network
        self.address = address
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=2.0, multiplier=2.0,
            max_delay_s=30.0, jitter=0.1,
        )
        self.collect_timeout_s = collect_timeout_s
        self.recovery_timeout_s = recovery_timeout_s
        self.neighbors = neighbors
        # The write-ahead journal survives a crash (the coordinator's
        # one piece of durable state); extra horizon slack lets tests
        # that crash/restart by hand still finish inside run()'s bound.
        self.journal = journal if journal is not None else QueryJournal()
        self.horizon_slack_s = horizon_slack_s
        self._crashed = False
        self._retry_rng = world.rng(f"fedquery.reask.{address}")
        self._sequence = 0
        self._active: dict[str, _RunState] = {}
        # tag -> terminal result: the reply channel to the querier. It
        # outlives _RunState rebuilds, so run() reads results here.
        self._results: dict[str, FedQueryResult] = {}
        network.register(
            address, self._on_message,
            latency_ms=latency_ms,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        )
        if network.fault_injector is not None:
            network.fault_injector.register_crashable(self)
        metrics = world.obs.metrics
        self._events = world.obs.events
        self._tracer = world.obs.tracer
        self._plans_metric = metrics.counter(
            "fedquery.plans", help="query plans shipped to cells")
        self._bytes_metric = metrics.counter(
            "fedquery.bytes", help="coordinator wire bytes, both directions")
        self._reasks_metric = metrics.counter(
            "fedquery.reasks", help="straggler re-asks sent")
        self._demotions_metric = metrics.counter(
            "fedquery.demotions", help="cells demoted after the retry budget")
        self._partials_metric = metrics.counter(
            "fedquery.partials", help="cell partials received",
            labelnames=("status",))
        self._queries_metric = metrics.counter(
            "fedquery.queries", help="federated queries by terminal outcome",
            labelnames=("outcome",))

    # -- public API ------------------------------------------------------------

    def run(self, spec: FedQuerySpec, roster: list[str], *,
            round_tag: str | None = None) -> FedQueryResult:
        """Execute ``spec`` across ``roster`` and drive the loop to done.

        ``roster`` is the full masking roster in a fixed order every
        cell will see; offline or unresponsive members are handled by
        the re-ask/demote/recover machinery, not by the caller.
        """
        if not roster:
            raise ConfigurationError("the roster needs at least one cell")
        if len(set(roster)) != len(roster):
            raise ConfigurationError("roster names must be unique")
        self._sequence += 1
        tag = f"fq{self._sequence}|{spec.recipient}|{spec.purpose}"
        state = _RunState(
            tag, spec, list(roster),
            round_tag if round_tag is not None
            else f"{spec.recipient}|{spec.purpose}",
            self.neighbors,
        )
        state.started_at = self.world.now
        self._active[tag] = state
        self.journal.append(self._start_record(state))

        with self._tracer.span(
            "fedquery.fanout", tag=tag, transform=spec.transform,
            roster=len(roster),
        ):
            for name in roster:
                self._ship(state, name)
        self._notify_phase(state, "fanout")
        self._events.emit(
            "fedquery.start", tag=tag, transform=spec.transform,
            roster=len(roster),
        )
        state.deadline_handle = self.world.loop.schedule_in(
            self.collect_timeout_s, lambda: self._collect_deadline(state),
            label=f"fq deadline {tag}",
        )
        self.world.loop.run_until(self.world.now + self._horizon_s())
        # Read the reply channel, not the state object: a crash and
        # restart mid-query rebuilds _RunState from the journal, so the
        # instance created above may not be the one that settled.
        result = self._results.pop(tag, None)
        if result is None:
            raise ProtocolError(f"federated query {tag!r} did not settle")
        self._active.pop(tag, None)
        return result

    def _horizon_s(self) -> int:
        """A safe upper bound on one query's wall time, in sim seconds."""
        backoff = sum(self.retry_policy.worst_case_delays())
        # Two phased deadlines (collect + recovery), each followed by a
        # full retry ladder; 2x covers jitter, message latency and the
        # fault plane's injected delays with a wide margin.
        return int(
            2 * (self.collect_timeout_s + self.recovery_timeout_s
                 + 2 * backoff)
        ) + self._crash_slack_s() + 120

    def _crash_slack_s(self) -> int:
        """Extra horizon covering planned crash downtime plus a fresh
        collect/recovery episode per restart (the ladder restarts with
        the process)."""
        slack = self.horizon_slack_s
        injector = self.network.fault_injector
        if injector is not None and injector.plan.crashes:
            episode = int(
                self.collect_timeout_s + self.recovery_timeout_s
                + 2 * sum(self.retry_policy.worst_case_delays())
            )
            for spec in injector.plan.crashes:
                slack += (spec.restart_after_s or 0) + episode
        return slack

    # -- crash and restart -----------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _notify_phase(self, state: _RunState, phase: str) -> bool:
        """Report a phase transition to the fault plane, once per query.

        Returns True when the report triggered a crash of *this*
        endpoint — the caller must drop its stale state and return.
        """
        if phase in state.phases_seen:
            return False
        state.phases_seen.add(phase)
        injector = self.network.fault_injector
        if injector is None:
            return False
        return injector.phase_reached(self.address, phase)

    def crash(self) -> None:
        """Kill the process: lose every in-memory run state, go dark.

        The journal (durable by contract) and the reply channel keep
        their contents; everything else — active states, deadlines,
        retry ladders — dies. In-flight deliveries already scheduled by
        the network die at the handler's crash guard.
        """
        if self._crashed:
            return
        self._crashed = True
        for state in self._active.values():
            if state.deadline_handle is not None:
                state.deadline_handle.cancel()
            state.phase = "crashed"  # neutralizes stale loop callbacks
        self._active.clear()
        if self.network.is_online(self.address):
            self.network.set_online(self.address, False)
        self._events.emit(
            "crash.down", address=self.address, journal=len(self.journal),
        )

    def restart(self) -> None:
        """Come back: rebuild every unfinished run from the journal and
        resume it (re-ship to unresolved cells, re-arm deadlines). Cells
        replay their cached partials bit-for-bit, so resumed re-asks are
        idempotent. No-op unless crashed."""
        if not self._crashed:
            return
        self._crashed = False
        if not self.network.is_online(self.address):
            self.network.set_online(self.address, True)
        self._replay_journal()

    def _replay_journal(self) -> None:
        for tag, records in self.journal.by_tag().items():
            done = next(
                (r for r in records if r["type"] == REC_DONE), None,
            )
            if done is not None:
                # Finished before (or during) the crash: republish the
                # journaled result; nothing to resume.
                if tag not in self._results:
                    self._results[tag] = self._result_from_wire(
                        done["result"]
                    )
                continue
            if records[0]["type"] != REC_START:
                continue  # mid-flight fragment of a foreign tag
            state = self._restore_state(records[0], records)
            self._active[tag] = state
            self._events.emit(
                "crash.recovered", address=self.address, tag=tag,
                records=len(records), phase=state.phase,
            )
            self._resume(state)

    def _start_record(self, state: _RunState) -> dict[str, Any]:
        return {
            "type": REC_START, "tag": state.tag,
            "spec": state.spec.to_wire(), "roster": list(state.roster),
            "round_tag": state.round_tag, "neighbors": state.neighbors,
            "sequence": self._sequence, "at": state.started_at,
        }

    def _restore_state(self, start: dict[str, Any],
                       records: list[dict[str, Any]]) -> _RunState:
        state = _RunState(
            start["tag"], FedQuerySpec.from_wire(start["spec"]),
            list(start["roster"]), start["round_tag"], start["neighbors"],
        )
        state.started_at = int(start.get("at", 0))
        self._sequence = max(self._sequence, int(start.get("sequence", 0)))
        for record in records[1:]:
            kind = record["type"]
            if kind == REC_PARTIAL:
                name = record["from"]
                state.status[name] = record["status"]
                state.messages += 1
                state.bytes += record.get("size", 0)
                if record["status"] == STATUS_OK:
                    state.payloads[name] = record["payload"]
                    state.plans[name] = record["plan"]
                    state.examined += record.get("examined", 0)
                    state.view.append(record["payload"])
            elif kind == REC_DEMOTE:
                state.status[record["cell"]] = _DEMOTED
            elif kind == REC_RECOVER:
                state.phase = "recover"
                state.recovery_rounds = 1
                state.missing = list(record["missing"])
            elif kind == REC_MASK:
                state.masks[record["from"]] = record["net_mask"]
                state.messages += 1
                state.bytes += record.get("size", 0)
                state.view.append(record["net_mask"])
        return state

    def _recover_targets(self, state: _RunState) -> list[str]:
        """The survivors whose net masks recovery waits on. The tree's
        regions narrow this to ring-relevant survivors."""
        return state.ok_cells()

    def _resume(self, state: _RunState) -> None:
        if state.phase == "collect":
            if state.collected():
                self._settle(state)
                return
            for name in state.roster:
                if not state.resolved(name):
                    state.attempts[name] = 1  # the ladder restarts too
                    self._ship(state, name)
            state.deadline_handle = self.world.loop.schedule_in(
                self.collect_timeout_s,
                lambda: self._collect_deadline(state),
                label=f"fq deadline {state.tag} (resumed)",
            )
            return
        self._resume_recovery(state)

    def _resume_recovery(self, state: _RunState) -> None:
        targets = self._recover_targets(state)
        if len(state.masks) >= len(targets):
            self._masks_complete(state)
            return
        for name in targets:
            if name not in state.masks:
                state.mask_attempts[name] = 1
                self._ship_recover(
                    state, name,
                    recover_message(
                        state.tag, state.recovery_rounds or 1,
                        state.missing, self.address,
                    ),
                )
        self.world.loop.schedule_in(
            self.recovery_timeout_s,
            lambda: self._recovery_deadline(state),
            label=f"fq recover deadline {state.tag} (resumed)",
        )

    def _result_from_wire(self, wire: dict[str, Any]) -> FedQueryResult:
        sealed = wire.get("sealed_records")
        if sealed is not None:
            wire = dict(wire, sealed_records=[
                (sender, blob) for sender, blob in sealed
            ])
        return FedQueryResult(**wire)

    # -- fan-out and re-asks ---------------------------------------------------

    def _plan_for(self, state: _RunState, name: str) -> dict[str, Any]:
        """The plan message for one cell. The tree's regions override
        this to ship an O(k) roster *window* instead of the full
        roster."""
        return plan_message(
            state.tag, state.spec, state.roster, self.address,
            round_tag=state.round_tag, neighbors=state.neighbors,
        )

    def _ship(self, state: _RunState, name: str) -> None:
        message = self._plan_for(state, name)
        size = wire_size(message)
        self._plans_metric.inc()
        self._bytes_metric.inc(size)
        state.messages += 1
        state.bytes += size
        try:
            self.network.send(self.address, name, message, size_bytes=size)
        except CellOfflineError:
            pass  # stays pending; the deadline's re-ask chain owns it

    def _collect_deadline(self, state: _RunState) -> None:
        if state.phase != "collect":
            return
        for name in state.roster:
            if not state.resolved(name):
                self._reask(state, name)

    def _reask(self, state: _RunState, name: str) -> None:
        if state.phase != "collect" or state.resolved(name):
            return
        handle = schedule_retry(
            self.world, self.retry_policy, state.attempts[name],
            lambda: self._reask(state, name),
            rng=self._retry_rng, label=f"fq reask {name}",
        )
        if handle is None:
            self._demote(state, name)
            return
        state.attempts[name] += 1
        state.reasks += 1
        self._reasks_metric.inc()
        self._ship(state, name)

    def _demote(self, state: _RunState, name: str) -> None:
        self.journal.append({
            "type": REC_DEMOTE, "tag": state.tag, "cell": name,
        })
        if state.phase != "collect":
            return  # the journal hook crashed us mid-append
        state.status[name] = _DEMOTED
        self._demotions_metric.inc()
        self._events.emit("fedquery.demote", tag=state.tag, cell=name,
                          attempts=state.attempts[name])
        if state.collected():
            self._settle(state)

    # -- inbound ---------------------------------------------------------------

    def _on_message(self, sender: str, payload: Any) -> None:
        if self._crashed:
            return  # a delivery already in flight when the process died
        if not isinstance(payload, dict):
            return
        state = self._active.get(payload.get("tag"))
        if state is None:
            return
        kind = payload.get("kind")
        if kind == MSG_PARTIAL:
            self._on_partial(state, payload)
        elif kind == MSG_MASK:
            self._on_mask(state, payload)

    def _on_partial(self, state: _RunState, message: dict[str, Any]) -> None:
        name = message["from"]
        if state.phase != "collect" or name not in state.status \
                or state.resolved(name):
            return  # duplicate, late (post-demotion), or off-roster
        if self._notify_phase(state, "collect"):
            return  # crashed mid-collect: this delivery dies unrecorded
        size = wire_size(message)
        status = message["status"]
        self.journal.append({
            "type": REC_PARTIAL, "tag": state.tag, "from": name,
            "status": status,
            "payload": message["payload"] if status == STATUS_OK else None,
            "plan": message.get("plan"),
            "examined": message.get("examined", 0), "size": size,
        })
        if state.phase != "collect":
            return  # the journal hook crashed us mid-append
        state.messages += 1
        state.bytes += size
        self._bytes_metric.inc(size)
        self._partials_metric.labels(status=status).inc()
        state.status[name] = status
        if status == STATUS_OK:
            state.payloads[name] = message["payload"]
            state.plans[name] = message["plan"]
            state.examined += message["examined"]
            state.view.append(message["payload"])
        if state.collected():
            self._settle(state)

    def _on_mask(self, state: _RunState, message: dict[str, Any]) -> None:
        name = message["from"]
        if state.phase != "recover" or name in state.masks \
                or name not in state.status:
            return
        size = wire_size(message)
        self.journal.append({
            "type": REC_MASK, "tag": state.tag, "from": name,
            "net_mask": message["net_mask"], "size": size,
        })
        if state.phase != "recover":
            return  # the journal hook crashed us mid-append
        state.messages += 1
        state.bytes += size
        self._bytes_metric.inc(size)
        state.masks[name] = message["net_mask"]
        state.view.append(message["net_mask"])
        if len(state.masks) == len(state.ok_cells()):
            self._masks_complete(state)

    def _masks_complete(self, state: _RunState) -> None:
        """All survivors' net masks are in. Hook for the tree's regions."""
        self._finish_numeric(state)

    # -- settle: combine, recover, finish --------------------------------------

    def _settle(self, state: _RunState) -> None:
        if state.phase not in ("collect",):
            return
        if state.deadline_handle is not None:
            state.deadline_handle.cancel()
        ok = state.ok_cells()
        if not ok:
            self._finalize(state, failure="no-participants")
            return
        if len(ok) < state.spec.min_cohort:
            self._finalize(state, failure="privacy-floor")
            return
        if state.spec.numeric:
            state.missing = [
                name for name in state.roster if state.status[name] != STATUS_OK
            ]
            if not state.missing:
                state.phase = "recover"  # vacuous: nothing to recover
                if self._notify_phase(state, "recover"):
                    return  # restart re-settles from the journal
                self._finish_numeric(state)
                return
            self._start_recovery(state)
        else:
            self._finish_kanon(state)

    def _start_recovery(self, state: _RunState) -> None:
        state.phase = "recover"
        state.recovery_rounds = 1
        self.journal.append({
            "type": REC_RECOVER, "tag": state.tag,
            "missing": list(state.missing),
        })
        if self._notify_phase(state, "recover") \
                or state.phase != "recover":
            return  # crashed entering recovery; restart resumes it
        message_for = {}
        for name in state.ok_cells():
            message_for[name] = recover_message(
                state.tag, 1, state.missing, self.address
            )
            state.mask_attempts[name] = 1
        self._events.emit(
            "fedquery.recover", tag=state.tag, missing=len(state.missing),
            survivors=len(message_for),
        )
        for name, message in message_for.items():
            self._ship_recover(state, name, message)
        self.world.loop.schedule_in(
            self.recovery_timeout_s,
            lambda: self._recovery_deadline(state),
            label=f"fq recover deadline {state.tag}",
        )

    def _ship_recover(self, state: _RunState, name: str,
                      message: dict[str, Any]) -> None:
        size = wire_size(message)
        state.messages += 1
        state.bytes += size
        self._bytes_metric.inc(size)
        try:
            self.network.send(self.address, name, message, size_bytes=size)
        except CellOfflineError:
            pass

    def _recovery_deadline(self, state: _RunState) -> None:
        if state.phase != "recover" or state.result is not None:
            return
        for name in state.ok_cells():
            if name not in state.masks:
                self._reask_mask(state, name)

    def _reask_mask(self, state: _RunState, name: str) -> None:
        if state.phase != "recover" or state.result is not None \
                or name in state.masks:
            return
        handle = schedule_retry(
            self.world, self.retry_policy, state.mask_attempts[name],
            lambda: self._reask_mask(state, name),
            rng=self._retry_rng, label=f"fq mask reask {name}",
        )
        if handle is None:
            self._mask_recovery_failed(state)
            return
        state.mask_attempts[name] += 1
        state.reasks += 1
        self._reasks_metric.inc()
        self._ship_recover(
            state, name,
            recover_message(state.tag, 1, state.missing, self.address),
        )

    def _mask_recovery_failed(self, state: _RunState) -> None:
        """A survivor's re-ask budget ran out mid-recovery.

        A cell whose value is already in the total cannot reveal its
        masks: the edges it shares with missing cells can never be
        cancelled. Nothing releasable remains. Hook for the tree's
        regions (which report the failure upward instead).
        """
        self._finalize(state, failure="mask-recovery")

    def _finish_numeric(self, state: _RunState) -> None:
        if state.result is not None:
            return
        total = kernels.accumulate(
            [state.payloads[name]["masked"] for name in state.ok_cells()]
            + list(state.masks.values())
        )
        value = shamir.decode_signed(total) / state.spec.scale
        self._finalize(state, field_total=total, value=value)

    def _finish_kanon(self, state: _RunState) -> None:
        released = sum(
            state.payloads[name]["count"] for name in state.ok_cells()
        )
        if released < max(state.spec.k, state.spec.min_cohort):
            self._finalize(state, failure="privacy-floor")
            return
        sealed = [
            (name, state.payloads[name]["blob"])
            for name in state.ok_cells()
            if state.payloads[name]["blob"] is not None
        ]
        self._finalize(state, sealed_records=sealed)

    def _finalize(
        self,
        state: _RunState,
        *,
        failure: str | None = None,
        field_total: int | None = None,
        value: float | None = None,
        sealed_records: list[tuple[str, str]] | None = None,
    ) -> None:
        if state.result is not None:
            return
        state.phase = "done"
        counts = {STATUS_DECLINED: 0, STATUS_FLOOR: 0, _DEMOTED: 0}
        demoted = []
        for name in state.roster:
            status = state.status[name]
            if status in counts:
                counts[status] += 1
            if status == _DEMOTED:
                demoted.append(name)
        plan_mix: dict[str, int] = {}
        for plan in state.plans.values():
            plan_mix[plan] = plan_mix.get(plan, 0) + 1
        if failure is not None:
            outcome = OUTCOME_ABANDONED
        elif demoted:
            outcome = OUTCOME_PARTIAL
        else:
            outcome = OUTCOME_COMPLETE
        with self._tracer.span(
            "fedquery.collect", tag=state.tag, transform=state.spec.transform,
        ) as span:
            span.annotate(
                outcome=outcome, participants=len(state.ok_cells()),
                demoted=len(demoted), reasks=state.reasks,
                waited_s=self.world.now - state.started_at,
            )
        self._queries_metric.labels(outcome=outcome).inc()
        self._events.emit(
            "fedquery.settle", tag=state.tag, outcome=outcome,
            participants=len(state.ok_cells()), demoted=len(demoted),
            failure=failure,
        )
        result = FedQueryResult(
            transform=state.spec.transform,
            tag=state.tag,
            roster_size=len(state.roster),
            participants=len(state.ok_cells()),
            declined=counts[STATUS_DECLINED],
            floored=counts[STATUS_FLOOR],
            demoted=demoted,
            value=value,
            field_total=field_total,
            sealed_records=sealed_records,
            plan_mix=plan_mix,
            records_examined=state.examined,
            messages=state.messages,
            bytes=state.bytes,
            reasks=state.reasks,
            recovery_rounds=state.recovery_rounds,
            outcome=outcome,
            failure=failure,
            completed_at=self.world.now,
            coordinator_view=state.view,
        )
        # Journal the terminal record *before* publishing: a crash
        # between the two republishes from the journal on restart.
        self.journal.append({
            "type": REC_DONE, "tag": state.tag, "outcome": outcome,
            "result": dataclasses.asdict(result),
        })
        if self._crashed:
            return  # died after the durable record; restart republishes
        state.result = result
        self._results[state.tag] = result


def open_release(
    result: FedQueryResult,
    key: bytes,
    k: int,
    *,
    quasi_identifiers: list[str] | None = None,
    sensitive_attributes: list[str] | None = None,
) -> list[GeneralizedRecord]:
    """Recipient-side: open a ``records-kanon`` release and anonymize.

    The *recipient* holds the fleet's recipient key (the coordinator
    never does); it decrypts each cell's sealed batch, concatenates the
    rows in roster order, and runs the same Mondrian ``k_anonymize``
    the legacy orchestrator ran — by default auto-detecting the
    ``qi_``-prefixed quasi-identifiers exactly as the orchestrator did.
    """
    if result.sealed_records is None:
        raise ProtocolError("result carries no sealed records")
    rows: list[dict[str, Any]] = []
    for _, blob_hex in result.sealed_records:
        rows.extend(gate.open_records(key, blob_hex))
    if not rows:
        raise ProtocolError("release is empty")
    if quasi_identifiers is None:
        quasi_identifiers = sorted(
            name for name in rows[0] if name.startswith("qi_")
        )
    if sensitive_attributes is None:
        sensitive_attributes = sorted(
            name for name in rows[0] if not name.startswith("qi_")
        )
    return k_anonymize(rows, quasi_identifiers, sensitive_attributes, k)
