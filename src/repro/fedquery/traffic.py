"""Multi-tenant standing-query traffic over one cell fleet.

The load shape the paper implies but the one-shot engine cannot serve:
*hundreds* of recipients — utilities, municipalities, employment
agencies — each holding a durable subscription against the same fleet,
with mixed purposes and transforms. This module seeds the two workload
domains (an energy stream and administrative employment records from
:mod:`repro.workloads.records`), schedules their ingestion so rows
arrive in event-time order *before* each window closes (the standing
path's monotone-append contract), builds a deterministic tenant mix,
and rolls the whole thing up into a :class:`TrafficReport` the
standing bench tracks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..sim.world import World
from ..store.query import Eq
from ..workloads.records import (
    EMPLOYMENT_PURPOSES,
    PURPOSE_COHORT_RELEASE,
    PURPOSE_ELIGIBILITY_AUDIT,
    PURPOSE_EMPLOYMENT_STATS,
    employment_rows,
    generate_eligibility_spans,
    generate_employment_records,
)
from .fleet import Fleet
from .spec import TRANSFORM_DP, TRANSFORM_EXACT, TRANSFORM_KANON, FedQuerySpec
from .standing import StandingCoordinator, StandingSubscription, WindowClause

ENERGY_STREAM = "energy_stream"
EMPLOYMENT = "employment"

PURPOSE_LOAD_FORECAST = "load-forecast"

#: Every UCON purpose the standing experiment's tenant mix runs under.
TRAFFIC_PURPOSES = (PURPOSE_LOAD_FORECAST,) + EMPLOYMENT_PURPOSES


def seed_stream_data(
    fleet: Fleet,
    *,
    units: int,
    field_seconds: int,
    origin_s: int = 0,
    time_field: str = "t",
) -> None:
    """Seed both stream domains and schedule their in-order ingestion.

    Each cell gets an ``energy_stream`` collection (one watts reading
    per field unit) and an ``employment`` collection (one reporting-
    period row per unit, with gaps, from the workloads generators).
    Rows for unit ``u`` are inserted one sim-second before
    ``origin_s + (u+1) * field_seconds`` — i.e. strictly before any
    window closing at that boundary — and units are scheduled in
    ascending order, so every store's append order is event-time
    monotone: the contract that pins the incremental window totals to
    the one-shot query bit-for-bit.

    Cells are opted in to every employment purpose here (the energy
    purpose is the fleet default).
    """
    world = fleet.world
    for name, agent in fleet.agents.items():
        agent.opt_in(*EMPLOYMENT_PURPOSES)
        catalog = fleet.catalogs[name]
        energy = catalog.collection(ENERGY_STREAM)
        employment = catalog.collection(EMPLOYMENT)
        energy_rng = world.rng(f"traffic.energy.{name}")
        work_rng = world.rng(f"traffic.employment.{name}")
        work_by_period = {
            row[time_field]: row
            for row in employment_rows(
                generate_employment_records(work_rng, units),
                generate_eligibility_spans(work_rng, units),
                qi_age=work_rng.randint(18, 67),
                qi_zip=work_rng.randint(10_000, 99_999),
                time_field=time_field,
            )
        }
        for unit in range(units):
            rows = [(energy, f"s{unit}", {
                time_field: unit,
                "watts": round(energy_rng.uniform(50.0, 450.0), 1),
            })]
            work_row = work_by_period.get(unit)
            if work_row is not None:
                rows.append((employment, f"e{unit}", work_row))
            arrive_at = origin_s + (unit + 1) * field_seconds - 1
            world.loop.schedule_in(
                max(0, arrive_at - world.now),
                lambda batch=rows: [
                    collection.insert(key, value)
                    for collection, key, value in batch
                ],
                label=f"traffic ingest {name} u{unit}",
            )


def tenant_specs(
    count: int,
    *,
    time_field: str = "t",
    min_cohort: int = 2,
    k: int = 5,
) -> list[FedQuerySpec]:
    """A deterministic mixed-tenant spec list.

    Tenants alternate between the energy and employment domains;
    transforms cycle mostly ``aggregate-exact``, every 5th tenant
    ``aggregate-dp``, every 16th ``records-kanon`` — the mix the
    multi-tenant bench row claims.
    """
    specs = []
    for index in range(count):
        recipient = f"tenant-{index:04d}"
        if index % 16 == 15:
            specs.append(FedQuerySpec(
                recipient=recipient, purpose=PURPOSE_COHORT_RELEASE,
                transform=TRANSFORM_KANON, collection=EMPLOYMENT,
                project=("qi_age", "qi_zip", "sector"),
                k=k, min_cohort=min_cohort,
            ))
            continue
        transform = TRANSFORM_DP if index % 5 == 4 else TRANSFORM_EXACT
        if index % 2:
            if index % 4 == 3:
                specs.append(FedQuerySpec(
                    recipient=recipient, purpose=PURPOSE_ELIGIBILITY_AUDIT,
                    transform=transform, collection=EMPLOYMENT,
                    where=Eq("approved", 1), aggregate="count",
                    min_cohort=min_cohort,
                ))
            else:
                specs.append(FedQuerySpec(
                    recipient=recipient, purpose=PURPOSE_EMPLOYMENT_STATS,
                    transform=transform, collection=EMPLOYMENT,
                    value_field="hours", aggregate="sum", scale=10,
                    min_cohort=min_cohort,
                ))
        else:
            specs.append(FedQuerySpec(
                recipient=recipient, purpose=PURPOSE_LOAD_FORECAST,
                transform=transform, collection=ENERGY_STREAM,
                value_field="watts", aggregate="sum", scale=10,
                min_cohort=min_cohort,
            ))
    return specs


@dataclass
class TrafficReport:
    """Roll-up of one multi-tenant run, the shape the bench tracks."""

    subscriptions: int
    windows_expected: int
    windows_settled: int
    complete_subscriptions: int
    outcomes: dict[str, int]
    messages: int
    bytes: int
    sub_messages: int
    sub_bytes: int
    reasks: int
    recovery_rounds: int
    max_settle_lag_s: int
    wall_seconds: float

    @property
    def windows_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.windows_settled / self.wall_seconds

    @property
    def messages_per_window(self) -> float:
        if not self.windows_settled:
            return 0.0
        return self.messages / self.windows_settled

    @property
    def bytes_per_window(self) -> float:
        if not self.windows_settled:
            return 0.0
        return self.bytes / self.windows_settled


def run_traffic(
    coordinator: StandingCoordinator,
    fleet: Fleet,
    specs: list[FedQuerySpec],
    window: WindowClause,
    *,
    rotate_epoch_every: int | None = None,
    slack_s: int = 0,
) -> tuple[list[StandingSubscription], TrafficReport]:
    """Subscribe every tenant, drive to completion, roll up the report.

    ``rotate_epoch_every=N`` schedules a fleet key-epoch rotation
    halfway through every Nth window slide (a key-lifecycle fleet
    only): windows before the rotation masked under the old epoch,
    windows after under the new one — the "fresh masks per window
    epoch via the keymgmt ratchet" composition.
    """
    world: World = coordinator.world
    if rotate_epoch_every is not None:
        for index in range(rotate_epoch_every - 1, window.windows,
                           rotate_epoch_every):
            _, end_s = window.window_span_s(index)
            world.loop.schedule_in(
                max(0, end_s + window.slide // 2 - world.now),
                fleet.advance_epoch,
                label=f"traffic epoch rotation after w{index}",
            )
    started = time.perf_counter()
    subscriptions = [
        coordinator.subscribe(spec, fleet.roster, window) for spec in specs
    ]
    coordinator.drive(slack_s=slack_s)
    wall = time.perf_counter() - started
    outcomes: dict[str, int] = {}
    messages = bytes_ = reasks = recovery = settled = complete = 0
    sub_messages = sub_bytes = 0
    max_lag = 0
    for sub in subscriptions:
        complete += sub.complete
        sub_messages += sub.sub_messages
        sub_bytes += sub.sub_bytes
        for index, result in sub.results.items():
            settled += 1
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            messages += result.messages
            bytes_ += result.bytes
            reasks += result.reasks
            recovery += result.recovery_rounds
            max_lag = max(max_lag, sub.settle_lag_s.get(index, 0))
    return subscriptions, TrafficReport(
        subscriptions=len(subscriptions),
        windows_expected=len(subscriptions) * window.windows,
        windows_settled=settled,
        complete_subscriptions=complete,
        outcomes=outcomes,
        messages=messages,
        bytes=bytes_,
        sub_messages=sub_messages,
        sub_bytes=sub_bytes,
        reasks=reasks,
        recovery_rounds=recovery,
        max_settle_lag_s=max_lag,
        wall_seconds=wall,
    )
