"""Cryptographic substrate (test-grade; real algorithms, toy parameters).

.. warning:: Not hardened. For simulation and experimentation only.
"""

from .aead import SealedBlob, open_sealed, seal
from .keys import KeyRing
from .merkle import (
    EMPTY_ROOT,
    InclusionProof,
    MerkleTree,
    require_inclusion,
    verify_inclusion,
)
from .primitives import (
    BLOCK_SIZE,
    KEY_SIZE,
    MAC_SIZE,
    ctr_crypt,
    hkdf,
    hmac_sha256,
    sha256,
    verify_hmac,
    xtea_decrypt_block,
    xtea_encrypt_block,
)
from .shamir import (
    PRIME,
    Share,
    additive_shares,
    combine_additive,
    decode_signed,
    encode_signed,
    reconstruct_bytes,
    reconstruct_secret,
    split_bytes,
    split_secret,
)
from .signing import Signature, SigningKey, VerifyKey, generate_keypair

__all__ = [
    "SealedBlob",
    "open_sealed",
    "seal",
    "KeyRing",
    "EMPTY_ROOT",
    "InclusionProof",
    "MerkleTree",
    "require_inclusion",
    "verify_inclusion",
    "BLOCK_SIZE",
    "KEY_SIZE",
    "MAC_SIZE",
    "ctr_crypt",
    "hkdf",
    "hmac_sha256",
    "sha256",
    "verify_hmac",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
    "PRIME",
    "Share",
    "additive_shares",
    "combine_additive",
    "decode_signed",
    "encode_signed",
    "reconstruct_bytes",
    "reconstruct_secret",
    "split_bytes",
    "split_secret",
    "Signature",
    "SigningKey",
    "VerifyKey",
    "generate_keypair",
]
