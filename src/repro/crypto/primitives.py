"""Low-level cryptographic primitives.

These are *real algorithms with toy deployment parameters*, suitable for
a simulation platform: experiments measure protocol structure (who can
decrypt what, what tampering is detected, how many bytes cross a
boundary), not cryptanalytic strength.

.. warning::
   Nothing in this module is hardened (no constant-time arithmetic, no
   side-channel resistance). Do **not** use it to protect real data.

Contents:

* XTEA block cipher (64-bit block, 128-bit key, 64 rounds) and a CTR
  mode keystream built on it.
* HMAC-SHA256 (delegating to the standard library).
* HKDF-style key derivation.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from ..errors import ConfigurationError
from ..obs import get_default as _obs_default

_MASK32 = 0xFFFFFFFF
_XTEA_DELTA = 0x9E3779B9
_XTEA_ROUNDS = 32  # 32 cycles = 64 Feistel rounds, the standard choice

BLOCK_SIZE = 8  # bytes
KEY_SIZE = 16  # bytes
MAC_SIZE = 32  # bytes (full SHA-256 tag)


def _key_schedule(key: bytes) -> tuple[int, int, int, int]:
    if len(key) != KEY_SIZE:
        raise ConfigurationError(f"XTEA key must be {KEY_SIZE} bytes, got {len(key)}")
    return (
        int.from_bytes(key[0:4], "big"),
        int.from_bytes(key[4:8], "big"),
        int.from_bytes(key[8:12], "big"),
        int.from_bytes(key[12:16], "big"),
    )


def xtea_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt a single 8-byte block with XTEA."""
    if len(block) != BLOCK_SIZE:
        raise ConfigurationError(f"XTEA block must be {BLOCK_SIZE} bytes")
    k = _key_schedule(key)
    v0 = int.from_bytes(block[0:4], "big")
    v1 = int.from_bytes(block[4:8], "big")
    total = 0
    for _round in range(_XTEA_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK32
        total = (total + _XTEA_DELTA) & _MASK32
        v1 = (
            v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK32
    return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")


def xtea_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt a single 8-byte block with XTEA."""
    if len(block) != BLOCK_SIZE:
        raise ConfigurationError(f"XTEA block must be {BLOCK_SIZE} bytes")
    k = _key_schedule(key)
    v0 = int.from_bytes(block[0:4], "big")
    v1 = int.from_bytes(block[4:8], "big")
    total = (_XTEA_DELTA * _XTEA_ROUNDS) & _MASK32
    for _round in range(_XTEA_ROUNDS):
        v1 = (
            v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK32
        total = (total - _XTEA_DELTA) & _MASK32
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK32
    return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """CTR-mode keystream of ``length`` bytes under ``key`` / ``nonce``.

    The counter block is ``nonce (4 bytes) || counter (4 bytes)``; a
    nonce must never be reused with the same key (the envelope layer
    guarantees this by deriving a fresh key per object version).
    """
    if len(nonce) != 4:
        raise ConfigurationError("CTR nonce must be 4 bytes")
    if length < 0:
        raise ConfigurationError("keystream length must be non-negative")
    blocks = []
    for counter in range((length + BLOCK_SIZE - 1) // BLOCK_SIZE):
        counter_block = nonce + counter.to_bytes(4, "big")
        blocks.append(xtea_encrypt_block(key, counter_block))
    return b"".join(blocks)[:length]


def ctr_crypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operation is its own
    inverse)."""
    stream = ctr_keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


# The HMAC call count lives in the process-default metrics registry
# (``crypto.hmac.calls``), not in a module global, so the test suite's
# observability reset fixture clears it between tests instead of
# letting it bleed across them. ``always=True``: it is a protocol-cost
# oracle (benches and tests assert exact deltas), so it keeps counting
# even when observability is disabled — the cost is one attribute
# increment, same as the global it replaced.
_HMAC_CALLS = _obs_default().metrics.counter(
    "crypto.hmac.calls",
    help="keyed HMAC-SHA256 invocations (aggregation derivation oracle)",
    always=True,
)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 tag of ``message`` under ``key``."""
    _HMAC_CALLS.value += 1
    return _hmac.new(key, message, hashlib.sha256).digest()


def hmac_invocations() -> int:
    """Count of :func:`hmac_sha256` calls (backward-compatible shim).

    Instrumentation hook for the aggregation benchmarks and tests:
    snapshot it before and after a protocol run to count how many key
    derivations the run performed. HMAC is the only keyed primitive on
    the aggregation hot path, so the delta *is* the derivation count.
    Now backed by the ``crypto.hmac.calls`` counter in the default
    :mod:`repro.obs` registry; resets when that registry resets.
    """
    return int(_HMAC_CALLS.value)


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of an HMAC tag."""
    return _hmac.compare_digest(hmac_sha256(key, message), tag)


def sha256(data: bytes) -> bytes:
    """SHA-256 digest."""
    return hashlib.sha256(data).digest()


def counter_stream(seed: bytes, length: int) -> bytes:
    """Counter-mode expansion of a 32-byte seed into ``length`` bytes.

    Block 0 is the seed itself; block ``n`` (n >= 1) is
    ``SHA256(seed || n_be32)``. The caller derives the seed with one
    keyed HMAC (e.g. per (pair, round) in the aggregation layer) and
    then expands it into as many field elements as the round needs, so
    the number of *keyed* derivations stays independent of the vector
    width. Asking for a longer stream later re-yields the same prefix.
    """
    if len(seed) != 32:
        raise ConfigurationError(f"counter-stream seed must be 32 bytes, got {len(seed)}")
    if length < 0:
        raise ConfigurationError("keystream length must be non-negative")
    if length <= 32:
        return seed[:length]
    blocks = [seed]
    produced = 32
    counter = 1
    while produced < length:
        blocks.append(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        produced += 32
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(master: bytes, info: str, length: int = KEY_SIZE) -> bytes:
    """Simplified HKDF-expand: derive ``length`` bytes bound to ``info``.

    Used throughout the key hierarchy so that every purpose (object
    encryption, policy binding, audit MAC, ...) gets an independent key
    from one master secret.
    """
    if length <= 0 or length > 255 * 32:
        raise ConfigurationError("invalid derived key length")
    output = b""
    previous = b""
    counter = 1
    while len(output) < length:
        previous = hmac_sha256(master, previous + info.encode() + bytes([counter]))
        output += previous
        counter += 1
    return output[:length]
