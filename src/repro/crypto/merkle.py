"""Merkle hash trees and inclusion proofs.

The synchronization layer anchors each vault snapshot in a Merkle root
held inside the cell's tamper-resistant memory. The untrusted cloud can
then prove that a returned object belongs to the snapshot (inclusion
proof) while any tampering or rollback changes the root and is detected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, IntegrityError
from .primitives import sha256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"
EMPTY_ROOT = sha256(b"merkle-empty")


def leaf_hash(data: bytes) -> bytes:
    """Domain-separated hash of a leaf payload."""
    return sha256(_LEAF_PREFIX + data)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Domain-separated hash of two child digests."""
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class ProofStep:
    """One level of an inclusion proof: the sibling digest and its side."""

    sibling: bytes
    sibling_on_left: bool


@dataclass(frozen=True)
class InclusionProof:
    """Proof that a leaf is included in a tree with a given root."""

    leaf_index: int
    leaf_count: int
    steps: tuple[ProofStep, ...]

    @property
    def size(self) -> int:
        """Serialized proof size in bytes (for protocol accounting)."""
        return 8 + sum(33 for _ in self.steps)


class MerkleTree:
    """A static Merkle tree over an ordered list of leaf payloads.

    Odd nodes are promoted (Bitcoin-style duplication is avoided: a
    lone node at any level is carried up unchanged), which keeps proofs
    minimal and makes the root of a single leaf equal to its leaf hash.
    """

    def __init__(self, leaves: list[bytes]) -> None:
        self._leaf_hashes = [leaf_hash(leaf) for leaf in leaves]
        self._levels = _build_levels(self._leaf_hashes)

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_hashes)

    @property
    def root(self) -> bytes:
        """Tree root; a fixed sentinel for the empty tree."""
        if not self._leaf_hashes:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def prove(self, index: int) -> InclusionProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_hashes):
            raise ConfigurationError(f"leaf index {index} out of range")
        steps: list[ProofStep] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index < len(level):
                steps.append(
                    ProofStep(
                        sibling=level[sibling_index],
                        sibling_on_left=sibling_index < position,
                    )
                )
            position //= 2
        return InclusionProof(
            leaf_index=index, leaf_count=len(self._leaf_hashes), steps=tuple(steps)
        )


def _build_levels(leaf_hashes: list[bytes]) -> list[list[bytes]]:
    if not leaf_hashes:
        return [[]]
    levels = [list(leaf_hashes)]
    while len(levels[-1]) > 1:
        current = levels[-1]
        next_level = []
        for i in range(0, len(current) - 1, 2):
            next_level.append(node_hash(current[i], current[i + 1]))
        if len(current) % 2 == 1:
            next_level.append(current[-1])
        levels.append(next_level)
    return levels


def verify_inclusion(root: bytes, leaf_data: bytes, proof: InclusionProof) -> bool:
    """True iff ``leaf_data`` is proven to be in the tree with ``root``."""
    digest = leaf_hash(leaf_data)
    for step in proof.steps:
        if step.sibling_on_left:
            digest = node_hash(step.sibling, digest)
        else:
            digest = node_hash(digest, step.sibling)
    return digest == root


def require_inclusion(root: bytes, leaf_data: bytes, proof: InclusionProof) -> None:
    """Raise :class:`IntegrityError` unless the inclusion proof verifies."""
    if not verify_inclusion(root, leaf_data, proof):
        raise IntegrityError("Merkle inclusion proof failed")
