"""Schnorr signatures over a Schnorr group.

Trusted cells sign externalized aggregates ("certified time series" sent
to the utility), credential certificates, and audit-log checkpoints.
We implement textbook Schnorr over a fixed 256-bit-prime Schnorr group
with deterministic nonces (RFC-6979 style, via HMAC) so signing is
reproducible and nonce reuse is impossible by construction.

.. warning:: Toy parameters; not for production use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, IntegrityError
from .primitives import hmac_sha256, sha256

# A Schnorr group: P = Q*R + 1 with Q prime, G of order Q.
# P is the 256-bit prime 2**256 - 189 (a known prime); Q is a 255-bit
# prime factor chosen so that G = H**R mod P has order Q.
# For the simulator we use the well-known secp256k1 field-free setup:
# take P = 2**255 - 19's sibling... Rather than invent constants, we use
# the standard 1024-bit MODP group 2 prime with a 160-bit subgroup
# (classic DSA-style parameters, RFC 2409 Oakley Group 2 prime).
P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
# Q = (P - 1) / 2 is prime for this safe-prime group; G = 4 generates
# the subgroup of quadratic residues of order Q.
Q = (P - 1) // 2
G = 4


@dataclass(frozen=True)
class SigningKey:
    """A private Schnorr key (an exponent modulo Q)."""

    secret: int

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Derive a key deterministically from seed bytes."""
        if not seed:
            raise ConfigurationError("signing key seed must be non-empty")
        material = sha256(b"schnorr-key" + seed) + sha256(b"schnorr-key2" + seed)
        secret = int.from_bytes(material, "big") % Q
        if secret == 0:
            secret = 1
        return cls(secret)

    def public_key(self) -> "VerifyKey":
        return VerifyKey(pow(G, self.secret, P))

    def sign(self, message: bytes) -> "Signature":
        """Deterministic Schnorr signature of ``message``."""
        secret_bytes = self.secret.to_bytes((Q.bit_length() + 7) // 8, "big")
        nonce_material = hmac_sha256(secret_bytes, b"nonce" + message)
        nonce_material += hmac_sha256(secret_bytes, b"nonce2" + message)
        k = int.from_bytes(nonce_material, "big") % Q
        if k == 0:
            k = 1
        commitment = pow(G, k, P)
        challenge = _challenge(commitment, message)
        response = (k + challenge * self.secret) % Q
        return Signature(challenge=challenge, response=response)


@dataclass(frozen=True)
class VerifyKey:
    """A public Schnorr key (a group element)."""

    element: int

    def verify(self, message: bytes, signature: "Signature") -> bool:
        """True iff ``signature`` is valid for ``message``."""
        if not (0 < signature.response < Q):
            return False
        # g^s * y^{-e} should reproduce the commitment
        y_inv_e = pow(self.element, Q - (signature.challenge % Q), P)
        commitment = (pow(G, signature.response, P) * y_inv_e) % P
        return _challenge(commitment, message) == signature.challenge

    def require_valid(self, message: bytes, signature: "Signature") -> None:
        """Raise :class:`IntegrityError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise IntegrityError("signature verification failed")

    def fingerprint(self) -> bytes:
        """Stable 16-byte identifier for this public key."""
        size = (P.bit_length() + 7) // 8
        return sha256(self.element.to_bytes(size, "big"))[:16]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(challenge, response)``."""

    challenge: int
    response: int

    def to_bytes(self) -> bytes:
        size = (Q.bit_length() + 7) // 8
        return self.challenge.to_bytes(size, "big") + self.response.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        size = (Q.bit_length() + 7) // 8
        if len(data) != 2 * size:
            raise IntegrityError("malformed signature encoding")
        return cls(
            challenge=int.from_bytes(data[:size], "big"),
            response=int.from_bytes(data[size:], "big"),
        )

    @property
    def size(self) -> int:
        return len(self.to_bytes())


def _challenge(commitment: int, message: bytes) -> int:
    size = (P.bit_length() + 7) // 8
    digest = sha256(commitment.to_bytes(size, "big") + message)
    return int.from_bytes(digest, "big") % Q


def generate_keypair(seed: bytes) -> tuple[SigningKey, VerifyKey]:
    """Convenience: derive a (private, public) pair from seed bytes."""
    signing = SigningKey.from_seed(seed)
    return signing, signing.public_key()
