"""Authenticated encryption with associated data (encrypt-then-MAC).

The platform's unit of outsourced storage is a sealed blob: CTR-mode
ciphertext plus an HMAC tag covering ``header || nonce || ciphertext``.
The *associated data* header is where sticky policies are bound to their
payload: the policy travels in clear (a recipient cell must read it to
enforce it) but any modification invalidates the tag, which implements
the paper's requirement that usage rules be "cryptographically
inseparable from the data".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, IntegrityError
from .primitives import KEY_SIZE, MAC_SIZE, ctr_crypt, hkdf, hmac_sha256, verify_hmac

_NONCE_SIZE = 4


@dataclass(frozen=True)
class SealedBlob:
    """An encrypted, integrity-protected blob.

    ``header`` is authenticated but not encrypted; ``ciphertext`` is
    both. The blob is self-delimiting and can be serialized for storage
    in the untrusted cloud.
    """

    header: bytes
    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialize with length-prefixed fields."""
        parts = []
        for field_value in (self.header, self.nonce, self.ciphertext, self.tag):
            parts.append(len(field_value).to_bytes(4, "big"))
            parts.append(field_value)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        """Parse a serialized blob; raises on truncation."""
        fields = []
        offset = 0
        for _ in range(4):
            if offset + 4 > len(data):
                raise IntegrityError("truncated sealed blob")
            length = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            if offset + length > len(data):
                raise IntegrityError("truncated sealed blob field")
            fields.append(data[offset : offset + length])
            offset += length
        if offset != len(data):
            raise IntegrityError("trailing bytes after sealed blob")
        return cls(*fields)

    @property
    def size(self) -> int:
        """Serialized size in bytes (storage and network accounting)."""
        return 16 + len(self.header) + len(self.nonce) + len(self.ciphertext) + len(self.tag)


def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    """Independent encryption and MAC keys from one logical key."""
    if len(key) != KEY_SIZE:
        raise ConfigurationError(f"AEAD key must be {KEY_SIZE} bytes")
    return hkdf(key, "aead-enc"), hkdf(key, "aead-mac", 32)


def seal(key: bytes, plaintext: bytes, header: bytes = b"", nonce_seed: bytes = b"") -> SealedBlob:
    """Encrypt ``plaintext`` and authenticate it together with ``header``.

    The nonce is derived deterministically from the MAC key and
    ``nonce_seed``; callers that seal multiple plaintexts under the same
    key must provide distinct seeds (the envelope layer uses the object
    version for this).
    """
    enc_key, mac_key = _subkeys(key)
    nonce = hmac_sha256(mac_key, b"nonce" + nonce_seed)[:_NONCE_SIZE]
    ciphertext = ctr_crypt(enc_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, header + nonce + ciphertext)
    return SealedBlob(header=header, nonce=nonce, ciphertext=ciphertext, tag=tag)


def open_sealed(key: bytes, blob: SealedBlob) -> bytes:
    """Verify and decrypt a sealed blob.

    Raises :class:`IntegrityError` if the tag does not verify — the
    caller must treat this as evidence of tampering, never as a benign
    failure.
    """
    enc_key, mac_key = _subkeys(key)
    expected = blob.header + blob.nonce + blob.ciphertext
    if not verify_hmac(mac_key, expected, blob.tag):
        raise IntegrityError("sealed blob failed authentication")
    return ctr_crypt(enc_key, blob.nonce, blob.ciphertext)


# -- frame batching -----------------------------------------------------------
#
# One ``seal`` costs four keyed HMAC invocations (two subkey
# derivations, nonce, tag) regardless of plaintext size, so sealing a
# page's worth of record frames one by one costs 4·N. Packing the
# frames into a single plaintext amortizes the whole AEAD pass — 4
# HMACs per page, the same collapse the store's integrity path applies
# to page tags. The ``crypto.hmac.calls`` ledger counts it.


def pack_frames(frames: list[bytes]) -> bytes:
    """Length-prefixed concatenation of N frames into one plaintext."""
    parts = [len(frames).to_bytes(4, "big")]
    for frame in frames:
        parts.append(len(frame).to_bytes(4, "big"))
        parts.append(frame)
    return b"".join(parts)


def unpack_frames(data: bytes) -> list[bytes]:
    """Inverse of :func:`pack_frames`; raises :class:`IntegrityError`
    on truncation or trailing bytes (a framing mismatch inside an
    authenticated payload still indicates a protocol bug worth
    surfacing loudly)."""
    if len(data) < 4:
        raise IntegrityError("truncated frame bundle")
    count = int.from_bytes(data[:4], "big")
    offset = 4
    frames: list[bytes] = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise IntegrityError("truncated frame bundle entry")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if offset + length > len(data):
            raise IntegrityError("truncated frame bundle payload")
        frames.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise IntegrityError("trailing bytes after frame bundle")
    return frames


def seal_frames(key: bytes, frames: list[bytes], header: bytes = b"",
                nonce_seed: bytes = b"") -> SealedBlob:
    """Seal N frames in one AEAD invocation (4 HMACs total, not 4·N)."""
    return seal(key, pack_frames(frames), header=header, nonce_seed=nonce_seed)


def open_frames(key: bytes, blob: SealedBlob) -> list[bytes]:
    """Verify, decrypt and unpack a frame bundle sealed by
    :func:`seal_frames`."""
    return unpack_frames(open_sealed(key, blob))
