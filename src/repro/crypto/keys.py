"""Key hierarchy and key management for trusted cells.

Design goals taken directly from the paper:

* "Cryptographic keys never leave the trusted cells tamper-resistant
  memory" — the :class:`KeyRing` exposes *operations* (seal, unwrap,
  sign), and raw key bytes only leave it wrapped under another key.
* "a successful attack on a (small set of) trusted cells cannot
  degenerate in breaking class attack" — every cell has its own master
  secret, and every object has its own key derived from it, so a
  breached cell exposes only keys that cell legitimately held.
  (Experiment E7 ablates this by giving all cells the same master.)
* "master secrets must be restorable in case of crash/loss of a trusted
  cell" — the master secret can be escrowed as Shamir shares.

Key derivation tree::

    master_secret
      |-- "sign"                  -> Schnorr signing key seed
      |-- "exchange"              -> Diffie-Hellman exchange secret
      |-- "audit"                 -> audit-log MAC key
      |-- "object:<id>:<version>" -> per-object data key
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError, KeyError_
from . import shamir
from .aead import SealedBlob, open_sealed, seal
from .primitives import KEY_SIZE, hkdf, sha256
from .signing import G, P, Q, SigningKey, VerifyKey


class KeyRing:
    """All cryptographic secrets of one trusted cell.

    Instances are meant to live inside the cell's tamper-resistant
    memory (the hardware layer accounts for their footprint); no method
    returns the master secret or a derived private key in the clear.
    """

    def __init__(self, master_secret: bytes) -> None:
        if len(master_secret) != KEY_SIZE:
            raise ConfigurationError(
                f"master secret must be {KEY_SIZE} bytes, got {len(master_secret)}"
            )
        self._master = master_secret
        self._signing_key = SigningKey.from_seed(hkdf(master_secret, "sign"))
        exchange_seed = hkdf(master_secret, "exchange", 32)
        self._exchange_secret = int.from_bytes(exchange_seed, "big") % Q or 1
        # Keys imported from other cells through the sharing protocol,
        # indexed by (object_id, version).
        self._imported: dict[tuple[str, int], bytes] = {}

    # -- identity ----------------------------------------------------------

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyRing":
        """A fresh key ring with a random master secret."""
        return cls(rng.randbytes(KEY_SIZE))

    @property
    def verify_key(self) -> VerifyKey:
        """This cell's public signature-verification key."""
        return self._signing_key.public_key()

    @property
    def exchange_public(self) -> int:
        """This cell's public Diffie-Hellman element ``g^x``."""
        return pow(G, self._exchange_secret, P)

    def fingerprint(self) -> bytes:
        """Stable public identifier of this key ring."""
        return self.verify_key.fingerprint()

    # -- signing -------------------------------------------------------------

    def sign(self, message: bytes):
        """Sign ``message`` with the cell's certification key."""
        return self._signing_key.sign(message)

    # -- derived symmetric keys ------------------------------------------

    def derive(self, purpose: str) -> bytes:
        """Derive a purpose-bound symmetric key.

        Exposed for internal platform layers (audit MACs, policy
        binding); applications should use the higher-level methods.
        """
        return hkdf(self._master, purpose)

    def object_key(self, object_id: str, version: int) -> bytes:
        """The data key for one version of one owned object."""
        return hkdf(self._master, f"object:{object_id}:{version}")

    # -- pairwise keys and key wrapping ------------------------------------

    def pairwise_key(self, peer_exchange_public: int) -> bytes:
        """Shared symmetric key with the peer holding the given DH element."""
        if not 1 < peer_exchange_public < P:
            raise ConfigurationError("peer exchange element out of range")
        shared = pow(peer_exchange_public, self._exchange_secret, P)
        size = (P.bit_length() + 7) // 8
        return sha256(b"pairwise" + shared.to_bytes(size, "big"))[:KEY_SIZE]

    def wrap_object_key(
        self, object_id: str, version: int, peer_exchange_public: int
    ) -> SealedBlob:
        """Wrap an owned object key for a specific peer cell.

        The wrapped key can transit the untrusted infrastructure: only
        the peer can unwrap it, and the (object_id, version) binding in
        the header is authenticated.
        """
        key = self.key_for(object_id, version)
        header = f"keywrap:{object_id}:{version}".encode()
        return seal(
            self.pairwise_key(peer_exchange_public),
            key,
            header=header,
            nonce_seed=header,
        )

    def unwrap_object_key(
        self, blob: SealedBlob, peer_exchange_public: int
    ) -> tuple[str, int]:
        """Import a wrapped object key received from a peer.

        Returns the (object_id, version) the key now unlocks. The key
        itself stays inside the ring.
        """
        key = open_sealed(self.pairwise_key(peer_exchange_public), blob)
        try:
            prefix, _, rest = blob.header.decode().partition(":")
            # object ids may themselves contain ':', so take the
            # version from the right
            object_id, _, version_text = rest.rpartition(":")
            if prefix != "keywrap" or not object_id:
                raise ValueError("bad prefix")
            version = int(version_text)
        except ValueError as exc:
            raise KeyError_(f"malformed key-wrap header: {blob.header!r}") from exc
        self._imported[(object_id, version)] = key
        return object_id, version

    def key_for(self, object_id: str, version: int) -> bytes:
        """The data key for an object, owned or imported.

        Owned objects take priority: derivation is deterministic so an
        owner never depends on the imported table for its own data.
        Raises :class:`KeyError_` if the object was shared with us but
        the key was never imported.
        """
        imported = self._imported.get((object_id, version))
        if imported is not None:
            return imported
        return self.object_key(object_id, version)

    def has_imported_key(self, object_id: str, version: int) -> bool:
        """True iff a foreign key for this object version was imported."""
        return (object_id, version) in self._imported

    def forget_imported_key(self, object_id: str, version: int) -> None:
        """Drop an imported key (e.g. after a usage right is exhausted)."""
        self._imported.pop((object_id, version), None)

    @property
    def imported_key_count(self) -> int:
        return len(self._imported)

    # -- escrow / recovery -------------------------------------------------

    def export_master_shares(
        self, guardians: int, threshold: int, rng: random.Random
    ) -> list[list[shamir.Share]]:
        """Shamir-split the master secret for escrow among guardians."""
        return shamir.split_bytes(self._master, guardians, threshold, rng)

    @classmethod
    def restore_from_shares(cls, shares: list[list[shamir.Share]]) -> "KeyRing":
        """Rebuild a lost cell's key ring from at-least-threshold escrow
        shares. Imported keys are *not* restored (peers must re-share)."""
        master = shamir.reconstruct_bytes(shares)
        if len(master) != KEY_SIZE:
            raise KeyError_("escrow reconstruction produced an invalid master secret")
        return cls(master)

    # -- breach model hook ---------------------------------------------------

    def _dump_for_breach(self) -> dict[str, object]:
        """Everything a *physical* attacker extracts from a breached cell.

        Only the attack model (:mod:`repro.attacks`) may call this; it
        models the paper's admission that "even secure hardware can be
        breached, though at very high cost".
        """
        return {
            "master_secret": self._master,
            "imported_keys": dict(self._imported),
        }
