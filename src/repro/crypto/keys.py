"""Key hierarchy and key management for trusted cells.

Design goals taken directly from the paper:

* "Cryptographic keys never leave the trusted cells tamper-resistant
  memory" — the :class:`KeyRing` exposes *operations* (seal, unwrap,
  sign), and raw key bytes only leave it wrapped under another key.
* "a successful attack on a (small set of) trusted cells cannot
  degenerate in breaking class attack" — every cell has its own master
  secret, and every object has its own key derived from it, so a
  breached cell exposes only keys that cell legitimately held.
  (Experiment E7 ablates this by giving all cells the same master.)
* "master secrets must be restorable in case of crash/loss of a trusted
  cell" — the master secret can be escrowed as Shamir shares.

Key derivation tree::

    master_secret
      |-- "sign"                  -> Schnorr signing key seed
      |-- "exchange"              -> Diffie-Hellman exchange secret
      |-- "prekey"                -> signed-prekey secret (X3DH agreement)
      |-- "audit"                 -> audit-log MAC key
      |-- "object:<id>:<version>" -> per-object data key
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError, KeyError_
from . import shamir
from .aead import SealedBlob, open_sealed, seal
from .primitives import KEY_SIZE, hkdf, sha256
from .signing import G, P, Q, SigningKey, VerifyKey

_GROUP_BYTES = (P.bit_length() + 7) // 8


def prekey_signing_bytes(signed_prekey_public: int) -> bytes:
    """The domain-tagged message a cell signs over its prekey element."""
    return b"x3dh-prekey|" + signed_prekey_public.to_bytes(_GROUP_BYTES, "big")


def generate_exchange_keypair(rng: random.Random) -> tuple[int, int]:
    """A fresh ephemeral DH pair ``(secret, public)`` for X3DH initiation."""
    secret = int.from_bytes(rng.randbytes(32), "big") % Q or 1
    return secret, pow(G, secret, P)


def _x3dh_key(dh1: int, dh2: int, dh3: int) -> bytes:
    """Fold the three X3DH shared elements into one symmetric key."""
    return sha256(
        b"x3dh|"
        + dh1.to_bytes(_GROUP_BYTES, "big")
        + dh2.to_bytes(_GROUP_BYTES, "big")
        + dh3.to_bytes(_GROUP_BYTES, "big")
    )[:KEY_SIZE]


def _require_group_element(value: int, what: str) -> None:
    if not 1 < value < P:
        raise ConfigurationError(f"{what} out of range")


class KeyRing:
    """All cryptographic secrets of one trusted cell.

    Instances are meant to live inside the cell's tamper-resistant
    memory (the hardware layer accounts for their footprint); no method
    returns the master secret or a derived private key in the clear.
    """

    def __init__(self, master_secret: bytes) -> None:
        if len(master_secret) != KEY_SIZE:
            raise ConfigurationError(
                f"master secret must be {KEY_SIZE} bytes, got {len(master_secret)}"
            )
        self._master = master_secret
        self._signing_key = SigningKey.from_seed(hkdf(master_secret, "sign"))
        exchange_seed = hkdf(master_secret, "exchange", 32)
        self._exchange_secret = int.from_bytes(exchange_seed, "big") % Q or 1
        # The signed-prekey secret is derived lazily on first use: most
        # rings never take part in X3DH agreement, and the derivation
        # counts against the keyed-derivation oracle.
        self._prekey_secret_cache: int | None = None
        # Keys imported from other cells through the sharing protocol,
        # indexed by (object_id, version).
        self._imported: dict[tuple[str, int], bytes] = {}

    # -- identity ----------------------------------------------------------

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyRing":
        """A fresh key ring with a random master secret."""
        return cls(rng.randbytes(KEY_SIZE))

    @property
    def verify_key(self) -> VerifyKey:
        """This cell's public signature-verification key."""
        return self._signing_key.public_key()

    @property
    def exchange_public(self) -> int:
        """This cell's public Diffie-Hellman element ``g^x``."""
        return pow(G, self._exchange_secret, P)

    def fingerprint(self) -> bytes:
        """Stable public identifier of this key ring."""
        return self.verify_key.fingerprint()

    # -- signing -------------------------------------------------------------

    def sign(self, message: bytes):
        """Sign ``message`` with the cell's certification key."""
        return self._signing_key.sign(message)

    # -- derived symmetric keys ------------------------------------------

    def derive(self, purpose: str) -> bytes:
        """Derive a purpose-bound symmetric key.

        Exposed for internal platform layers (audit MACs, policy
        binding); applications should use the higher-level methods.
        """
        return hkdf(self._master, purpose)

    def object_key(self, object_id: str, version: int) -> bytes:
        """The data key for one version of one owned object."""
        return hkdf(self._master, f"object:{object_id}:{version}")

    # -- pairwise keys and key wrapping ------------------------------------

    def pairwise_key(self, peer_exchange_public: int) -> bytes:
        """Shared symmetric key with the peer holding the given DH element."""
        if not 1 < peer_exchange_public < P:
            raise ConfigurationError("peer exchange element out of range")
        shared = pow(peer_exchange_public, self._exchange_secret, P)
        size = (P.bit_length() + 7) // 8
        return sha256(b"pairwise" + shared.to_bytes(size, "big"))[:KEY_SIZE]

    # -- X3DH-style asynchronous agreement ---------------------------------

    def _prekey_secret(self) -> int:
        if self._prekey_secret_cache is None:
            seed = hkdf(self._master, "prekey", 32)
            self._prekey_secret_cache = int.from_bytes(seed, "big") % Q or 1
        return self._prekey_secret_cache

    @property
    def signed_prekey_public(self) -> int:
        """This cell's public signed-prekey element ``g^spk``.

        Published in a prekey bundle so peers can complete a key
        agreement while this cell is offline (the X3DH pattern); the
        bundle carries a Schnorr signature over this element so a
        directory cannot substitute its own prekey.
        """
        return pow(G, self._prekey_secret(), P)

    def sign_prekey(self):
        """The Schnorr signature binding the prekey to this identity."""
        return self._signing_key.sign(
            prekey_signing_bytes(self.signed_prekey_public)
        )

    def x3dh_initiate(
        self,
        peer_identity_public: int,
        peer_signed_prekey_public: int,
        ephemeral_secret: int,
    ) -> bytes:
        """Initiator side of an X3DH agreement against a peer's bundle.

        ``peer_identity_public`` is the peer's long-term DH element
        (:attr:`exchange_public`); the ephemeral secret comes from
        :func:`generate_exchange_keypair` and its public half must be
        delivered to the peer so :meth:`x3dh_respond` can run — the
        peer needs nothing else, so it may be offline right now.
        """
        _require_group_element(peer_identity_public, "peer identity element")
        _require_group_element(peer_signed_prekey_public, "peer prekey element")
        dh1 = pow(peer_signed_prekey_public, self._exchange_secret, P)
        dh2 = pow(peer_identity_public, ephemeral_secret, P)
        dh3 = pow(peer_signed_prekey_public, ephemeral_secret, P)
        return _x3dh_key(dh1, dh2, dh3)

    def x3dh_respond(
        self,
        initiator_identity_public: int,
        initiator_ephemeral_public: int,
    ) -> bytes:
        """Responder side: same key as the initiator's, computed later."""
        _require_group_element(
            initiator_identity_public, "initiator identity element")
        _require_group_element(
            initiator_ephemeral_public, "initiator ephemeral element")
        dh1 = pow(initiator_identity_public, self._prekey_secret(), P)
        dh2 = pow(initiator_ephemeral_public, self._exchange_secret, P)
        dh3 = pow(initiator_ephemeral_public, self._prekey_secret(), P)
        return _x3dh_key(dh1, dh2, dh3)

    def wrap_object_key(
        self, object_id: str, version: int, peer_exchange_public: int
    ) -> SealedBlob:
        """Wrap an owned object key for a specific peer cell.

        The wrapped key can transit the untrusted infrastructure: only
        the peer can unwrap it, and the (object_id, version) binding in
        the header is authenticated.
        """
        key = self.key_for(object_id, version)
        header = f"keywrap:{object_id}:{version}".encode()
        return seal(
            self.pairwise_key(peer_exchange_public),
            key,
            header=header,
            nonce_seed=header,
        )

    def unwrap_object_key(
        self, blob: SealedBlob, peer_exchange_public: int
    ) -> tuple[str, int]:
        """Import a wrapped object key received from a peer.

        Returns the (object_id, version) the key now unlocks. The key
        itself stays inside the ring.
        """
        key = open_sealed(self.pairwise_key(peer_exchange_public), blob)
        try:
            prefix, _, rest = blob.header.decode().partition(":")
            # object ids may themselves contain ':', so take the
            # version from the right
            object_id, _, version_text = rest.rpartition(":")
            if prefix != "keywrap" or not object_id:
                raise ValueError("bad prefix")
            version = int(version_text)
        except ValueError as exc:
            raise KeyError_(f"malformed key-wrap header: {blob.header!r}") from exc
        self._imported[(object_id, version)] = key
        return object_id, version

    def key_for(self, object_id: str, version: int) -> bytes:
        """The data key for an object, owned or imported.

        Owned objects take priority: derivation is deterministic so an
        owner never depends on the imported table for its own data.
        Raises :class:`KeyError_` if the object was shared with us but
        the key was never imported.
        """
        imported = self._imported.get((object_id, version))
        if imported is not None:
            return imported
        return self.object_key(object_id, version)

    def has_imported_key(self, object_id: str, version: int) -> bool:
        """True iff a foreign key for this object version was imported."""
        return (object_id, version) in self._imported

    def forget_imported_key(self, object_id: str, version: int) -> None:
        """Drop an imported key (e.g. after a usage right is exhausted)."""
        self._imported.pop((object_id, version), None)

    @property
    def imported_key_count(self) -> int:
        return len(self._imported)

    # -- escrow / recovery -------------------------------------------------

    def export_master_shares(
        self, guardians: int, threshold: int, rng: random.Random
    ) -> list[list[shamir.Share]]:
        """Shamir-split the master secret for escrow among guardians."""
        return shamir.split_bytes(self._master, guardians, threshold, rng)

    @classmethod
    def restore_from_shares(cls, shares: list[list[shamir.Share]]) -> "KeyRing":
        """Rebuild a lost cell's key ring from at-least-threshold escrow
        shares. Imported keys are *not* restored (peers must re-share)."""
        master = shamir.reconstruct_bytes(shares)
        if len(master) != KEY_SIZE:
            raise KeyError_("escrow reconstruction produced an invalid master secret")
        return cls(master)

    # -- breach model hook ---------------------------------------------------

    def _dump_for_breach(self) -> dict[str, object]:
        """Everything a *physical* attacker extracts from a breached cell.

        Only the attack model (:mod:`repro.attacks`) may call this; it
        models the paper's admission that "even secure hardware can be
        breached, though at very high cost".
        """
        return {
            "master_secret": self._master,
            "imported_keys": dict(self._imported),
        }
