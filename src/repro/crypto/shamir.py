"""Secret sharing: Shamir threshold shares and additive shares.

Two uses in the platform, both mandated by the paper:

* **Master-secret recovery** ("master secrets must be restorable in case
  of crash/loss of a trusted cell"): a cell's master key is split into
  Shamir shares held by escrow cells; any ``threshold`` of them can
  restore it, fewer learn nothing.
* **Shared commons**: secure aggregation among cells uses additive
  shares (and Shamir shares for dropout tolerance) so the untrusted
  infrastructure can relay intermediate results without learning any
  individual contribution.

All arithmetic is over the prime field GF(PRIME) with a 127-bit
Mersenne prime, large enough to embed 16-byte keys in one share chunk
per 15-byte slice and to hold realistic aggregate sums without wrap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError, ProtocolError

PRIME = (1 << 127) - 1  # Mersenne prime 2^127 - 1


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation of the polynomial at ``x``."""

    x: int
    y: int


def _eval_poly(coefficients: list[int], x: int) -> int:
    """Horner evaluation of the polynomial at ``x`` mod PRIME."""
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % PRIME
    return result


def split_secret(
    secret: int, shares: int, threshold: int, rng: random.Random
) -> list[Share]:
    """Split ``secret`` into ``shares`` Shamir shares with the given
    reconstruction ``threshold``.

    Any ``threshold`` shares reconstruct the secret; ``threshold - 1``
    shares are information-theoretically independent of it.
    """
    if not 0 <= secret < PRIME:
        raise ConfigurationError("secret out of field range")
    if threshold < 1 or shares < threshold:
        raise ConfigurationError(
            f"need 1 <= threshold ({threshold}) <= shares ({shares})"
        )
    coefficients = [secret] + [rng.randrange(PRIME) for _ in range(threshold - 1)]
    return [Share(x, _eval_poly(coefficients, x)) for x in range(1, shares + 1)]


def reconstruct_secret(shares: list[Share]) -> int:
    """Lagrange interpolation at x=0 from at-least-threshold shares.

    Passing fewer shares than the original threshold yields a value
    uncorrelated with the secret (it does not raise: by design Shamir
    cannot detect insufficiency without extra authentication).
    """
    if not shares:
        raise ProtocolError("cannot reconstruct from zero shares")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise ProtocolError("duplicate share x-coordinates")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % PRIME
            denominator = (denominator * (share_i.x - share_j.x)) % PRIME
        lagrange = numerator * pow(denominator, PRIME - 2, PRIME) % PRIME
        secret = (secret + share_i.y * lagrange) % PRIME
    return secret


def split_bytes(secret: bytes, shares: int, threshold: int, rng: random.Random) -> list[list[Share]]:
    """Split arbitrary bytes by chunking into 15-byte field elements.

    Returns one share-list per participant: ``result[p][c]`` is
    participant ``p``'s share of chunk ``c``. The length of the secret
    is encoded in a prefix chunk so reconstruction is exact.
    """
    prefixed = len(secret).to_bytes(4, "big") + secret
    chunks = [prefixed[i : i + 15] for i in range(0, len(prefixed), 15)]
    per_chunk = [
        split_secret(int.from_bytes(chunk.ljust(15, b"\0"), "big"), shares, threshold, rng)
        for chunk in chunks
    ]
    return [
        [per_chunk[c][p] for c in range(len(chunks))] for p in range(shares)
    ]


def reconstruct_bytes(share_lists: list[list[Share]]) -> bytes:
    """Inverse of :func:`split_bytes` from at-least-threshold participants."""
    if not share_lists:
        raise ProtocolError("cannot reconstruct from zero participants")
    chunk_count = len(share_lists[0])
    if any(len(shares) != chunk_count for shares in share_lists):
        raise ProtocolError("participants disagree on chunk count")
    raw = b"".join(
        reconstruct_secret([share_lists[p][c] for p in range(len(share_lists))])
        .to_bytes(15, "big")
        for c in range(chunk_count)
    )
    length = int.from_bytes(raw[:4], "big")
    if length > len(raw) - 4:
        raise ProtocolError("reconstructed length prefix is inconsistent")
    return raw[4 : 4 + length]


def additive_shares(value: int, parties: int, rng: random.Random) -> list[int]:
    """Split ``value`` into ``parties`` additive shares mod PRIME.

    All shares are required to recover the value; any strict subset is
    uniformly random. Used by the masking-based aggregation protocol.
    """
    if parties < 1:
        raise ConfigurationError("need at least one party")
    shares = [rng.randrange(PRIME) for _ in range(parties - 1)]
    last = (value - sum(shares)) % PRIME
    return shares + [last]


def combine_additive(shares: list[int]) -> int:
    """Sum additive shares back into the value mod PRIME."""
    return sum(shares) % PRIME


def encode_signed(value: int) -> int:
    """Embed a (possibly negative) bounded integer into the field.

    Values in ``[-PRIME//2, PRIME//2)`` round-trip through
    :func:`decode_signed`.
    """
    return value % PRIME


def decode_signed(element: int) -> int:
    """Inverse of :func:`encode_signed`."""
    if element >= PRIME // 2:
        return element - PRIME
    return element
