"""Synchronization with the encrypted cloud vault and terminal access."""

from .accountability import AccountabilityService, ReceivedTrail
from .recovery import (
    Guardian,
    enroll_guardians,
    recover_cell,
    refresh_guardian_seq,
)
from .replicator import ReplicationStats, Replicator
from .terminal import LeakyTerminal, UntrustedTerminal
from .vault import VaultClient

__all__ = [
    "AccountabilityService",
    "ReceivedTrail",
    "ReplicationStats",
    "Replicator",
    "Guardian",
    "enroll_guardians",
    "recover_cell",
    "refresh_guardian_seq",
    "LeakyTerminal",
    "UntrustedTerminal",
    "VaultClient",
]
