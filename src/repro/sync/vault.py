"""Cell ↔ cloud vault synchronization.

Each cell outsources its sealed envelopes to the cloud under
``vault/<cell>/<object-id>``, keeping only integrity anchors in
tamper-resistant memory:

* the latest version number per object (anti-rollback: a returned
  envelope older than the anchor is a replay, by construction);
* a Merkle root over the whole vault manifest (so a *set-level* check
  can prove nothing was dropped).

Detection turns into conviction: every integrity failure is filed with
the provider as evidence (:meth:`CloudProvider.file_evidence`) before
the error propagates — exactly the paper's deterrence mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.merkle import MerkleTree
from ..errors import IntegrityError, NotFoundError, ReplayError, TransientCloudError
from ..faults.retry import RetryPolicy, retry_call
from ..infrastructure.cloud import CloudProvider
from ..policy.sticky import DataEnvelope
from ..core.cell import TrustedCell


@dataclass
class BatchPushReport:
    """Outcome of one :meth:`VaultClient.push_many` call."""

    pushed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)  # object_id -> reason
    manifest_written: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed


class VaultClient:
    """Synchronizes one cell's envelopes with its encrypted cloud vault.

    ``retry_policy`` makes every cloud round-trip resilient to
    *transient* operational failures (the fault plane's
    :class:`~repro.errors.TransientCloudError`): the call is retried
    with exponential backoff before the error reaches the caller.
    Integrity failures are never retried — they are evidence, and
    retrying would mask the very signal the paper requires.
    """

    def __init__(self, cell: TrustedCell, cloud: CloudProvider,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.cell = cell
        self.cloud = cloud
        self.retry_policy = retry_policy
        self._retry_rng = cell.world.rng(f"vault-retry:{cell.name}")
        self.pushes = 0
        self.fetches = 0
        self.bytes_pushed = 0
        self.detections: list[dict] = []
        obs = cell.world.obs
        self._obs = obs
        self._pushes_metric = obs.metrics.counter(
            "vault.pushes", help="envelopes pushed to cloud vaults")
        self._push_bytes_metric = obs.metrics.counter(
            "vault.bytes_pushed", help="envelope bytes pushed to cloud vaults")
        self._fetches_metric = obs.metrics.counter(
            "vault.fetches", help="envelopes fetched from cloud vaults")
        self._detections_metric = obs.metrics.counter(
            "vault.detections", help="integrity violations filed as evidence")

    # -- key naming -----------------------------------------------------------

    def vault_key(self, object_id: str, cell_name: str | None = None) -> str:
        return f"vault/{cell_name or self.cell.name}/{object_id}"

    # -- resilient cloud I/O ---------------------------------------------------

    def _cloud_put(self, key: str, data: bytes) -> None:
        if self.retry_policy is None:
            self.cloud.put_object(key, data)
            return
        retry_call(
            lambda: self.cloud.put_object(key, data),
            policy=self.retry_policy, obs=self._obs, rng=self._retry_rng,
            operation="vault.put",
        )

    def _cloud_get(self, key: str) -> bytes:
        if self.retry_policy is None:
            return self.cloud.get_object(key)
        # NotFoundError is NOT transient: a miss (or an adversarial
        # drop) must surface immediately so the anchor check can file it
        return retry_call(
            lambda: self.cloud.get_object(key),
            policy=self.retry_policy, obs=self._obs, rng=self._retry_rng,
            operation="vault.get",
        )

    # -- push path ---------------------------------------------------------------

    def push(self, object_id: str) -> str:
        """Outsource one sealed envelope; returns its cloud key.

        Also records the object's version anchor in secure memory,
        refreshes the vault Merkle root, and rewrites the encrypted
        vault manifest (the object inventory a replacement device needs
        after recovery from escrow).
        """
        with self._obs.tracer.span(
            "vault.push", cell=self.cell.name, object_id=object_id
        ):
            envelope = self.cell.envelope_for(object_id)
            key = self.vault_key(object_id)
            self._cloud_put(key, envelope.to_bytes())
            self.cell.tee.store_secret(
                f"vault-version:{object_id}", envelope.version
            )
            self._refresh_manifest_root()
            self._write_manifest()
        self.pushes += 1
        self.bytes_pushed += envelope.size
        self._pushes_metric.inc()
        self._push_bytes_metric.inc(envelope.size)
        self._obs.events.emit(
            "vault.push", cell=self.cell.name, object_id=object_id,
            version=envelope.version, bytes=envelope.size,
        )
        return key

    def push_all(self) -> int:
        """Push every locally held envelope; returns the count."""
        count = 0
        for object_id in list(self.cell._envelopes):
            self.push(object_id)
            count += 1
        return count

    def push_many(self, object_ids, *,
                  raise_on_failure: bool = True) -> BatchPushReport:
        """Outsource N sealed envelopes with one manifest refresh.

        Stores the same cloud objects and the same secure-memory
        anchors as N :meth:`push` calls, but the Merkle-root refresh
        and the sealed-manifest write (the per-push fixed cost) are
        paid once for the whole batch — the manifest content is derived
        from the anchors, so only its sequence number differs from the
        unbatched path.

        With ``raise_on_failure=False``, transient cloud failures are
        collected per object instead of raised, and a failed manifest
        write marks the *whole* batch failed (pushes are idempotent;
        callers simply re-push, and the next successful batch rewrites
        the manifest from the anchors).
        """
        pushed: list[str] = []
        failed: dict[str, str] = {}
        batch_bytes = 0
        manifest_written = False
        with self._obs.tracer.span(
            "vault.push_many", cell=self.cell.name
        ):
            for object_id in object_ids:
                envelope = self.cell.envelope_for(object_id)
                try:
                    self._cloud_put(
                        self.vault_key(object_id), envelope.to_bytes()
                    )
                except TransientCloudError as error:
                    if raise_on_failure:
                        raise
                    failed[object_id] = type(error).__name__
                    continue
                self.cell.tee.store_secret(
                    f"vault-version:{object_id}", envelope.version
                )
                pushed.append(object_id)
                self.pushes += 1
                self.bytes_pushed += envelope.size
                batch_bytes += envelope.size
                self._pushes_metric.inc()
                self._push_bytes_metric.inc(envelope.size)
            if pushed:
                self._refresh_manifest_root()
                try:
                    self._write_manifest()
                    manifest_written = True
                except TransientCloudError as error:
                    if raise_on_failure:
                        raise
                    for object_id in pushed:
                        failed[object_id] = (
                            f"manifest write failed: {type(error).__name__}"
                        )
                    pushed = []
        self._obs.events.emit(
            "vault.push_batch", cell=self.cell.name, pushed=len(pushed),
            failed=len(failed), bytes=batch_bytes,
        )
        return BatchPushReport(
            pushed=pushed, failed=failed, manifest_written=manifest_written
        )

    def _manifest_leaves(self) -> list[bytes]:
        leaves = []
        for name in self.cell.tee.secure_memory.keys():
            if name.startswith("vault-version:"):
                object_id = name[len("vault-version:"):]
                version = self.cell.tee.load_secret(name)
                leaves.append(f"{object_id}@{version}".encode())
        return sorted(leaves)

    def _refresh_manifest_root(self) -> None:
        root = MerkleTree(self._manifest_leaves()).root
        self.cell.tee.store_secret("vault-root", root)

    # -- encrypted vault manifest ---------------------------------------------

    MANIFEST_OBJECT = "__manifest__"

    @property
    def manifest_seq(self) -> int:
        """Monotone sequence number of the last manifest written."""
        return self.cell.tee.load_secret("vault-manifest-seq", 0)

    def _manifest_objects(self) -> dict[str, int]:
        objects: dict[str, int] = {}
        for name in self.cell.tee.secure_memory.keys():
            if name.startswith("vault-version:"):
                object_id = name[len("vault-version:"):]
                objects[object_id] = self.cell.tee.load_secret(name)
        return objects

    def _write_manifest(self) -> None:
        import json

        seq = self.manifest_seq + 1
        self.cell.tee.store_secret("vault-manifest-seq", seq)
        payload = json.dumps(
            {"seq": seq, "objects": self._manifest_objects()}, sort_keys=True
        ).encode()
        from ..crypto.aead import seal

        header = f"manifest|{self.cell.name}|{seq}".encode()
        blob = seal(
            self.cell.tee.keys.derive("vault-manifest"),
            payload,
            header=header,
            nonce_seed=header,
        )
        self._cloud_put(self.vault_key(self.MANIFEST_OBJECT), blob.to_bytes())

    def read_manifest(self, owner_cell: str | None = None) -> dict:
        """Fetch and decrypt the vault manifest (own vault by default).

        Returns ``{"seq": int, "objects": {object_id: version}}``;
        raises :class:`IntegrityError` on tampering.
        """
        import json

        from ..crypto.aead import SealedBlob, open_sealed

        key = self.vault_key(self.MANIFEST_OBJECT, owner_cell)
        data = self._cloud_get(key)
        try:
            blob = SealedBlob.from_bytes(data)
            payload = open_sealed(
                self.cell.tee.keys.derive("vault-manifest"), blob
            )
        except IntegrityError:
            self._file(key, "manifest tampering")
            raise
        return json.loads(payload.decode())

    # -- fetch path --------------------------------------------------------------

    def fetch(self, object_id: str, owner_cell: str | None = None) -> DataEnvelope:
        """Fetch an envelope, verifying structure and freshness.

        * malformed bytes or a failed AEAD check → evidence + raise
          :class:`IntegrityError`;
        * a version older than the anchored one → evidence + raise
          :class:`ReplayError`.

        ``owner_cell`` lets a recipient fetch from a *peer's* vault (the
        sharing protocol names the owner); freshness is then anchored
        by the version stated in the share offer, recorded by
        :meth:`anchor_version`.
        """
        key = self.vault_key(object_id, owner_cell)
        try:
            data = self._cloud_get(key)
        except NotFoundError:
            anchor = self.cell.tee.load_secret(f"vault-version:{object_id}")
            if anchor is not None:
                # We hold a version anchor, so the object was provably
                # stored: a denial is a drop attack, not a miss.
                self._file(key, "object denied though provably stored (drop)")
            raise
        try:
            envelope = DataEnvelope.from_bytes(data)
        except IntegrityError:
            self._file(key, "malformed envelope (tampering)")
            raise
        if envelope.object_id != object_id:
            self._file(key, "envelope id mismatch (substitution)")
            raise IntegrityError(
                f"cloud returned envelope for {envelope.object_id!r}, "
                f"wanted {object_id!r}"
            )
        anchor = self.cell.tee.load_secret(f"vault-version:{object_id}")
        if anchor is not None and envelope.version < anchor:
            self._file(key, f"stale version {envelope.version} < anchor {anchor}")
            raise ReplayError(
                f"rollback detected on {object_id!r}: version "
                f"{envelope.version} < anchored {anchor}"
            )
        self.fetches += 1
        self._fetches_metric.inc()
        return envelope

    def verified_fetch(self, object_id: str, owner_cell: str | None = None) -> DataEnvelope:
        """Fetch *and* authenticate by opening the envelope in the TEE.

        Catches byte-level tampering that structural parsing admits.
        The plaintext is discarded here; reads still go through the
        reference monitor.
        """
        envelope = self.fetch(object_id, owner_cell)
        key = self.cell.tee.keys.key_for(object_id, envelope.version)
        try:
            envelope.open(key)
        except IntegrityError:
            self._file(self.vault_key(object_id, owner_cell),
                       "AEAD failure (byte tampering)")
            raise
        return envelope

    def anchor_version(self, object_id: str, version: int) -> None:
        """Record the minimum acceptable version for an object.

        Used by the sharing protocol: the share offer states the
        version, so the recipient can detect the cloud serving an older
        (possibly policy-weaker) envelope.
        """
        self.cell.tee.store_secret(f"vault-version:{object_id}", version)

    # -- lifecycle ------------------------------------------------------------------

    def install_fetcher(self, owner_cell: str | None = None) -> None:
        """Let the cell's read path fall back to the vault transparently."""
        self.cell.envelope_fetcher = (
            lambda object_id: self.verified_fetch(object_id, owner_cell)
        )

    def evict_local(self, object_id: str) -> None:
        """Drop the local copy (cache management on small cells).

        The object remains readable through the vault fetcher; evicting
        an object that was never pushed would lose data, so that is an
        error.
        """
        key = self.vault_key(object_id)
        if not self.cloud.contains(key):
            raise NotFoundError(
                f"refusing to evict {object_id!r}: not in the cloud vault"
            )
        self.cell._envelopes.pop(object_id, None)

    def restore_all(self) -> int:
        """Re-populate local storage from the vault (device replacement).

        Uses the secure-memory anchors as the authoritative object
        list; returns the number restored.
        """
        count = 0
        for name in self.cell.tee.secure_memory.keys():
            if name.startswith("vault-version:"):
                object_id = name[len("vault-version:"):]
                self.cell._envelopes[object_id] = self.verified_fetch(object_id)
                count += 1
        return count

    # -- evidence -----------------------------------------------------------------

    def _file(self, key: str, reason: str) -> None:
        self.detections.append({"key": key, "reason": reason, "at": self.cell.world.now})
        self._detections_metric.inc()
        self._obs.events.emit(
            "vault.detect", cell=self.cell.name, key=key, reason=reason
        )
        self.cloud.file_evidence(self.cell.name, key, reason)
