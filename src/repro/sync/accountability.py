"""Delivering accountability to data owners.

Two paper mechanisms that close the usage-control loop:

* **Obligation notifications** — "informing the owner of the precise
  access date" (footnote 6). Enforcing cells queue notifications in
  their outbox; this service seals each one under the pairwise key
  with the owner's cell and posts it to the owner's cloud mailbox.
* **Audit-trail push** — "the recipient trusted cell can maintain an
  audit log, encrypt it and push it on the Cloud to the destination of
  the originator trusted cell." The service seals the per-object slice
  of the local audit log for the originator, who verifies the hash
  chain on receipt.

Both run over the same untrusted mailboxes as sharing: the cloud
relays ciphertext and learns only which cell talks to which.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..core.cell import TrustedCell
from ..crypto.aead import SealedBlob, open_sealed, seal
from ..errors import ProtocolError
from ..infrastructure.cloud import CloudProvider
from ..policy.audit import AuditEntry, AuditLog


def _notify_box(cell_name: str) -> str:
    return f"notify/{cell_name}"


def _trail_box(cell_name: str) -> str:
    return f"audit-trail/{cell_name}"


@dataclass(frozen=True)
class ReceivedTrail:
    """One verified audit-log segment pushed by an enforcing cell."""

    from_cell: str
    object_id: str
    entries: tuple[AuditEntry, ...]
    chain_ok: bool


class AccountabilityService:
    """One cell's endpoint for notification/trail exchange.

    ``owner_cell_of`` maps a user id (policy owner) to the cell that
    receives their notifications — the directory a deployment would
    keep in the user's digital-space profile.
    """

    def __init__(
        self,
        cell: TrustedCell,
        cloud: CloudProvider,
        owner_cell_of: dict[str, str] | None = None,
    ) -> None:
        self.cell = cell
        self.cloud = cloud
        self.owner_cell_of = dict(owner_cell_of or {})
        self.notifications_received: list[dict[str, Any]] = []
        self.trails_received: list[ReceivedTrail] = []

    # -- outgoing: notifications ------------------------------------------------

    def flush_outbox(self) -> int:
        """Seal and deliver every queued obligation notification.

        Notifications whose owner has no known cell stay queued (they
        must not be lost); returns the number delivered.
        """
        remaining: list[dict[str, Any]] = []
        delivered = 0
        for notification in self.cell.outbox:
            owner_cell_name = self.owner_cell_of.get(notification["to"])
            if owner_cell_name is None or not self.cell.registry.knows_principal(
                owner_cell_name
            ):
                remaining.append(notification)
                continue
            peer = self.cell.registry.principal(owner_cell_name)
            pairwise = self.cell.tee.keys.pairwise_key(peer.exchange_public)
            payload = json.dumps(notification, sort_keys=True).encode()
            blob = seal(
                pairwise, payload, header=b"notification",
                nonce_seed=f"{self.cell.name}|{delivered}|"
                           f"{notification['timestamp']}".encode(),
            )
            self.cloud.post_message(
                _notify_box(owner_cell_name), self.cell.name, blob.to_bytes()
            )
            delivered += 1
        self.cell.outbox[:] = remaining
        return delivered

    # -- outgoing: audit trails ----------------------------------------------------

    def push_trail(self, object_id: str, owner_cell_name: str) -> int:
        """Seal this cell's audit slice for one object and post it.

        Returns the number of entries pushed.
        """
        if not self.cell.registry.knows_principal(owner_cell_name):
            raise ProtocolError(f"unknown owner cell {owner_cell_name!r}")
        peer = self.cell.registry.principal(owner_cell_name)
        pairwise = self.cell.tee.keys.pairwise_key(peer.exchange_public)
        blob = self.cell.audit.seal_for(pairwise, object_id=object_id)
        envelope = json.dumps(
            {"object_id": object_id, "segment": blob.to_bytes().hex()}
        ).encode()
        self.cloud.post_message(
            _trail_box(owner_cell_name), self.cell.name, envelope
        )
        return len(self.cell.audit.entries_for(object_id))

    # -- incoming -----------------------------------------------------------------

    def fetch_notifications(self) -> list[dict[str, Any]]:
        """Drain, decrypt and record incoming notifications."""
        fresh = []
        for sender, message in self.cloud.fetch_messages(
            _notify_box(self.cell.name)
        ):
            peer = self.cell.registry.principal(sender)
            pairwise = self.cell.tee.keys.pairwise_key(peer.exchange_public)
            payload = open_sealed(pairwise, SealedBlob.from_bytes(message))
            notification = json.loads(payload.decode())
            notification["_from_cell"] = sender
            fresh.append(notification)
        self.notifications_received.extend(fresh)
        return fresh

    def fetch_trails(self) -> list[ReceivedTrail]:
        """Drain, decrypt, and chain-verify incoming audit segments.

        Chain verification checks the pushed slice is an untampered,
        in-order excerpt of the sender's log. Per-object slices omit
        unrelated entries, so the check validates intra-slice linkage:
        sequence numbers strictly increase and hashes are internally
        consistent for adjacent entries.
        """
        fresh = []
        for sender, message in self.cloud.fetch_messages(
            _trail_box(self.cell.name)
        ):
            peer = self.cell.registry.principal(sender)
            pairwise = self.cell.tee.keys.pairwise_key(peer.exchange_public)
            try:
                body = json.loads(message.decode())
                blob = SealedBlob.from_bytes(bytes.fromhex(body["segment"]))
                entries = AuditLog.open_sealed_log(pairwise, blob)
            except (ValueError, KeyError) as exc:
                raise ProtocolError("malformed audit-trail push") from exc
            chain_ok = _slice_consistent(entries)
            received = ReceivedTrail(
                from_cell=sender,
                object_id=body["object_id"],
                entries=tuple(entries),
                chain_ok=chain_ok,
            )
            fresh.append(received)
        self.trails_received.extend(fresh)
        return fresh


def _slice_consistent(entries: list[AuditEntry]) -> bool:
    """Validity of a filtered slice: strictly increasing sequence
    numbers, and wherever two entries are adjacent in the *original*
    log (consecutive sequence numbers), the hash chain links them."""
    for earlier, later in zip(entries, entries[1:]):
        if later.sequence <= earlier.sequence:
            return False
        if later.sequence == earlier.sequence + 1:
            if later.previous_hash != earlier.entry_hash():
                return False
    return True
