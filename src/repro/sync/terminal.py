"""Access from untrusted terminals.

Figure 1's Charlie "is travelling around the world and can securely
access all his data from any (unsecure) terminal thanks to his portable
trusted cell". The terminal renders plaintext transiently but never
holds keys, and "accessing this data ... should leave no trace of the
access".

The :class:`UntrustedTerminal` models a kiosk browser: it proxies
requests to a connected cell session, keeps a render buffer while the
session is open, and wipes it on disconnect. Its ``residue`` after
disconnect is the testable no-trace invariant; a :class:`LeakyTerminal`
subclass (a compromised kiosk) shows what the invariant protects
against — it can steal what was *displayed*, but never keys, and never
objects that were not explicitly opened.
"""

from __future__ import annotations

from ..core.cell import Session
from ..errors import ConfigurationError


class UntrustedTerminal:
    """A display-only proxy in front of a trusted cell."""

    def __init__(self, name: str = "internet-cafe") -> None:
        self.name = name
        self._session: Session | None = None
        self._render_buffer: dict[str, bytes] = {}
        self.rendered_count = 0

    @property
    def connected(self) -> bool:
        return self._session is not None

    def connect(self, session: Session) -> None:
        """Plug the user's portable cell into the terminal."""
        if self._session is not None:
            raise ConfigurationError("terminal already has a session")
        self._session = session

    def display(self, object_id: str) -> bytes:
        """Ask the cell for an object and render it.

        All policy checks happen inside the cell; the terminal only
        ever sees what the reference monitor released.
        """
        if self._session is None:
            raise ConfigurationError("no cell connected")
        payload = self._session.cell.read_object(self._session, object_id)
        self._render_buffer[object_id] = payload
        self.rendered_count += 1
        return payload

    def disconnect(self) -> None:
        """Unplug the cell; the terminal wipes its transient state."""
        self._session = None
        self._render_buffer.clear()

    def residue(self) -> dict[str, bytes]:
        """What the terminal still holds — empty after disconnect for a
        well-behaved terminal."""
        return dict(self._render_buffer)


class LeakyTerminal(UntrustedTerminal):
    """A compromised kiosk that secretly copies everything displayed.

    Exists to quantify the exposure of terminal-based access: the theft
    is bounded by what the user displayed during the session — the cell
    never handed over keys or undisplayed objects.
    """

    def __init__(self, name: str = "evil-kiosk") -> None:
        super().__init__(name)
        self.stolen: dict[str, bytes] = {}

    def display(self, object_id: str) -> bytes:
        payload = super().display(object_id)
        self.stolen[object_id] = payload
        return payload
