"""Background replication for weakly connected cells.

"Some trusted sources being weakly connected to the Internet;
asynchrony problems must also be addressed."

The :class:`Replicator` runs on the simulation event loop: every
``period`` seconds it wakes, samples the cell's connectivity (from its
hardware profile's availability, or an explicit override), and pushes
every envelope whose version is newer than what the vault last saw.
It tracks *staleness* — how long a dirty object waited before reaching
the vault — which is the quantity weak connectivity actually degrades.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..sim.events import EventHandle
from .vault import VaultClient


@dataclass
class ReplicationStats:
    ticks: int = 0
    offline_ticks: int = 0
    objects_pushed: int = 0
    max_staleness: int = 0  # seconds a dirty object waited, worst case
    staleness_samples: list[int] = field(default_factory=list)

    @property
    def mean_staleness(self) -> float:
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)


class Replicator:
    """Periodic cell→vault synchronization with availability sampling."""

    def __init__(
        self,
        vault: VaultClient,
        period: int = 3600,
        availability: float | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if period < 1:
            raise ConfigurationError("replication period must be >= 1 second")
        self.vault = vault
        self.cell = vault.cell
        self.period = period
        self.availability = (
            availability
            if availability is not None
            else self.cell.profile.availability
        )
        if not 0.0 <= self.availability <= 1.0:
            raise ConfigurationError("availability must be a probability")
        self._rng = rng or self.cell.world.rng(f"replicator:{self.cell.name}")
        self._pushed_versions: dict[str, int] = {}
        self._dirty_since: dict[str, int] = {}
        self.stats = ReplicationStats()
        self._handle: EventHandle | None = None
        obs = self.cell.world.obs
        self._obs = obs
        self._ticks_metric = obs.metrics.counter(
            "sync.ticks", help="replicator wake-ups",
            labelnames=("outcome",))
        self._pushed_metric = obs.metrics.counter(
            "sync.objects_pushed", help="dirty objects replicated")
        self._staleness_metric = obs.metrics.histogram(
            "sync.staleness_seconds",
            help="seconds a dirty object waited before reaching the vault",
            buckets=(60, 300, 900, 3600, 4 * 3600, 24 * 3600, float("inf")),
        )

    # -- dirtiness tracking --------------------------------------------------

    def dirty_objects(self) -> list[str]:
        """Objects whose local version is ahead of the vault's."""
        now = self.cell.world.now
        dirty = []
        for object_id, envelope in self.cell._envelopes.items():
            if self._pushed_versions.get(object_id) != envelope.version:
                dirty.append(object_id)
                self._dirty_since.setdefault(object_id, now)
        return sorted(dirty)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin ticking on the world's event loop."""
        if self._handle is not None:
            raise ConfigurationError("replicator already started")
        self._handle = self.cell.world.loop.schedule_every(
            self.period, self.tick, label=f"replicate {self.cell.name}"
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- one replication round --------------------------------------------------

    def tick(self) -> int:
        """One wake-up: push everything dirty if the uplink is up.

        Returns the number of objects pushed this round.
        """
        self.stats.ticks += 1
        dirty = self.dirty_objects()
        if self._rng.random() >= self.availability:
            self.stats.offline_ticks += 1
            self._ticks_metric.labels(outcome="offline").inc()
            self._obs.events.emit(
                "sync.tick", cell=self.cell.name, outcome="offline",
                dirty=len(dirty),
            )
            return 0
        now = self.cell.world.now
        pushed = 0
        with self._obs.tracer.span(
            "sync.tick", cell=self.cell.name, dirty=len(dirty)
        ):
            for object_id in dirty:
                self.vault.push(object_id)
                self._pushed_versions[object_id] = (
                    self.cell._envelopes[object_id].version
                )
                waited = now - self._dirty_since.pop(object_id, now)
                self.stats.staleness_samples.append(waited)
                self.stats.max_staleness = max(self.stats.max_staleness, waited)
                self._staleness_metric.observe(waited)
                pushed += 1
        self.stats.objects_pushed += pushed
        self._ticks_metric.labels(outcome="online").inc()
        self._pushed_metric.inc(pushed)
        self._obs.events.emit(
            "sync.tick", cell=self.cell.name, outcome="online", pushed=pushed
        )
        return pushed

    @property
    def converged(self) -> bool:
        """True iff the vault holds the newest version of everything."""
        return not self.dirty_objects()
