"""Background replication for weakly connected cells.

"Some trusted sources being weakly connected to the Internet;
asynchrony problems must also be addressed."

The :class:`Replicator` runs on the simulation event loop: every
``period`` seconds it wakes, samples the cell's connectivity (from its
hardware profile's availability, an explicit override, or a live
``online_check`` such as the network's churn state), and pushes every
envelope whose version is newer than what the vault last saw. It
tracks *staleness* — how long a dirty object waited before reaching
the vault — which is the quantity weak connectivity actually degrades.

Transient cloud failures (the fault plane's
:class:`~repro.errors.TransientCloudError`) never abort a round: the
failed object stays dirty, the rest of the batch still pushes, and —
when a ``retry_policy`` is set — a dedicated backoff retry is scheduled
on the event loop so the object does not have to wait a full period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError, TransientCloudError
from ..faults.retry import RetryPolicy
from ..sim.events import EventHandle
from .vault import VaultClient


@dataclass
class ReplicationStats:
    ticks: int = 0
    offline_ticks: int = 0
    objects_pushed: int = 0
    push_failures: int = 0  # transient failures absorbed (object kept dirty)
    deferred_retries: int = 0  # backoff retries scheduled on the loop
    max_staleness: int = 0  # seconds a dirty object waited, worst case
    staleness_samples: list[int] = field(default_factory=list)

    @property
    def mean_staleness(self) -> float:
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)


class Replicator:
    """Periodic cell→vault synchronization with availability sampling."""

    def __init__(
        self,
        vault: VaultClient,
        period: int = 3600,
        availability: float | None = None,
        rng: random.Random | None = None,
        retry_policy: RetryPolicy | None = None,
        online_check: Callable[[], bool] | None = None,
        batch: bool = False,
    ) -> None:
        """``online_check`` (when given) replaces the Bernoulli
        availability draw with a live predicate — e.g. the network's
        churned online state for this cell's endpoint — so connectivity
        and the fault plane share one source of truth.

        ``batch=True`` pushes each round's dirty set through
        :meth:`VaultClient.push_many` (one manifest refresh per round
        instead of one per object); failures keep per-object
        bookkeeping, so backoff retries behave as in the unbatched
        path."""
        if period < 1:
            raise ConfigurationError("replication period must be >= 1 second")
        self.vault = vault
        self.cell = vault.cell
        self.period = period
        self.retry_policy = retry_policy
        self.online_check = online_check
        self.batch = batch
        self.availability = (
            availability
            if availability is not None
            else self.cell.profile.availability
        )
        if not 0.0 <= self.availability <= 1.0:
            raise ConfigurationError("availability must be a probability")
        self._rng = rng or self.cell.world.rng(f"replicator:{self.cell.name}")
        self._retry_rng = self.cell.world.rng(
            f"replicator-retry:{self.cell.name}"
        )
        self._pushed_versions: dict[str, int] = {}
        self._dirty_since: dict[str, int] = {}
        self._retry_attempts: dict[str, int] = {}
        self.stats = ReplicationStats()
        self._handle: EventHandle | None = None
        obs = self.cell.world.obs
        self._obs = obs
        self._ticks_metric = obs.metrics.counter(
            "sync.ticks", help="replicator wake-ups",
            labelnames=("outcome",))
        self._pushed_metric = obs.metrics.counter(
            "sync.objects_pushed", help="dirty objects replicated")
        self._failures_metric = obs.metrics.counter(
            "sync.push_failures",
            help="transient push failures absorbed by the replicator")
        self._staleness_metric = obs.metrics.histogram(
            "sync.staleness_seconds",
            help="seconds a dirty object waited before reaching the vault",
            buckets=(60, 300, 900, 3600, 4 * 3600, 24 * 3600, float("inf")),
        )

    # -- dirtiness tracking --------------------------------------------------

    def dirty_objects(self) -> list[str]:
        """Objects whose local version is ahead of the vault's.

        Also prunes ``_dirty_since`` entries whose object no longer
        exists or is no longer dirty (deleted, evicted, or pushed out
        of band before an online tick) — without the prune those
        entries would accumulate forever on churny cells.
        """
        now = self.cell.world.now
        dirty = []
        for object_id, envelope in self.cell._envelopes.items():
            if self._pushed_versions.get(object_id) != envelope.version:
                dirty.append(object_id)
                self._dirty_since.setdefault(object_id, now)
        dirty_set = set(dirty)
        for object_id in list(self._dirty_since):
            if object_id not in dirty_set:
                del self._dirty_since[object_id]
        return sorted(dirty)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin ticking on the world's event loop."""
        if self._handle is not None:
            raise ConfigurationError("replicator already started")
        self._handle = self.cell.world.loop.schedule_every(
            self.period, self.tick, label=f"replicate {self.cell.name}"
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- connectivity ----------------------------------------------------------

    def _is_online(self) -> bool:
        if self.online_check is not None:
            return bool(self.online_check())
        return self._rng.random() < self.availability

    # -- one replication round --------------------------------------------------

    def _push_one(self, object_id: str) -> bool:
        """Push one dirty object; returns True on success.

        A transient failure is absorbed: the object stays dirty, the
        failure is counted, and (with a retry policy) a backoff retry
        is scheduled so the object need not wait for the next period.
        """
        try:
            self.vault.push(object_id)
        except TransientCloudError as error:
            self.stats.push_failures += 1
            self._failures_metric.inc()
            self._obs.events.emit(
                "sync.push_failed", cell=self.cell.name,
                object_id=object_id, error=type(error).__name__,
            )
            self._schedule_backoff(object_id)
            return False
        envelope = self.cell._envelopes.get(object_id)
        if envelope is not None:
            self._pushed_versions[object_id] = envelope.version
        self._retry_attempts.pop(object_id, None)
        now = self.cell.world.now
        waited = now - self._dirty_since.pop(object_id, now)
        self.stats.staleness_samples.append(waited)
        self.stats.max_staleness = max(self.stats.max_staleness, waited)
        self._staleness_metric.observe(waited)
        return True

    def _push_batch(self, dirty: list[str]) -> tuple[int, int]:
        """Push a round's dirty set in one vault batch; returns
        ``(pushed, failed)`` with the same per-object bookkeeping
        (versions, staleness, backoff scheduling) as the unbatched
        path."""
        report = self.vault.push_many(dirty, raise_on_failure=False)
        now = self.cell.world.now
        for object_id in report.pushed:
            envelope = self.cell._envelopes.get(object_id)
            if envelope is not None:
                self._pushed_versions[object_id] = envelope.version
            self._retry_attempts.pop(object_id, None)
            waited = now - self._dirty_since.pop(object_id, now)
            self.stats.staleness_samples.append(waited)
            self.stats.max_staleness = max(self.stats.max_staleness, waited)
            self._staleness_metric.observe(waited)
        for object_id, reason in report.failed.items():
            self.stats.push_failures += 1
            self._failures_metric.inc()
            self._obs.events.emit(
                "sync.push_failed", cell=self.cell.name,
                object_id=object_id, error=reason,
            )
            self._schedule_backoff(object_id)
        return len(report.pushed), len(report.failed)

    def _schedule_backoff(self, object_id: str) -> None:
        if self.retry_policy is None:
            return  # degrade to the next periodic tick
        attempt = self._retry_attempts.get(object_id, 0) + 1
        if attempt >= self.retry_policy.max_attempts:
            # budget exhausted: fall back to the periodic tick; reset so
            # the next tick's failure starts a fresh backoff ladder
            self._retry_attempts.pop(object_id, None)
            self._obs.metrics.counter(
                "retry.exhausted",
                help="retry episodes that gave up after max_attempts",
                labelnames=("op",),
            ).labels(op="sync.push").inc()
            self._obs.events.emit(
                "retry.exhausted", op="sync.push", object_id=object_id,
                attempts=attempt,
            )
            return
        self._retry_attempts[object_id] = attempt
        delay = max(1, round(
            self.retry_policy.delay_for(attempt, self._retry_rng)
        ))
        self.stats.deferred_retries += 1
        self._obs.metrics.counter(
            "retry.attempts",
            help="re-attempts after transient failures",
            labelnames=("op",),
        ).labels(op="sync.push").inc()
        self._obs.events.emit(
            "retry.attempt", op="sync.push", object_id=object_id,
            attempt=attempt + 1, backoff_s=delay,
        )
        self.cell.world.loop.schedule_in(
            delay, lambda: self._retry_push(object_id),
            label=f"retry push {self.cell.name}/{object_id}",
        )

    def _retry_push(self, object_id: str) -> None:
        """A deferred backoff retry for one object (sim-time backoff)."""
        if object_id not in self.dirty_objects():
            self._retry_attempts.pop(object_id, None)
            return  # superseded, deleted, or already pushed by a tick
        if not self._is_online():
            # still disconnected: keep climbing the backoff ladder
            self._schedule_backoff(object_id)
            return
        if self._push_one(object_id):
            self.stats.objects_pushed += 1
            self._pushed_metric.inc()
            self._obs.events.emit(
                "sync.retry_push", cell=self.cell.name, object_id=object_id,
            )

    def tick(self) -> int:
        """One wake-up: push everything dirty if the uplink is up.

        Returns the number of objects pushed this round. Transient
        failures never abort the batch: the failed object stays dirty
        and the remaining objects still push.
        """
        self.stats.ticks += 1
        dirty = self.dirty_objects()
        if not self._is_online():
            self.stats.offline_ticks += 1
            self._ticks_metric.labels(outcome="offline").inc()
            self._obs.events.emit(
                "sync.tick", cell=self.cell.name, outcome="offline",
                dirty=len(dirty),
            )
            return 0
        pushed = 0
        failed = 0
        with self._obs.tracer.span(
            "sync.tick", cell=self.cell.name, dirty=len(dirty)
        ):
            if self.batch and dirty:
                pushed, failed = self._push_batch(dirty)
            else:
                for object_id in dirty:
                    if self._push_one(object_id):
                        pushed += 1
                    else:
                        failed += 1
        self.stats.objects_pushed += pushed
        self._ticks_metric.labels(outcome="online").inc()
        self._pushed_metric.inc(pushed)
        self._obs.events.emit(
            "sync.tick", cell=self.cell.name, outcome="online", pushed=pushed,
            failed=failed,
        )
        return pushed

    @property
    def converged(self) -> bool:
        """True iff the vault holds the newest version of everything."""
        return not self.dirty_objects()
