"""Escrow and device-loss recovery.

"secret management ... must be carefully designed (e.g., class-breaking
attacks must be prevented, master secrets must be restorable in case of
crash/loss of a trusted cell)."

Protocol:

* **Enrollment** — the cell Shamir-splits its master secret among
  guardian cells (friends' cells, or a citizen-association service);
  each guardian stores its share — and the hash of the owner's
  recovery passphrase — in tamper-resistant memory. Fewer than
  ``threshold`` guardians learn nothing (and a class-break is
  impossible: shares reconstruct *one* cell's master, not a fleet's).
* **Refresh** — on every vault push the cell's manifest sequence
  advances; guardians are periodically told the latest value so a
  malicious cloud cannot serve a stale manifest to a fresh device
  (rollback across total loss).
* **Recovery** — the owner proves knowledge of the passphrase to at
  least ``threshold`` guardians, reconstructs the key ring inside the
  replacement device, fetches + decrypts the vault manifest, checks
  its sequence against the guardians' floor, re-anchors every object
  version and restores the envelopes.

Imported (shared-in) keys are *not* recoverable — peers must re-share,
as :meth:`KeyRing.restore_from_shares` documents.
"""

from __future__ import annotations

import json
import random

from ..core.cell import TrustedCell
from ..crypto import shamir
from ..crypto.keys import KeyRing
from ..crypto.primitives import sha256
from ..errors import AuthenticationError, ProtocolError, ReplayError
from ..hardware.profiles import HardwareProfile
from ..infrastructure.cloud import CloudProvider
from ..sim.world import World
from .vault import VaultClient


def _serialize_share(share_list: list[shamir.Share]) -> bytes:
    return json.dumps([[share.x, share.y] for share in share_list]).encode()


def _deserialize_share(data: bytes) -> list[shamir.Share]:
    return [shamir.Share(x, y) for x, y in json.loads(data.decode())]


class Guardian:
    """A guardian cell's escrow endpoint."""

    def __init__(self, cell: TrustedCell) -> None:
        self.cell = cell

    def store_share(
        self,
        owner_name: str,
        share: list[shamir.Share],
        passphrase_hash: bytes,
        manifest_seq: int,
    ) -> None:
        self.cell.tee.store_secret(f"escrow-share:{owner_name}", _serialize_share(share))
        self.cell.tee.store_secret(f"escrow-auth:{owner_name}", passphrase_hash)
        self.cell.tee.store_secret(f"escrow-seq:{owner_name}", manifest_seq)

    def update_seq(self, owner_name: str, manifest_seq: int) -> None:
        current = self.cell.tee.load_secret(f"escrow-seq:{owner_name}", 0)
        if manifest_seq > current:
            self.cell.tee.store_secret(f"escrow-seq:{owner_name}", manifest_seq)

    def release_share(
        self, owner_name: str, passphrase: str
    ) -> tuple[list[shamir.Share], int]:
        """Release the share to someone who knows the passphrase.

        Guardians refuse (and audit) wrong passphrases: this is the
        human-in-the-loop step a real deployment would make stronger.
        """
        expected = self.cell.tee.load_secret(f"escrow-auth:{owner_name}")
        if expected is None:
            raise ProtocolError(
                f"{self.cell.name!r} holds no escrow for {owner_name!r}"
            )
        if sha256(passphrase.encode()) != expected:
            self.cell.audit.append(
                self.cell.world.now, owner_name, f"escrow:{owner_name}",
                "release-share", False, reason="bad passphrase",
            )
            raise AuthenticationError("escrow passphrase rejected")
        self.cell.audit.append(
            self.cell.world.now, owner_name, f"escrow:{owner_name}",
            "release-share", True,
        )
        share = _deserialize_share(
            self.cell.tee.load_secret(f"escrow-share:{owner_name}")
        )
        return share, self.cell.tee.load_secret(f"escrow-seq:{owner_name}", 0)


def enroll_guardians(
    cell: TrustedCell,
    guardians: list[Guardian],
    threshold: int,
    passphrase: str,
    rng: random.Random,
) -> None:
    """Split the cell's master among guardians."""
    if threshold < 2:
        raise ProtocolError("recovery threshold must be at least 2")
    shares = cell.tee.keys.export_master_shares(len(guardians), threshold, rng)
    passphrase_hash = sha256(passphrase.encode())
    for guardian, share in zip(guardians, shares):
        guardian.store_share(cell.name, share, passphrase_hash, 0)


def refresh_guardian_seq(
    vault: VaultClient, guardians: list[Guardian]
) -> None:
    """Tell guardians the latest manifest sequence (anti-rollback floor)."""
    for guardian in guardians:
        guardian.update_seq(vault.cell.name, vault.manifest_seq)


def recover_cell(
    world: World,
    lost_cell_name: str,
    profile: HardwareProfile,
    guardians: list[Guardian],
    passphrase: str,
    cloud: CloudProvider,
    registry=None,
) -> tuple[TrustedCell, VaultClient]:
    """Provision a replacement device from escrow + the cloud vault.

    Returns the restored cell (same name, same key material, hence the
    same principal identity) and its vault client, with all envelopes
    back in local storage. Pass ``registry`` to carry trust anchors
    (known authorities/peers) onto the replacement device; otherwise
    they must be re-introduced out of band, like on a new phone.
    """
    collected: list[list[shamir.Share]] = []
    seq_floor = 0
    for guardian in guardians:
        try:
            share, seq = guardian.release_share(lost_cell_name, passphrase)
        except (ProtocolError, AuthenticationError):
            continue
        collected.append(share)
        seq_floor = max(seq_floor, seq)
    if not collected:
        raise ProtocolError("no guardian released a share")
    ring = KeyRing.restore_from_shares(collected)
    cell = TrustedCell(world, lost_cell_name, profile, registry=registry,
                       key_ring=ring)
    vault = VaultClient(cell, cloud)
    manifest = vault.read_manifest()
    if manifest["seq"] < seq_floor:
        raise ReplayError(
            f"vault manifest rolled back: seq {manifest['seq']} < "
            f"guardian floor {seq_floor}"
        )
    cell.tee.store_secret("vault-manifest-seq", manifest["seq"])
    for object_id, version in manifest["objects"].items():
        cell.tee.store_secret(f"vault-version:{object_id}", version)
    vault.restore_all()
    # Rebuild the metadata catalog from the restored envelopes (opened
    # inside the TEE; acquisition details like keywords are gone, the
    # data and its sticky policies are not).
    for object_id, version in manifest["objects"].items():
        envelope = cell._envelopes[object_id]
        payload, policy = envelope.open(cell.tee.keys.key_for(object_id, version))
        cell.catalog.collection("objects").insert(
            object_id,
            {
                "owner": policy.owner,
                "version": version,
                "kind": "restored",
                "size": len(payload),
                "created_at": world.now,
                "keywords": "",
            },
        )
    return cell, vault
