"""Hardware profiles for the classes of trusted cells the paper names.

The paper grounds its vision in "secure smart phones, set-top boxes,
secure portable tokens or smart cards" plus sensor-attached cells. Each
profile captures the resource envelope that the embedded data-management
challenges hinge on ("a microcontroller with tiny RAM, connected to NAND
Flash chips"): CPU rate, RAM, tamper-resistant storage budget, flash
timings and connectivity.

Numbers are order-of-magnitude figures for circa-2012 hardware; the
experiments depend on their *ratios* (token is ~100x slower than a
gateway, has ~10000x less RAM), not on absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FlashTimings:
    """NAND flash timing/geometry/energy parameters."""

    page_size: int  # bytes
    pages_per_block: int
    read_page_us: float  # microseconds to read one page
    write_page_us: float  # microseconds to program one page
    erase_block_us: float  # microseconds to erase one block
    read_page_uj: float = 30.0  # microjoules per page read
    write_page_uj: float = 150.0  # microjoules per page program
    erase_block_uj: float = 1500.0  # microjoules per block erase

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.pages_per_block <= 0:
            raise ConfigurationError("flash geometry must be positive")


@dataclass(frozen=True)
class HardwareProfile:
    """Resource envelope of one class of trusted cell."""

    name: str
    cpu_ops_per_second: float  # abstract "record operations" per second
    ram_bytes: int  # working RAM available to the data engine
    secure_memory_bytes: int  # tamper-resistant storage for secrets
    flash: FlashTimings
    flash_bytes: int  # total mass storage
    attack_cost: float  # abstract cost units to physically breach
    availability: float  # probability the cell is reachable at any time
    uplink_bytes_per_second: float
    network_latency_ms: float
    cpu_nj_per_op: float = 0.2  # nanojoules per abstract record op

    def __post_init__(self) -> None:
        if not 0.0 <= self.availability <= 1.0:
            raise ConfigurationError("availability must be a probability")
        if self.cpu_ops_per_second <= 0:
            raise ConfigurationError("cpu rate must be positive")

    def cpu_seconds(self, operations: float) -> float:
        """Seconds of CPU time to execute ``operations`` record ops."""
        return operations / self.cpu_ops_per_second

    def cpu_energy_uj(self, operations: float) -> float:
        """Microjoules to execute ``operations`` record ops."""
        return operations * self.cpu_nj_per_op / 1000.0


# A secure portable token / smart card: the paper's hardest target.
SMART_TOKEN = HardwareProfile(
    name="smart-token",
    cpu_ops_per_second=2e6,
    ram_bytes=64 * 1024,
    secure_memory_bytes=4 * 1024,
    flash=FlashTimings(
        page_size=2048, pages_per_block=64,
        read_page_us=25.0, write_page_us=250.0, erase_block_us=1500.0,
    ),
    flash_bytes=4 * 1024**3,
    attack_cost=1_000_000.0,
    availability=0.30,  # mostly disconnected, as the PDS critique notes
    uplink_bytes_per_second=50 * 1024,
    network_latency_ms=80.0,
)

# A TrustZone smartphone.
SMARTPHONE = HardwareProfile(
    name="smartphone",
    cpu_ops_per_second=2e8,
    ram_bytes=512 * 1024**2,
    secure_memory_bytes=64 * 1024,
    flash=FlashTimings(
        page_size=4096, pages_per_block=128,
        read_page_us=12.0, write_page_us=120.0, erase_block_us=1000.0,
    ),
    flash_bytes=32 * 1024**3,
    attack_cost=500_000.0,
    availability=0.85,
    uplink_bytes_per_second=1 * 1024**2,
    network_latency_ms=40.0,
)

# A set-top-box / home-gateway cell (Alice and Bob's energy butler host).
HOME_GATEWAY = HardwareProfile(
    name="home-gateway",
    cpu_ops_per_second=8e8,
    ram_bytes=2 * 1024**3,
    secure_memory_bytes=256 * 1024,
    flash=FlashTimings(
        page_size=4096, pages_per_block=128,
        read_page_us=10.0, write_page_us=100.0, erase_block_us=800.0,
    ),
    flash_bytes=256 * 1024**3,
    attack_cost=400_000.0,
    availability=0.99,
    uplink_bytes_per_second=4 * 1024**2,
    network_latency_ms=20.0,
)

# A sensor-attached cell (the Linky meter or the car's PAYD box):
# streams out, keeps a small certified buffer.
SENSOR_CELL = HardwareProfile(
    name="sensor-cell",
    cpu_ops_per_second=5e5,
    ram_bytes=16 * 1024,
    secure_memory_bytes=2 * 1024,
    flash=FlashTimings(
        page_size=512, pages_per_block=32,
        read_page_us=30.0, write_page_us=300.0, erase_block_us=2000.0,
    ),
    flash_bytes=64 * 1024**2,
    attack_cost=800_000.0,
    availability=0.98,  # mains-powered, permanently attached
    uplink_bytes_per_second=10 * 1024,
    network_latency_ms=100.0,
)

# A reference *untrusted* centralized server, used only by the breach-
# economics experiment (E6) as the baseline the paper argues against.
CENTRAL_SERVER = HardwareProfile(
    name="central-server",
    cpu_ops_per_second=1e10,
    ram_bytes=256 * 1024**3,
    secure_memory_bytes=0,
    flash=FlashTimings(
        page_size=4096, pages_per_block=256,
        read_page_us=5.0, write_page_us=50.0, erase_block_us=500.0,
    ),
    flash_bytes=100 * 1024**4,
    attack_cost=2_000_000.0,  # hardened datacenter, but one target
    availability=0.9999,
    uplink_bytes_per_second=1 * 1024**3,
    network_latency_ms=5.0,
)

PROFILES: dict[str, HardwareProfile] = {
    profile.name: profile
    for profile in (SMART_TOKEN, SMARTPHONE, HOME_GATEWAY, SENSOR_CELL, CENTRAL_SERVER)
}


def profile_by_name(name: str) -> HardwareProfile:
    """Look up a built-in profile by its name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown hardware profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
