"""Tamper-resistant memory.

The paper abstracts a trusted cell as, among other things, "a tamper-
resistant memory where cryptographic secrets are stored". This module
models that memory as a small byte-budgeted key/value store: the key
ring, Merkle roots, version counters and policy state live here, and
the budget (a few KiB on a token) is a real design constraint that
experiment E8 exercises.
"""

from __future__ import annotations

from typing import Any

from ..errors import CapacityError, NotFoundError, TamperedCellError


class TamperResistantMemory:
    """A capacity-limited store that survives only inside the secure
    perimeter.

    Values are arbitrary Python objects; their accounted size is the
    byte length for ``bytes``/``str`` and a fixed overhead otherwise
    (counters, small tuples). Once :meth:`mark_breached` is called the
    memory refuses all further access, modelling a cell whose secure
    hardware was destroyed during a physical attack; the attacker's
    *loot* is taken separately by the attack model before the breach is
    marked.
    """

    _OBJECT_OVERHEAD = 16

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise CapacityError("secure memory capacity cannot be negative")
        self.capacity_bytes = capacity_bytes
        self._items: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self._breached = False

    @staticmethod
    def _size_of(value: Any) -> int:
        if isinstance(value, bytes):
            return len(value)
        if isinstance(value, str):
            return len(value.encode())
        if isinstance(value, int):
            return max(8, (value.bit_length() + 7) // 8)
        return TamperResistantMemory._OBJECT_OVERHEAD

    def _check_intact(self) -> None:
        if self._breached:
            raise TamperedCellError("secure memory has been physically breached")

    @property
    def used_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def breached(self) -> bool:
        return self._breached

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``; replaces any existing value.

        Raises :class:`CapacityError` if the budget would be exceeded
        (the previous value, if any, is retained).
        """
        self._check_intact()
        new_size = self._size_of(value)
        projected = self.used_bytes - self._sizes.get(key, 0) + new_size
        if projected > self.capacity_bytes:
            raise CapacityError(
                f"secure memory over budget: {projected} > {self.capacity_bytes} bytes"
            )
        self._items[key] = value
        self._sizes[key] = new_size

    def get(self, key: str) -> Any:
        """Fetch the value under ``key``; raises if absent."""
        self._check_intact()
        try:
            return self._items[key]
        except KeyError:
            raise NotFoundError(f"no secure item named {key!r}") from None

    def get_or(self, key: str, default: Any = None) -> Any:
        """Fetch with a default instead of raising."""
        self._check_intact()
        return self._items.get(key, default)

    def contains(self, key: str) -> bool:
        self._check_intact()
        return key in self._items

    def delete(self, key: str) -> None:
        """Remove an item (idempotent)."""
        self._check_intact()
        self._items.pop(key, None)
        self._sizes.pop(key, None)

    def keys(self) -> list[str]:
        self._check_intact()
        return sorted(self._items)

    def mark_breached(self) -> dict[str, Any]:
        """Destroy the memory and return its final contents.

        Only the attack model calls this; the return value is what a
        physical attacker extracts.
        """
        loot = dict(self._items)
        self._items.clear()
        self._sizes.clear()
        self._breached = True
        return loot
