"""NAND-flash storage simulation with a cost model.

The embedded store (:mod:`repro.store`) persists records through this
layer so that experiment E8 can compare query costs across hardware
profiles. The model captures the NAND constraints that dominate
embedded database design:

* reads and writes happen in whole pages;
* pages must be written sequentially within a block;
* a page cannot be rewritten without erasing its whole block;
* erase is an order of magnitude slower than a write.

The device keeps byte-accurate page contents plus cumulative counters
(`reads`, `writes`, `erases`, `elapsed_us`) that the benchmarks report.
"""

from __future__ import annotations

from ..errors import CapacityError, ConfigurationError, StorageError
from .profiles import FlashTimings


class NandFlash:
    """A simulated NAND flash device.

    Addressing is by page number. The device enforces erase-before-
    rewrite and sequential-in-block programming; violating either raises
    :class:`StorageError`, which is how tests assert the embedded store
    respects flash discipline.
    """

    def __init__(self, timings: FlashTimings, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("flash capacity must be positive")
        self.timings = timings
        self.page_count = capacity_bytes // timings.page_size
        if self.page_count < timings.pages_per_block:
            raise ConfigurationError("flash smaller than one block")
        self._pages: dict[int, bytes] = {}
        self._written: set[int] = set()
        # Erase observers: caches layered above the device must drop
        # their copies of a block's pages the moment it is erased, or a
        # read could return pre-erase bytes. Callbacks take the block
        # index and must not touch the device.
        self._erase_listeners: list = []
        # Per-block erase counts: NAND blocks wear out after ~1e4-1e5
        # program/erase cycles, so skewed erase distributions are a
        # lifetime problem the store's compaction strategy can cause.
        self.erase_counts: dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.erases = 0
        self.elapsed_us = 0.0
        self.energy_uj = 0.0

    @property
    def block_count(self) -> int:
        return self.page_count // self.timings.pages_per_block

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.page_count:
            raise CapacityError(
                f"page {page} out of range (device has {self.page_count} pages)"
            )

    def block_of(self, page: int) -> int:
        """Block index containing ``page``."""
        return page // self.timings.pages_per_block

    def read_page(self, page: int) -> bytes:
        """Read one page (returns all-0xFF for never-written pages)."""
        self._check_page(page)
        self.reads += 1
        self.elapsed_us += self.timings.read_page_us
        self.energy_uj += self.timings.read_page_uj
        return self._pages.get(page, b"\xff" * self.timings.page_size)

    def write_page(self, page: int, data: bytes) -> None:
        """Program one page. ``data`` is padded with 0xFF to page size."""
        self._check_page(page)
        if len(data) > self.timings.page_size:
            raise StorageError(
                f"data ({len(data)} bytes) exceeds page size "
                f"({self.timings.page_size})"
            )
        if page in self._written:
            raise StorageError(f"page {page} already programmed; erase block first")
        block_start = self.block_of(page) * self.timings.pages_per_block
        for earlier in range(page + 1, block_start + self.timings.pages_per_block):
            if earlier in self._written:
                raise StorageError(
                    f"non-sequential program: page {earlier} in block already written"
                )
        self._pages[page] = data.ljust(self.timings.page_size, b"\xff")
        self._written.add(page)
        self.writes += 1
        self.elapsed_us += self.timings.write_page_us
        self.energy_uj += self.timings.write_page_uj

    def add_erase_listener(self, callback) -> None:
        """Register ``callback(block)`` to run on every block erase."""
        self._erase_listeners.append(callback)

    def remove_erase_listener(self, callback) -> None:
        """Unregister a previously added erase callback (idempotent)."""
        try:
            self._erase_listeners.remove(callback)
        except ValueError:
            pass

    def erase_block(self, block: int) -> None:
        """Erase a whole block, freeing its pages for rewriting."""
        if not 0 <= block < self.block_count:
            raise CapacityError(f"block {block} out of range")
        start = block * self.timings.pages_per_block
        for page in range(start, start + self.timings.pages_per_block):
            self._pages.pop(page, None)
            self._written.discard(page)
        self.erases += 1
        self.erase_counts[block] = self.erase_counts.get(block, 0) + 1
        self.elapsed_us += self.timings.erase_block_us
        self.energy_uj += self.timings.erase_block_uj
        for callback in self._erase_listeners:
            callback(block)

    @property
    def max_wear(self) -> int:
        """Highest per-block erase count (the lifetime-limiting block)."""
        return max(self.erase_counts.values(), default=0)

    def wear_skew(self) -> float:
        """Max/mean erase ratio over erased blocks; 1.0 = perfectly even."""
        if not self.erase_counts:
            return 1.0
        mean = sum(self.erase_counts.values()) / len(self.erase_counts)
        return self.max_wear / mean if mean else 1.0

    def is_written(self, page: int) -> bool:
        """True iff the page has been programmed since its last erase."""
        self._check_page(page)
        return page in self._written

    def written_pages(self) -> list[int]:
        """All programmed pages (what a boot-time scan would find)."""
        return sorted(self._written)

    def reset_counters(self) -> None:
        """Zero the cost counters (content is preserved)."""
        self.reads = 0
        self.writes = 0
        self.erases = 0
        self.elapsed_us = 0.0
        self.energy_uj = 0.0

    def snapshot_counters(self) -> dict[str, float]:
        """Current cost counters as a dict (for benchmark rows)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "erases": self.erases,
            "elapsed_us": self.elapsed_us,
            "energy_uj": self.energy_uj,
        }
