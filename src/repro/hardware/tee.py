"""Trusted Execution Environment simulation.

A TEE provides "a clear separation between secure and non-secure
software" (the paper's minimum hardware guarantee). Here the secure
world hosts the cell's :class:`~repro.crypto.keys.KeyRing` and its
tamper-resistant memory; the normal world (application code, the
embedded store) reaches it only through this object, which meters
world switches and CPU, signs attestation quotes, and — after a
physical breach — refuses all service.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.keys import KeyRing
from ..crypto.signing import Signature, VerifyKey
from ..errors import TamperedCellError
from .profiles import HardwareProfile
from .secure_memory import TamperResistantMemory


@dataclass(frozen=True)
class AttestationQuote:
    """A signed statement that a given cell runs a given profile.

    Real TEEs sign with a device key provisioned at manufacture; here
    the cell's own certification key plays that role and the registry
    of genuine cells (:class:`repro.core.identity.Authority`) plays the
    manufacturer's verification service.
    """

    fingerprint: bytes
    profile_name: str
    nonce: bytes
    signature: Signature

    def message(self) -> bytes:
        return b"attest|" + self.fingerprint + b"|" + self.profile_name.encode() + b"|" + self.nonce


class TrustedExecutionEnvironment:
    """The secure world of one trusted cell."""

    def __init__(self, profile: HardwareProfile, key_ring: KeyRing) -> None:
        self.profile = profile
        self.secure_memory = TamperResistantMemory(profile.secure_memory_bytes)
        self._key_ring = key_ring
        self.world_switches = 0
        self.cpu_us_consumed = 0.0
        self._breached = False

    # -- secure-world access ------------------------------------------------

    @property
    def breached(self) -> bool:
        return self._breached

    def _enter(self) -> None:
        if self._breached:
            raise TamperedCellError("TEE has been physically breached")
        self.world_switches += 1

    @property
    def keys(self) -> KeyRing:
        """Enter the secure world and obtain the key ring.

        Every access is a metered world switch; after a breach the
        property raises, so no platform layer can keep operating on a
        destroyed cell.
        """
        self._enter()
        return self._key_ring

    def store_secret(self, name: str, value) -> None:
        """Persist a small secret (root hash, counter) in secure memory."""
        self._enter()
        self.secure_memory.put(name, value)

    def load_secret(self, name: str, default=None):
        """Read a secret back from secure memory."""
        self._enter()
        return self.secure_memory.get_or(name, default)

    def charge_cpu(self, operations: float) -> float:
        """Account for ``operations`` abstract ops inside the TEE.

        Returns the microseconds consumed, so callers can fold the cost
        into latency models.
        """
        microseconds = operations / self.profile.cpu_ops_per_second * 1e6
        self.cpu_us_consumed += microseconds
        return microseconds

    # -- attestation ---------------------------------------------------------

    def attest(self, nonce: bytes) -> AttestationQuote:
        """Produce a signed attestation quote for a challenge ``nonce``."""
        self._enter()
        fingerprint = self._key_ring.fingerprint()
        quote = AttestationQuote(
            fingerprint=fingerprint,
            profile_name=self.profile.name,
            nonce=nonce,
            signature=self._key_ring.sign(
                b"attest|" + fingerprint + b"|" + self.profile.name.encode() + b"|" + nonce
            ),
        )
        return quote

    # -- physical attack hook -------------------------------------------------

    def breach(self) -> dict:
        """Model a successful physical attack.

        Returns the attacker's loot (key material and secure-memory
        contents) and permanently disables the TEE. Only
        :mod:`repro.attacks` should call this.
        """
        loot = {
            "keys": self._key_ring._dump_for_breach(),
            "secure_memory": self.secure_memory.mark_breached(),
        }
        self._breached = True
        return loot


def verify_attestation(
    verify_key: VerifyKey, quote: AttestationQuote, expected_nonce: bytes
) -> bool:
    """Check a quote against the claimed cell's public key and the
    challenge nonce the verifier issued."""
    if quote.nonce != expected_nonce:
        return False
    if quote.fingerprint != verify_key.fingerprint():
        return False
    return verify_key.verify(quote.message(), quote.signature)
