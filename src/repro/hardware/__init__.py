"""Secure-hardware substrate: profiles, flash, secure memory, TEE."""

from .flash import NandFlash
from .profiles import (
    CENTRAL_SERVER,
    HOME_GATEWAY,
    PROFILES,
    SENSOR_CELL,
    SMART_TOKEN,
    SMARTPHONE,
    FlashTimings,
    HardwareProfile,
    profile_by_name,
)
from .secure_memory import TamperResistantMemory
from .tee import AttestationQuote, TrustedExecutionEnvironment, verify_attestation

__all__ = [
    "NandFlash",
    "CENTRAL_SERVER",
    "HOME_GATEWAY",
    "PROFILES",
    "SENSOR_CELL",
    "SMART_TOKEN",
    "SMARTPHONE",
    "FlashTimings",
    "HardwareProfile",
    "profile_by_name",
    "TamperResistantMemory",
    "AttestationQuote",
    "TrustedExecutionEnvironment",
    "verify_attestation",
]
