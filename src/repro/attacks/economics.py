"""Breach economics and class-breaking attacks.

Two of the paper's security arguments made quantitative:

* **E6 — centralized cost-benefit**: "users are exposed to
  sophisticated attacks, whose cost-benefit is high on a centralized
  database". We model an attacker with a budget choosing targets:
  one hardened central database holding everyone's records, versus a
  population of trusted cells each requiring a separate physical
  attack. :func:`breach_economics` reports expected records exposed
  as a function of attacker budget for both architectures.

* **E7 — class-breaking**: "the trusted cells' cryptographic secrets
  must be managed in such a way that a successful attack on a (small
  set of) trusted cells cannot degenerate in breaking class attack".
  :func:`class_breaking_exposure` breaches ``k`` cells and then tries
  the looted key material against *every* envelope in the cloud vault,
  under two key-management regimes: per-cell master secrets (the
  platform default) and a single shared master (the ablation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.cell import TrustedCell
from ..crypto.keys import KeyRing
from ..errors import ConfigurationError, IntegrityError
from ..hardware.profiles import HardwareProfile, SMARTPHONE
from ..infrastructure.cloud import CloudProvider
from ..policy.sticky import DataEnvelope
from ..sim.world import World
from ..sync.vault import VaultClient


@dataclass(frozen=True)
class EconomicsRow:
    """One budget point of the E6 sweep."""

    budget: float
    central_records_exposed: float
    decentralized_records_exposed: float

    @property
    def centralization_penalty(self) -> float:
        """How many times more records the central architecture leaks."""
        if self.decentralized_records_exposed == 0:
            return float("inf") if self.central_records_exposed else 1.0
        return self.central_records_exposed / self.decentralized_records_exposed


def breach_economics(
    population: int,
    records_per_user: int,
    central_attack_cost: float,
    cell_attack_cost: float,
    budgets: list[float],
) -> list[EconomicsRow]:
    """Expected records exposed vs attacker budget, both architectures.

    Deterministic expected-value model: the attacker spends its budget
    optimally. Against the central store, a budget >= the attack cost
    exposes everything (and a partial budget buys a proportional
    success probability, hence a proportional expectation). Against
    cells, each breach costs ``cell_attack_cost`` and exposes one
    user's records; physical contact also caps how many cells one
    campaign can reach.
    """
    if population < 1 or records_per_user < 1:
        raise ConfigurationError("population and records must be positive")
    rows = []
    total_records = population * records_per_user
    for budget in budgets:
        central_success_probability = min(1.0, budget / central_attack_cost)
        central_exposed = central_success_probability * total_records
        cells_breached = min(population, int(budget // cell_attack_cost))
        decentralized_exposed = cells_breached * records_per_user
        rows.append(
            EconomicsRow(
                budget=budget,
                central_records_exposed=central_exposed,
                decentralized_records_exposed=float(decentralized_exposed),
            )
        )
    return rows


# -- class-breaking (E7) ------------------------------------------------------------


@dataclass
class ClassBreakingResult:
    """Outcome of breaching k cells under one key regime."""

    regime: str
    cells_total: int
    cells_breached: int
    objects_total: int
    objects_exposed: int

    @property
    def exposure_fraction(self) -> float:
        return self.objects_exposed / self.objects_total if self.objects_total else 0.0


def _build_population(
    world: World,
    cloud: CloudProvider,
    cells: int,
    objects_per_cell: int,
    shared_master: bool,
    profile: HardwareProfile = SMARTPHONE,
) -> list[TrustedCell]:
    population = []
    shared_secret = world.rng("shared-master").randbytes(16)
    for index in range(cells):
        cell = TrustedCell(world, f"user-{index}-cell", profile)
        if shared_master:
            # Ablation: the manufacturer provisioned every cell with
            # the same master secret (the design the paper forbids).
            cell.tee._key_ring = KeyRing(shared_secret)
        cell.register_user("owner", "pin")
        session = cell.login("owner", "pin")
        for object_index in range(objects_per_cell):
            cell.store_object(
                session,
                f"object-{object_index}",
                f"user-{index} secret #{object_index}".encode(),
            )
        VaultClient(cell, cloud).push_all()
        population.append(cell)
    return population


def _attempt_decrypt_all(
    cloud: CloudProvider, looted_rings: list[KeyRing]
) -> tuple[int, int]:
    """Try every looted master against every vault envelope."""
    exposed = 0
    total = 0
    for key in cloud.list_keys("vault/"):
        if key.endswith("/__manifest__"):
            continue  # manifests are not data envelopes
        total += 1
        envelope = DataEnvelope.from_bytes(cloud.get_object(key))
        for ring in looted_rings:
            candidate = ring.object_key(envelope.object_id, envelope.version)
            try:
                envelope.open(candidate)
                exposed += 1
                break
            except IntegrityError:
                continue
    return exposed, total


def class_breaking_exposure(
    cells: int,
    objects_per_cell: int,
    breached: int,
    shared_master: bool,
    seed: int = 0,
) -> ClassBreakingResult:
    """Breach ``breached`` random cells; measure vault-wide exposure."""
    if breached > cells:
        raise ConfigurationError("cannot breach more cells than exist")
    world = World(seed=seed)
    cloud = CloudProvider(world)
    population = _build_population(world, cloud, cells, objects_per_cell, shared_master)
    rng = random.Random(seed)
    victims = rng.sample(population, breached)
    looted_rings = []
    for victim in victims:
        loot = victim.breach()
        looted_rings.append(KeyRing(loot["keys"]["master_secret"]))
    exposed, total = _attempt_decrypt_all(cloud, looted_rings)
    return ClassBreakingResult(
        regime="shared-master" if shared_master else "per-cell-master",
        cells_total=cells,
        cells_breached=breached,
        objects_total=total,
        objects_exposed=exposed,
    )
