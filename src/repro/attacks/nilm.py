"""NILM: non-intrusive load monitoring attacks on meter data.

The paper's privacy premise: "At the 1Hz granularity provided by the
Linky, most electrical appliances have a distinctive energy signature.
It is thus possible to infer from the power meter data which activities
Alice and Bob are involved in" — while "at [15-minute] granularity one
cannot detect specific activities, but it is still possible to infer a
daily routine".

Two attacks, both consuming only what a recipient at a given
granularity would legitimately receive:

* :func:`detect_appliances` — edge matching: power steps between
  consecutive readings are matched to rated appliance draws. Scored
  by per-appliance F1 against the simulator's ground truth.
* :func:`infer_routine` — occupancy/activity classification per
  bucket, scored as balanced accuracy against ground-truth activity.

Experiment E2 sweeps granularity and reports both scores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..workloads.energy import ApplianceEvent, DayTrace


@dataclass(frozen=True)
class DetectedEvent:
    """An inferred appliance activation."""

    appliance: str
    timestamp: int
    delta_watts: float


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall/F1 of appliance detection."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def _observed_values(trace: DayTrace, granularity: int) -> list[tuple[int, float]]:
    """What a recipient at this granularity sees: bucket means."""
    if granularity <= 1:
        return trace.series.samples()
    return [
        (bucket.start, bucket.mean) for bucket in trace.series.resample(granularity)
    ]


def detect_appliances(
    trace: DayTrace,
    granularity: int,
    rated_powers: dict[str, float],
    tolerance: float = 0.12,
) -> list[DetectedEvent]:
    """Match positive power steps to rated appliance draws.

    A step of ``+P`` within ``tolerance`` of an appliance's rated draw
    is reported as that appliance switching ON. Coarser granularities
    smear steps across bucket means, which is precisely why detection
    collapses — no cleverness is lost here: at 15 minutes the kettle's
    2 kW for 3 minutes looks like +400 W, outside any rated band.
    """
    if not rated_powers:
        raise ConfigurationError("need at least one rated appliance power")
    observed = _observed_values(trace, granularity)
    detected: list[DetectedEvent] = []
    for (_, previous), (timestamp, current) in zip(observed, observed[1:]):
        delta = current - previous
        if delta <= 0:
            continue
        for appliance, rated in rated_powers.items():
            if abs(delta - rated) <= tolerance * rated:
                detected.append(
                    DetectedEvent(
                        appliance=appliance, timestamp=timestamp, delta_watts=delta
                    )
                )
                break
    return detected


def score_detection(
    detected: list[DetectedEvent],
    ground_truth: list[ApplianceEvent],
    match_window: int,
) -> DetectionScore:
    """Greedy one-to-one matching of detections to true activations."""
    unmatched_truth = list(ground_truth)
    true_positives = 0
    false_positives = 0
    for event in detected:
        match = None
        for truth in unmatched_truth:
            if truth.appliance != event.appliance:
                continue
            if abs(truth.start - event.timestamp) <= match_window:
                match = truth
                break
        if match is not None:
            unmatched_truth.remove(match)
            true_positives += 1
        else:
            false_positives += 1
    return DetectionScore(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=len(unmatched_truth),
    )


def appliance_detection_f1(
    trace: DayTrace,
    granularity: int,
    rated_powers: dict[str, float],
    tolerance: float = 0.12,
) -> DetectionScore:
    """End-to-end: observe at granularity, detect, score."""
    detected = detect_appliances(trace, granularity, rated_powers, tolerance)
    window = max(granularity, 90)
    return score_detection(detected, trace.events, match_window=window)


# -- routine inference ---------------------------------------------------------------


def _truth_activity(trace: DayTrace, bucket_start: int, bucket_end: int) -> bool:
    """Ground truth: was any appliance running in this bucket?"""
    return any(
        event.start < bucket_end and event.end > bucket_start
        for event in trace.events
    )


def infer_routine(
    trace: DayTrace,
    granularity: int,
    base_load_watts: float,
    activity_margin_watts: float = 60.0,
) -> float:
    """Balanced accuracy of occupancy inference at one granularity.

    The attacker labels a bucket "active" when its mean exceeds the
    base load by a margin. Balanced accuracy of 1.0 means the daily
    routine is fully recoverable; 0.5 means the observation is
    uninformative (coin flip). With one bucket per day (monthly or
    daily statistics), the score degenerates toward 0.5, matching the
    paper's expectation that coarse statistics stop leaking routine.
    """
    if granularity < 1:
        raise ConfigurationError("granularity must be >= 1 second")
    buckets = trace.series.resample(max(granularity, 1))
    true_positive = true_negative = positives = negatives = 0
    for bucket in buckets:
        predicted_active = bucket.mean > base_load_watts + activity_margin_watts
        actually_active = _truth_activity(trace, bucket.start, bucket.end)
        if actually_active:
            positives += 1
            true_positive += 1 if predicted_active else 0
        else:
            negatives += 1
            true_negative += 1 if not predicted_active else 0
    if positives == 0 or negatives == 0:
        return 0.5  # degenerate observation: nothing to tell apart
    sensitivity = true_positive / positives
    specificity = true_negative / negatives
    return (sensitivity + specificity) / 2
