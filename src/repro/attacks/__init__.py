"""Attack models: NILM inference, breach economics, class-breaking."""

from .cycles import (
    CycleMatch,
    CycleScore,
    cycle_attack,
    match_cycles,
    score_cycle_detection,
    segment_plateaus,
)
from .economics import (
    ClassBreakingResult,
    EconomicsRow,
    breach_economics,
    class_breaking_exposure,
)
from .nilm import (
    DetectedEvent,
    DetectionScore,
    appliance_detection_f1,
    detect_appliances,
    infer_routine,
    score_detection,
)

__all__ = [
    "CycleMatch",
    "CycleScore",
    "cycle_attack",
    "match_cycles",
    "score_cycle_detection",
    "segment_plateaus",
    "ClassBreakingResult",
    "EconomicsRow",
    "breach_economics",
    "class_breaking_exposure",
    "DetectedEvent",
    "DetectionScore",
    "appliance_detection_f1",
    "detect_appliances",
    "infer_routine",
    "score_detection",
]
