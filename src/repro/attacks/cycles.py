"""Phase-sequence NILM: identifying cyclic appliances.

The edge-matching attack of :mod:`repro.attacks.nilm` keys on single
rated draws; cyclic appliances (washing machine, dishwasher) instead
expose an ordered *sequence* of power plateaus. This attack segments
the observed series into plateaus, then matches plateau subsequences
against known cycle signatures (power levels and rough durations).

Like the edge attack, it consumes only what a recipient at a given
granularity sees, so E2-style sweeps apply: signatures that are crisp
at 1 s dissolve once aggregation smears plateau boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..workloads.energy import DayTrace
from ..workloads.multistate import CycleRun, CyclicAppliance


@dataclass(frozen=True)
class Plateau:
    """A maximal run of near-constant power."""

    start: int
    end: int
    level_watts: float

    @property
    def duration(self) -> int:
        return self.end - self.start


def segment_plateaus(
    trace: DayTrace, granularity: int, jump_watts: float = 80.0
) -> list[Plateau]:
    """Split the observed series into near-constant plateaus."""
    if granularity <= 1:
        observed = trace.series.samples()
        step = trace.sample_period
    else:
        observed = [
            (bucket.start, bucket.mean)
            for bucket in trace.series.resample(granularity)
        ]
        step = granularity
    if not observed:
        return []
    plateaus: list[Plateau] = []
    run_start, run_sum, run_count = observed[0][0], observed[0][1], 1
    previous_value = observed[0][1]
    for timestamp, value in observed[1:]:
        if abs(value - previous_value) > jump_watts:
            plateaus.append(
                Plateau(run_start, timestamp, run_sum / run_count)
            )
            run_start, run_sum, run_count = timestamp, value, 1
        else:
            run_sum += value
            run_count += 1
        previous_value = value
    plateaus.append(
        Plateau(run_start, observed[-1][0] + step, run_sum / run_count)
    )
    return plateaus


@dataclass(frozen=True)
class CycleMatch:
    """One claimed appliance-cycle occurrence."""

    appliance: str
    start: int
    end: int


def match_cycles(
    plateaus: list[Plateau],
    signatures: list[CyclicAppliance],
    base_load_watts: float,
    power_tolerance: float = 0.15,
    duration_tolerance: float = 0.5,
) -> list[CycleMatch]:
    """Find cycle signatures as consecutive plateau subsequences.

    A signature of k phases matches k consecutive plateaus whose levels
    (above base load) and durations agree within the tolerances.
    Greedy left-to-right, longest signatures first, non-overlapping.
    """
    if not 0 < power_tolerance < 1:
        raise ConfigurationError("power tolerance must be in (0,1)")
    matches: list[CycleMatch] = []
    claimed: set[int] = set()
    ordered = sorted(signatures, key=lambda s: -len(s.phases))
    for signature in ordered:
        phases = signature.phases
        for start_index in range(len(plateaus) - len(phases) + 1):
            window = plateaus[start_index : start_index + len(phases)]
            if any(
                index in claimed
                for index in range(start_index, start_index + len(phases))
            ):
                continue
            if _window_matches(window, signature, base_load_watts,
                               power_tolerance, duration_tolerance):
                matches.append(
                    CycleMatch(
                        appliance=signature.name,
                        start=window[0].start,
                        end=window[-1].end,
                    )
                )
                claimed.update(
                    range(start_index, start_index + len(phases))
                )
    return sorted(matches, key=lambda match: match.start)


def _window_matches(
    window: list[Plateau],
    signature: CyclicAppliance,
    base_load: float,
    power_tolerance: float,
    duration_tolerance: float,
) -> bool:
    for plateau, phase in zip(window, signature.phases):
        load = plateau.level_watts - base_load
        if phase.power_watts <= 0:
            return False
        if abs(load - phase.power_watts) > power_tolerance * phase.power_watts:
            return False
        low = phase.duration_s * (1 - duration_tolerance)
        high = phase.duration_s * (1 + duration_tolerance)
        if not low <= plateau.duration <= high:
            return False
    return True


@dataclass(frozen=True)
class CycleScore:
    """Detection quality for cyclic appliances."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        denominator = (
            2 * self.true_positives + self.false_positives + self.false_negatives
        )
        return 2 * self.true_positives / denominator if denominator else 0.0


def score_cycle_detection(
    matches: list[CycleMatch],
    truth: list[CycleRun],
    slack: int = 1200,
) -> CycleScore:
    """Match claims to true runs by appliance + start-time proximity."""
    unmatched = list(truth)
    true_positives = 0
    false_positives = 0
    for match in matches:
        hit = None
        for run in unmatched:
            if run.appliance == match.appliance and abs(
                run.start - match.start
            ) <= slack:
                hit = run
                break
        if hit is not None:
            unmatched.remove(hit)
            true_positives += 1
        else:
            false_positives += 1
    return CycleScore(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=len(unmatched),
    )


def cycle_attack(
    trace: DayTrace,
    truth: list[CycleRun],
    signatures: list[CyclicAppliance],
    granularity: int,
    base_load_watts: float,
) -> CycleScore:
    """End-to-end: segment, match, score at one granularity."""
    plateaus = segment_plateaus(trace, granularity)
    matches = match_cycles(plateaus, signatures, base_load_watts)
    return score_cycle_detection(matches, truth)
