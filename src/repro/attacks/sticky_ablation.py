"""Ablation: what if the sticky policy were NOT bound to the data?

The paper requires usage rules "cryptographically inseparable from the
data". This module implements the *broken* design — payload sealed,
policy stored alongside in a separate (merely authenticated-to-nobody)
cloud object — and the policy-swap attack it enables: anyone who can
write to the store (the weakly malicious provider, or any tenant)
replaces the policy with one granting themselves access, and the
recipient cell, faithfully enforcing "the" policy, lets them in.

Contrast: in the real :class:`~repro.policy.sticky.DataEnvelope`, the
policy lives inside the AEAD; swapping it means forging the tag.
Experiment E12's ablation table shows both outcomes side by side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..crypto.aead import SealedBlob, open_sealed, seal
from ..errors import AccessDenied, IntegrityError
from ..infrastructure.cloud import CloudProvider
from ..policy.conditions import AccessContext
from ..policy.sticky import DataEnvelope
from ..policy.ucon import RIGHT_READ, Grant, UsagePolicy


@dataclass(frozen=True)
class UnboundObject:
    """The broken design: sealed payload, policy stored separately."""

    data_key_name: str  # cloud key of the payload blob
    policy_key_name: str  # cloud key of the policy document


def store_unbound(
    cloud: CloudProvider, name: str, key: bytes, payload: bytes,
    policy: UsagePolicy,
) -> UnboundObject:
    """Store payload and policy as two independent cloud objects."""
    blob = seal(key, payload, header=b"unbound", nonce_seed=name.encode())
    cloud.put_object(f"unbound/{name}/data", blob.to_bytes())
    cloud.put_object(f"unbound/{name}/policy", policy.to_bytes())
    return UnboundObject(
        data_key_name=f"unbound/{name}/data",
        policy_key_name=f"unbound/{name}/policy",
    )


def read_unbound(
    cloud: CloudProvider, stored: UnboundObject, key: bytes,
    context: AccessContext,
) -> bytes:
    """A faithful-but-doomed reference monitor for the broken design.

    It *does* enforce the policy it finds — the problem is what it
    finds.
    """
    policy = UsagePolicy.from_bytes(cloud.get_object(stored.policy_key_name))
    decision = policy.evaluate(RIGHT_READ, context)
    if not decision.allowed:
        raise AccessDenied(decision.reason)
    blob = SealedBlob.from_bytes(cloud.get_object(stored.data_key_name))
    return open_sealed(key, blob)


def policy_swap_attack(
    cloud: CloudProvider, stored: UnboundObject, attacker: str
) -> None:
    """The attack: overwrite the policy with an attacker-friendly one."""
    forged = UsagePolicy(
        owner=attacker,  # why not
        grants=(Grant(rights=(RIGHT_READ,), subjects=(attacker,)),),
    )
    cloud.put_object(stored.policy_key_name, forged.to_bytes())


def bound_design_resists(
    key: bytes, envelope: DataEnvelope, attacker: str
) -> bool:
    """Try the equivalent swap against a real bound envelope.

    The only way to change the policy is to rewrite ciphertext bytes;
    any such rewrite breaks the AEAD tag. Returns True iff the design
    resisted (i.e. tampering was detected).
    """
    tampered_blob = SealedBlob(
        envelope.blob.header,
        envelope.blob.nonce,
        # flip a byte inside the sealed region where the policy lives
        bytes([envelope.blob.ciphertext[10] ^ 0xFF])
        .join([envelope.blob.ciphertext[:10], envelope.blob.ciphertext[11:]]),
        envelope.blob.tag,
    )
    tampered = DataEnvelope(envelope.object_id, envelope.version, tampered_blob)
    try:
        tampered.open(key)
    except IntegrityError:
        return True
    return False


def run_ablation(cloud: CloudProvider, key: bytes) -> dict:
    """Run both designs against the same policy-swap attacker.

    Returns a dict the E12 bench renders as its ablation table.
    """
    owner_policy = UsagePolicy(owner="alice")  # private: nobody else
    attacker_context = AccessContext(subject="mallory", timestamp=0)

    stored = store_unbound(cloud, "diary", key, b"dear diary", owner_policy)
    denied_before = False
    try:
        read_unbound(cloud, stored, key, attacker_context)
    except AccessDenied:
        denied_before = True
    policy_swap_attack(cloud, stored, "mallory")
    swapped_read = read_unbound(cloud, stored, key, attacker_context)

    envelope = DataEnvelope.create(key, "diary", 1, b"dear diary", owner_policy)
    resisted = bound_design_resists(key, envelope, "mallory")
    return {
        "unbound_denied_before_attack": denied_before,
        "unbound_attack_succeeded": swapped_read == b"dear diary",
        "bound_attack_detected": resisted,
    }
