"""Sticky policies: data envelopes with the policy sealed in.

"Usage control rules can be implemented as sticky policies so that they
are made cryptographically inseparable from the data to be protected."

A :class:`DataEnvelope` seals ``policy || payload`` under the object's
data key. Consequences, all load-bearing:

* the cloud stores the envelope but learns neither payload *nor policy*
  (policies themselves are personal data);
* any cell holding the object key — owner or legitimate recipient —
  recovers both together; there is no code path that yields the payload
  without also yielding the policy to enforce;
* modifying either policy or payload breaks the AEAD tag, which is
  detectable evidence against the infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.aead import SealedBlob, open_sealed, pack_frames, seal, unpack_frames
from ..errors import IntegrityError, PolicyError
from .ucon import UsagePolicy


@dataclass(frozen=True)
class DataEnvelope:
    """One sealed object version: id, version and the sealed blob."""

    object_id: str
    version: int
    blob: SealedBlob

    @staticmethod
    def _header(object_id: str, version: int) -> bytes:
        if "|" in object_id:
            raise PolicyError("object ids cannot contain '|'")
        return f"env|{object_id}|{version}".encode()

    @classmethod
    def create(
        cls,
        key: bytes,
        object_id: str,
        version: int,
        payload: bytes,
        policy: UsagePolicy,
    ) -> "DataEnvelope":
        """Seal ``payload`` together with its sticky ``policy``."""
        policy_bytes = policy.to_bytes()
        inner = len(policy_bytes).to_bytes(4, "big") + policy_bytes + payload
        header = cls._header(object_id, version)
        blob = seal(key, inner, header=header, nonce_seed=header)
        return cls(object_id=object_id, version=version, blob=blob)

    @classmethod
    def create_bundle(
        cls,
        key: bytes,
        object_id: str,
        version: int,
        frames: list[bytes],
        policy: UsagePolicy,
    ) -> "DataEnvelope":
        """Seal a page's worth of record frames and their sticky policy
        as *one* envelope.

        The whole bundle costs one AEAD pass (4 keyed HMACs) where
        per-frame envelopes would cost 4·N — the outsourcing-side twin
        of the store's page-granular integrity tags. The policy is
        sealed once with the bundle and governs every frame in it.
        """
        return cls.create(key, object_id, version, pack_frames(frames), policy)

    def open_bundle(self, key: bytes) -> tuple[list[bytes], UsagePolicy]:
        """Verify, decrypt and unpack a frame bundle sealed by
        :meth:`create_bundle`."""
        payload, policy = self.open(key)
        return unpack_frames(payload), policy

    def open(self, key: bytes) -> tuple[bytes, UsagePolicy]:
        """Verify, decrypt, and split back into (payload, policy).

        Raises :class:`IntegrityError` if the envelope was manipulated
        or if the claimed id/version does not match the sealed header.
        """
        expected_header = self._header(self.object_id, self.version)
        if self.blob.header != expected_header:
            raise IntegrityError(
                "envelope header does not match claimed object id/version"
            )
        inner = open_sealed(key, self.blob)
        if len(inner) < 4:
            raise IntegrityError("envelope payload truncated")
        policy_length = int.from_bytes(inner[:4], "big")
        if 4 + policy_length > len(inner):
            raise IntegrityError("envelope policy length inconsistent")
        policy = UsagePolicy.from_bytes(inner[4 : 4 + policy_length])
        payload = inner[4 + policy_length :]
        return payload, policy

    # -- wire form ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        id_bytes = self.object_id.encode()
        return (
            len(id_bytes).to_bytes(2, "big")
            + id_bytes
            + self.version.to_bytes(8, "big")
            + self.blob.to_bytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "DataEnvelope":
        if len(data) < 10:
            raise IntegrityError("truncated envelope")
        id_length = int.from_bytes(data[:2], "big")
        if 2 + id_length + 8 > len(data):
            raise IntegrityError("truncated envelope id")
        try:
            object_id = data[2 : 2 + id_length].decode()
        except UnicodeDecodeError as exc:
            raise IntegrityError("corrupted envelope id") from exc
        version = int.from_bytes(data[2 + id_length : 10 + id_length], "big")
        blob = SealedBlob.from_bytes(data[10 + id_length :])
        return cls(object_id=object_id, version=version, blob=blob)

    @property
    def size(self) -> int:
        """Wire size in bytes."""
        return 10 + len(self.object_id.encode()) + self.blob.size
