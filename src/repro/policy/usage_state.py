"""Mutability state: per-subject use counters.

UCON mutability means "decisions based on previous usage". The
enforcing cell keeps, for every (object, subject) pair, how many times
the right has been exercised; :class:`~repro.policy.ucon.UsagePolicy`
checks the counter against its ``max_uses`` budget.

The state lives on the *enforcing* cell (the one opening the data) and
is exportable so it survives cell sync/restore.
"""

from __future__ import annotations


class UsageState:
    """Use counters for one cell's reference monitor."""

    def __init__(self) -> None:
        self._uses: dict[tuple[str, str], int] = {}

    def uses(self, object_id: str, subject: str) -> int:
        """How many times ``subject`` has used ``object_id`` here."""
        return self._uses.get((object_id, subject), 0)

    def record_use(self, object_id: str, subject: str) -> int:
        """Increment and return the new count."""
        key = (object_id, subject)
        self._uses[key] = self._uses.get(key, 0) + 1
        return self._uses[key]

    def export(self) -> dict[str, int]:
        """Serializable snapshot, keyed ``object_id::subject``."""
        return {
            f"{object_id}::{subject}": count
            for (object_id, subject), count in self._uses.items()
        }

    @classmethod
    def from_export(cls, snapshot: dict[str, int]) -> "UsageState":
        state = cls()
        for key, count in snapshot.items():
            object_id, _, subject = key.partition("::")
            state._uses[(object_id, subject)] = count
        return state

    def __len__(self) -> int:
        return len(self._uses)
