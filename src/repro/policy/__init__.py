"""Access & usage control: conditions, UCON-ABC, sticky policies, audit."""

from .audit import AuditEntry, AuditLog
from .conditions import (
    AccessContext,
    AttributeEquals,
    Condition,
    HourOfDay,
    LocationIn,
    PurposeIn,
    TimeWindow,
    condition_from_dict,
)
from .presets import (
    PackPublisher,
    PolicyPack,
    bind_template,
    privacy_by_default_templates,
    template,
    verify_pack,
)
from .sticky import DataEnvelope
from .ucon import (
    ALL_RIGHTS,
    OBLIGATION_AUDIT,
    OBLIGATION_NOTIFY_OWNER,
    RIGHT_AGGREGATE,
    RIGHT_READ,
    RIGHT_SHARE,
    Decision,
    Grant,
    Obligation,
    UsagePolicy,
    private_policy,
)
from .usage_state import UsageState

__all__ = [
    "AuditEntry",
    "AuditLog",
    "AccessContext",
    "AttributeEquals",
    "Condition",
    "HourOfDay",
    "LocationIn",
    "PurposeIn",
    "TimeWindow",
    "condition_from_dict",
    "PackPublisher",
    "PolicyPack",
    "bind_template",
    "privacy_by_default_templates",
    "template",
    "verify_pack",
    "DataEnvelope",
    "ALL_RIGHTS",
    "OBLIGATION_AUDIT",
    "OBLIGATION_NOTIFY_OWNER",
    "RIGHT_AGGREGATE",
    "RIGHT_READ",
    "RIGHT_SHARE",
    "Decision",
    "Grant",
    "Obligation",
    "UsagePolicy",
    "private_policy",
    "UsageState",
]
