"""Hash-chained, MAC-protected audit log.

The paper requires that a full-fledged cell "make all access and usage
actions accountable" and sketches the mechanism: "the recipient trusted
cell can maintain an audit log, encrypt it and push it on the Cloud to
the destination of the originator trusted cell."

Implementation:

* every entry carries the hash of its predecessor (tamper-evident
  chain: removing, reordering or editing any entry breaks every
  subsequent hash);
* the chain head is MAC'd with the cell's audit key on demand, so a
  pushed log segment is attributable;
* :meth:`AuditLog.seal_for` encrypts a segment for the data owner's
  cell using a key wrapped by the sharing layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..crypto.aead import SealedBlob, open_sealed, seal
from ..crypto.primitives import hmac_sha256, sha256, verify_hmac
from ..errors import IntegrityError
from ..obs import get_default as _obs_default

_GENESIS = sha256(b"audit-genesis")

_OBS = _obs_default()
_ENTRIES = _OBS.metrics.counter(
    "audit.entries", help="audit-log entries appended",
    labelnames=("allowed",),
)


@dataclass(frozen=True)
class AuditEntry:
    """One accountable action."""

    sequence: int
    timestamp: int
    subject: str
    object_id: str
    action: str  # e.g. "read", "share", "obligation:notify-owner"
    allowed: bool
    reason: str
    previous_hash: bytes

    def canonical(self) -> bytes:
        body = {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "subject": self.subject,
            "object_id": self.object_id,
            "action": self.action,
            "allowed": self.allowed,
            "reason": self.reason,
            "previous_hash": self.previous_hash.hex(),
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def entry_hash(self) -> bytes:
        return sha256(self.canonical())

    def to_dict(self) -> dict[str, Any]:
        data = json.loads(self.canonical().decode())
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditEntry":
        return cls(
            sequence=data["sequence"],
            timestamp=data["timestamp"],
            subject=data["subject"],
            object_id=data["object_id"],
            action=data["action"],
            allowed=data["allowed"],
            reason=data["reason"],
            previous_hash=bytes.fromhex(data["previous_hash"]),
        )


class AuditLog:
    """The append-only accountability log of one trusted cell."""

    def __init__(self, mac_key: bytes) -> None:
        self._mac_key = mac_key
        self._entries: list[AuditEntry] = []

    def append(
        self,
        timestamp: int,
        subject: str,
        object_id: str,
        action: str,
        allowed: bool,
        reason: str = "",
    ) -> AuditEntry:
        """Record one action; returns the chained entry."""
        previous = self._entries[-1].entry_hash() if self._entries else _GENESIS
        entry = AuditEntry(
            sequence=len(self._entries),
            timestamp=timestamp,
            subject=subject,
            object_id=object_id,
            action=action,
            allowed=allowed,
            reason=reason,
            previous_hash=previous,
        )
        self._entries.append(entry)
        _ENTRIES.labels(allowed=str(allowed).lower()).inc()
        _OBS.events.emit(
            "audit.append", timestamp=timestamp, subject=subject,
            object_id=object_id, action=action, allowed=allowed,
        )
        return entry

    def entries(self) -> list[AuditEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def entries_for(self, object_id: str) -> list[AuditEntry]:
        return [entry for entry in self._entries if entry.object_id == object_id]

    # -- integrity ---------------------------------------------------------------

    def head_mac(self) -> bytes:
        """MAC over the chain head, attributable to this cell."""
        head = self._entries[-1].entry_hash() if self._entries else _GENESIS
        return hmac_sha256(self._mac_key, b"audit-head|" + head)

    @staticmethod
    def verify_chain(entries: list[AuditEntry]) -> bool:
        """True iff the entries form an unbroken hash chain from genesis."""
        previous = _GENESIS
        for position, entry in enumerate(entries):
            if entry.sequence != position:
                return False
            if entry.previous_hash != previous:
                return False
            previous = entry.entry_hash()
        return True

    def verify_head_mac(self, mac: bytes) -> bool:
        head = self._entries[-1].entry_hash() if self._entries else _GENESIS
        return verify_hmac(self._mac_key, b"audit-head|" + head, mac)

    # -- export to the originator cell --------------------------------------------

    def seal_for(self, key: bytes, object_id: str | None = None) -> SealedBlob:
        """Encrypt (a slice of) the log for the data owner's cell.

        ``object_id`` filters to entries about one object — the
        recipient cell pushes exactly the accountability trail the
        originator is entitled to, nothing more.
        """
        entries = self.entries_for(object_id) if object_id else self.entries()
        payload = json.dumps(
            [entry.to_dict() for entry in entries], sort_keys=True
        ).encode()
        header = f"audit|{object_id or '*'}|{len(entries)}".encode()
        return seal(key, payload, header=header, nonce_seed=header)

    @staticmethod
    def open_sealed_log(key: bytes, blob: SealedBlob) -> list[AuditEntry]:
        """Decrypt and parse a pushed log segment."""
        payload = open_sealed(key, blob)
        try:
            raw_entries = json.loads(payload.decode())
        except ValueError as exc:
            raise IntegrityError("malformed audit payload") from exc
        return [AuditEntry.from_dict(data) for data in raw_entries]
