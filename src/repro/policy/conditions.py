"""Condition language for access and usage control rules.

The paper requires that sharing be possible "under certain conditions
(e.g., time, location)" and that usage control cover "environmental or
system-oriented decision factors". Conditions are small predicate
objects evaluated against an :class:`AccessContext`; they serialize to
plain dicts so a whole policy can travel inside a sticky-policy header
and be re-evaluated by the *recipient's* trusted cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import PolicyError
from ..sim.clock import SECONDS_PER_HOUR


@dataclass(frozen=True)
class AccessContext:
    """Everything a reference monitor knows when deciding an access."""

    subject: str  # principal id of the requester
    timestamp: int  # simulated time of the request
    attributes: dict[str, Any] = field(default_factory=dict)  # verified credentials
    location: str | None = None
    purpose: str | None = None


class Condition:
    """Base condition; subclasses are registered for deserialization."""

    kind = "base"

    def evaluate(self, context: AccessContext) -> bool:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form for audit entries."""
        return str(self.to_dict())


@dataclass(frozen=True)
class TimeWindow(Condition):
    """Valid between two absolute timestamps (either side optional).

    The paper's footnote example: a photo accessible "in the course of
    2012" is a TimeWindow over that year.
    """

    not_before: int | None = None
    not_after: int | None = None

    kind = "time-window"

    def evaluate(self, context: AccessContext) -> bool:
        if self.not_before is not None and context.timestamp < self.not_before:
            return False
        if self.not_after is not None and context.timestamp > self.not_after:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }


@dataclass(frozen=True)
class HourOfDay(Condition):
    """Valid between two hours of the day, e.g. office hours 9-17.

    The window is ``[start_hour, end_hour)``; wrap-around windows
    (22-6) are supported.
    """

    start_hour: int = 0
    end_hour: int = 24

    kind = "hour-of-day"

    def evaluate(self, context: AccessContext) -> bool:
        hour = (context.timestamp % (24 * SECONDS_PER_HOUR)) // SECONDS_PER_HOUR
        if self.start_hour <= self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "start_hour": self.start_hour,
            "end_hour": self.end_hour,
        }


@dataclass(frozen=True)
class LocationIn(Condition):
    """Valid only from one of the listed locations."""

    locations: tuple[str, ...] = ()

    kind = "location-in"

    def evaluate(self, context: AccessContext) -> bool:
        return context.location is not None and context.location in self.locations

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "locations": list(self.locations)}


@dataclass(frozen=True)
class PurposeIn(Condition):
    """Valid only for one of the listed declared purposes."""

    purposes: tuple[str, ...] = ()

    kind = "purpose-in"

    def evaluate(self, context: AccessContext) -> bool:
        return context.purpose is not None and context.purpose in self.purposes

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "purposes": list(self.purposes)}


@dataclass(frozen=True)
class AttributeEquals(Condition):
    """Requires a verified subject attribute to hold a given value.

    Attributes come from credentials checked by the identity layer
    (e.g. ``role=insurer``, ``group=family``).
    """

    name: str = ""
    value: Any = None

    kind = "attribute-equals"

    def evaluate(self, context: AccessContext) -> bool:
        return context.attributes.get(self.name) == self.value

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


_REGISTRY: dict[str, type] = {
    TimeWindow.kind: TimeWindow,
    HourOfDay.kind: HourOfDay,
    LocationIn.kind: LocationIn,
    PurposeIn.kind: PurposeIn,
    AttributeEquals.kind: AttributeEquals,
}


def condition_from_dict(data: dict[str, Any]) -> Condition:
    """Reconstruct a condition from its serialized form."""
    kind = data.get("kind")
    if kind == TimeWindow.kind:
        return TimeWindow(data.get("not_before"), data.get("not_after"))
    if kind == HourOfDay.kind:
        return HourOfDay(data["start_hour"], data["end_hour"])
    if kind == LocationIn.kind:
        return LocationIn(tuple(data["locations"]))
    if kind == PurposeIn.kind:
        return PurposeIn(tuple(data["purposes"]))
    if kind == AttributeEquals.kind:
        return AttributeEquals(data["name"], data["value"])
    raise PolicyError(f"unknown condition kind {kind!r}")
