"""Policy packs: signed default-policy bundles from trusted third parties.

From the sharing challenges: usability can come from "definition of
default policies by trusted third parties – e.g., citizen associations
– which could be automatically selected depending on a computed
individual's profile". A :class:`PolicyPack` is a named bundle mapping
object *kinds* to policy templates, signed by its publisher; a cell
that adopts a (verified) pack applies the matching template whenever an
object is stored without an explicit policy.

Templates are policies with the owner left open: adoption binds the
template to the storing user at store time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..crypto.signing import Signature, SigningKey, VerifyKey
from ..errors import ConfigurationError, CredentialError, PolicyError
from .conditions import condition_from_dict
from .ucon import Grant, Obligation, UsagePolicy

_TEMPLATE_OWNER = "__owner__"  # placeholder bound at store time


def template(
    grants: tuple[Grant, ...] = (),
    conditions: tuple = (),
    obligations: tuple[Obligation, ...] = (),
    max_uses: int | None = None,
) -> UsagePolicy:
    """A policy template (owner bound later)."""
    return UsagePolicy(
        owner=_TEMPLATE_OWNER,
        grants=grants,
        conditions=conditions,
        obligations=obligations,
        max_uses=max_uses,
    )


def bind_template(policy_template: UsagePolicy, owner: str) -> UsagePolicy:
    """Instantiate a template for a concrete owner."""
    if policy_template.owner != _TEMPLATE_OWNER:
        raise PolicyError("not a template (owner already bound)")
    return UsagePolicy(
        owner=owner,
        grants=policy_template.grants,
        conditions=policy_template.conditions,
        obligations=policy_template.obligations,
        max_uses=policy_template.max_uses,
    )


@dataclass(frozen=True)
class PolicyPack:
    """A signed bundle of kind -> policy template."""

    name: str
    publisher: str
    templates: tuple[tuple[str, UsagePolicy], ...]  # (kind, template)
    signature: Signature

    @staticmethod
    def canonical(
        name: str, publisher: str, templates: tuple[tuple[str, UsagePolicy], ...]
    ) -> bytes:
        body = {
            "name": name,
            "publisher": publisher,
            "templates": {
                kind: policy_template.to_dict()
                for kind, policy_template in templates
            },
        }
        return b"policy-pack|" + json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()

    def message(self) -> bytes:
        return self.canonical(self.name, self.publisher, self.templates)

    def template_for(self, kind: str) -> UsagePolicy | None:
        for template_kind, policy_template in self.templates:
            if template_kind == kind:
                return policy_template
        return None


class PackPublisher:
    """A citizen association (or similar) that signs policy packs."""

    def __init__(self, name: str, seed: bytes) -> None:
        if not name:
            raise ConfigurationError("publisher name must be non-empty")
        self.name = name
        self._signing_key = SigningKey.from_seed(b"pack|" + seed)

    @property
    def verify_key(self) -> VerifyKey:
        return self._signing_key.public_key()

    def publish(
        self, pack_name: str, templates: dict[str, UsagePolicy]
    ) -> PolicyPack:
        for kind, policy_template in templates.items():
            if policy_template.owner != _TEMPLATE_OWNER:
                raise PolicyError(
                    f"template for kind {kind!r} has a bound owner; "
                    "use presets.template()"
                )
        ordered = tuple(sorted(templates.items()))
        message = PolicyPack.canonical(pack_name, self.name, ordered)
        return PolicyPack(
            name=pack_name,
            publisher=self.name,
            templates=ordered,
            signature=self._signing_key.sign(message),
        )


def verify_pack(pack: PolicyPack, publisher_key: VerifyKey) -> None:
    """Raise :class:`CredentialError` unless the pack's signature holds."""
    if not publisher_key.verify(pack.message(), pack.signature):
        raise CredentialError(
            f"policy pack {pack.name!r} failed signature verification"
        )


# -- a reference pack: the "privacy by default" bundle -----------------------


def privacy_by_default_templates() -> dict[str, UsagePolicy]:
    """A sane restrictive default set: everything owner-only, with
    audit-notification on the most sensitive kinds."""
    from .ucon import OBLIGATION_NOTIFY_OWNER

    notify = (Obligation(OBLIGATION_NOTIFY_OWNER),)
    return {
        "photo": template(obligations=notify),
        "medical": template(obligations=notify, max_uses=3),
        "gps-trace": template(),
        "payslip": template(),
        "document": template(),
    }
