"""UCON-ABC usage control policies.

"Usage control usually refers to UCON_ABC: obligations (actions a
subject must take before or while it holds a right), conditions
(environmental or system-oriented decision factors), and mutability
(decisions based on previous usage)."  (paper, citing Park & Sandhu)

A :class:`UsagePolicy` bundles:

* **Authorizations** — which subjects (by id or by verified attribute)
  hold which rights;
* **Conditions** — environment predicates from
  :mod:`repro.policy.conditions`;
* **oBligations** — actions the enforcing cell must perform
  (notify the owner, write an audit record);
* **Mutability** — a per-subject use budget (the "photo could be
  accessed ten times" of footnote 6).

Policies serialize to a canonical byte form so they can be bound to
their payload ("cryptographically inseparable") by the sticky-policy
layer, and evaluated identically by *any* trusted cell — in particular
by the recipient's cell, which is what makes bypass impossible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import PolicyError
from ..obs import get_default as _obs_default
from .conditions import AccessContext, Condition, condition_from_dict

# Policies are evaluated by whichever cell enforces them and carry no
# world reference, so decisions land in the process-default scope.
_OBS = _obs_default()
_DECISIONS = _OBS.metrics.counter(
    "policy.decisions", help="usage-control evaluations",
    labelnames=("outcome",),
)

# Rights a policy can grant.
RIGHT_READ = "read"
RIGHT_AGGREGATE = "aggregate"  # read only through approved aggregate queries
RIGHT_SHARE = "share"  # re-share the object (keys + policy) onward
ALL_RIGHTS = (RIGHT_READ, RIGHT_AGGREGATE, RIGHT_SHARE)

# Obligation kinds the platform knows how to fulfil.
OBLIGATION_NOTIFY_OWNER = "notify-owner"
OBLIGATION_AUDIT = "audit-access"
KNOWN_OBLIGATIONS = (OBLIGATION_NOTIFY_OWNER, OBLIGATION_AUDIT)


@dataclass(frozen=True)
class Obligation:
    """An action the enforcing cell must take when granting access."""

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_OBLIGATIONS:
            raise PolicyError(f"unknown obligation kind {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": [list(pair) for pair in self.params]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Obligation":
        return cls(
            kind=data["kind"],
            params=tuple((key, value) for key, value in data.get("params", [])),
        )


@dataclass(frozen=True)
class Grant:
    """One authorization row: who gets which rights.

    A subject matches if it is listed explicitly in ``subjects`` or if
    its verified attributes include every pair in ``attributes``.
    An empty grant matches nobody (the owner needs no grant).
    """

    rights: tuple[str, ...]
    subjects: tuple[str, ...] = ()
    attributes: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for right in self.rights:
            if right not in ALL_RIGHTS:
                raise PolicyError(f"unknown right {right!r}")

    def matches(self, context: AccessContext) -> bool:
        if context.subject in self.subjects:
            return True
        if self.attributes:
            return all(
                context.attributes.get(name) == value
                for name, value in self.attributes
            )
        return False

    def to_dict(self) -> dict[str, Any]:
        return {
            "rights": list(self.rights),
            "subjects": list(self.subjects),
            "attributes": [list(pair) for pair in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Grant":
        return cls(
            rights=tuple(data["rights"]),
            subjects=tuple(data["subjects"]),
            attributes=tuple((name, value) for name, value in data["attributes"]),
        )


@dataclass(frozen=True)
class Decision:
    """The outcome of a policy evaluation."""

    allowed: bool
    reason: str
    obligations: tuple[Obligation, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.allowed


@dataclass(frozen=True)
class UsagePolicy:
    """A complete UCON-ABC policy for one object."""

    owner: str
    grants: tuple[Grant, ...] = ()
    conditions: tuple[Condition, ...] = ()
    obligations: tuple[Obligation, ...] = ()
    max_uses: int | None = None  # mutability: per-subject budget

    # -- evaluation ------------------------------------------------------------

    def rights_of(self, context: AccessContext) -> set[str]:
        """All rights the subject holds (before conditions/mutability)."""
        if context.subject == self.owner:
            return set(ALL_RIGHTS)
        rights: set[str] = set()
        for grant in self.grants:
            if grant.matches(context):
                rights.update(grant.rights)
        return rights

    def evaluate(
        self, right: str, context: AccessContext, prior_uses: int = 0
    ) -> Decision:
        """Decide whether ``context.subject`` may exercise ``right``.

        ``prior_uses`` is the subject's use count so far, maintained by
        the enforcing cell's usage-state store (mutability).
        The owner bypasses grants but NOT conditions or mutability —
        the paper is explicit that even the cell owner "only gets data
        according to her privileges".
        """
        if right not in ALL_RIGHTS:
            raise PolicyError(f"unknown right {right!r}")
        decision = self._decide(right, context, prior_uses)
        _DECISIONS.labels(
            outcome="granted" if decision.allowed else "denied"
        ).inc()
        _OBS.events.emit(
            "policy.decision", owner=self.owner, subject=context.subject,
            right=right, allowed=decision.allowed, reason=decision.reason,
        )
        return decision

    def _decide(
        self, right: str, context: AccessContext, prior_uses: int
    ) -> Decision:
        if right not in self.rights_of(context):
            return Decision(False, f"no grant of {right!r} for {context.subject!r}")
        for condition in self.conditions:
            if not condition.evaluate(context):
                return Decision(False, f"condition failed: {condition.describe()}")
        if self.max_uses is not None and prior_uses >= self.max_uses:
            return Decision(
                False, f"use budget exhausted ({prior_uses}/{self.max_uses})"
            )
        return Decision(True, "granted", obligations=self.obligations)

    # -- canonical serialization ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "owner": self.owner,
            "grants": [grant.to_dict() for grant in self.grants],
            "conditions": [condition.to_dict() for condition in self.conditions],
            "obligations": [obligation.to_dict() for obligation in self.obligations],
            "max_uses": self.max_uses,
        }

    def to_bytes(self) -> bytes:
        """Canonical byte form (sorted-key JSON) for MAC binding."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UsagePolicy":
        return cls(
            owner=data["owner"],
            grants=tuple(Grant.from_dict(grant) for grant in data["grants"]),
            conditions=tuple(
                condition_from_dict(condition) for condition in data["conditions"]
            ),
            obligations=tuple(
                Obligation.from_dict(obligation) for obligation in data["obligations"]
            ),
            max_uses=data["max_uses"],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "UsagePolicy":
        try:
            parsed = json.loads(data.decode())
            return cls.from_dict(parsed)
        except (ValueError, UnicodeDecodeError, KeyError, TypeError,
                AttributeError) as exc:
            # adversary-controlled bytes must surface as a typed policy
            # error, whatever shape the damage takes
            raise PolicyError("malformed policy bytes") from exc


def private_policy(owner: str) -> UsagePolicy:
    """The default policy: nobody but the owner."""
    return UsagePolicy(owner=owner)
