"""The key directory: ring-edge agreement, epochs, membership.

Replaces the :meth:`AggregationNode.preshared` stopgap (one hashed
group secret = one fleet-wide class break) with per-edge agreed keys
and a lifecycle:

* **Agreement** runs only along the O(N·k) masking-ring edges the
  SecAgg graph actually uses — never the N² pairs. Each edge does one
  X3DH agreement over the cells' published prekey bundles
  (:mod:`repro.keymgmt.prekeys`), so a sleeping responder can be
  agreed-with asynchronously and completes its side when it wakes.
* **Epochs** ratchet every edge secret through a one-way chain:
  ``chain_0 = HKDF(SK, "km-chain|e")``, ``chain_{n+1} =
  SHA256("km-ratchet|" || chain_n)``, and the epoch's mask key is
  ``HKDF(chain, "km-mask")``. A leaked *mask key* unmasks nothing in
  any other epoch (it is one derivation off the chain); a leaked
  *chain* additionally exposes later epochs of that one edge but never
  earlier ones. Either way a compromise is contained by epoch and by
  edge — the E7/E11 class-break containment story, per epoch.
* **Membership** (join / leave / revoke) bumps the epoch and re-agrees
  the ring around the change, so a removed member's keys are excluded
  from every future epoch and a joiner cannot unmask past ones. A
  *revoked* name is additionally banned from re-enrolling.

The directory is trusted-cell-side infrastructure: in the paper's
model it runs inside secure hardware (the TDS "key server" of
arXiv:1509.03646), which is why it may hold member rings in the
in-process simulation. The untrusted-network half of the lifecycle —
rotation notices, acks, retry under churn — lives in
:mod:`repro.keymgmt.service`.

``agreement="hashed"`` keeps the directory's epoch/revocation
machinery but derives edge secrets from a group secret instead of
X3DH — the honest migration target for benches whose cost tables
would otherwise be dominated by modexp (e.g. E9c's complete-graph
sweeps), with the same lifecycle semantics.
"""

from __future__ import annotations

import itertools
import random

from ..commons.aggregation import (
    AggregationNode,
    _effective_degree,
    ring_neighbor_positions,
)
from ..crypto.keys import KeyRing, generate_exchange_keypair
from ..crypto.primitives import hkdf, sha256
from ..errors import ConfigurationError, ProtocolError
from ..obs import get_default as _obs_default
from .prekeys import PrekeyBundle

_OBS = _obs_default()
_ENROLLMENTS = _OBS.metrics.counter(
    "keymgmt.enrollments", help="members enrolled in a key directory")
_AGREEMENTS = _OBS.metrics.counter(
    "keymgmt.agreements", help="ring-edge key agreements completed",
    labelnames=("mode",))
_ASYNC_COMPLETIONS = _OBS.metrics.counter(
    "keymgmt.async_completions",
    help="agreements completed by a responder after it came online")
_ROTATIONS = _OBS.metrics.counter(
    "keymgmt.rotations", help="epoch advances")
_REVOCATIONS = _OBS.metrics.counter(
    "keymgmt.revocations", help="members revoked")
_KEYS_ISSUED = _OBS.metrics.counter(
    "keymgmt.keys_issued", help="per-edge epoch mask keys issued to nodes")

# Process-wide directory identities for the gate's roster-memo token.
_DIRECTORY_IDS = itertools.count(1)

AGREEMENT_X3DH = "x3dh"
AGREEMENT_HASHED = "hashed"


class EpochNode(AggregationNode):
    """An aggregation node masking from directory-issued epoch keys.

    Key material is a frozen snapshot: the per-ring-neighbor mask keys
    of one (epoch, generation). The directory issues a *fresh* node
    per epoch — reusing an old node after a rotation would serve stale
    masks out of its per-round cache.
    """

    def __init__(self, name: str, epoch: int, generation: int,
                 directory_token: int, epoch_keys: dict[str, bytes]) -> None:
        super().__init__(name, None)
        self.epoch = epoch
        self.generation = generation
        self._directory_token = directory_token
        self._epoch_keys = epoch_keys

    def _pairwise_key_for(self, peer: AggregationNode) -> bytes:
        key = self._epoch_keys.get(peer.name)
        if key is None:
            raise ProtocolError(
                f"cell {self.name!r} holds no epoch-{self.epoch} key for "
                f"{peer.name!r} (not a ring neighbor, or revoked)"
            )
        return key

    def roster_token(self):
        return ("epoch", self._directory_token, self.epoch, self.generation)


class _Member:
    __slots__ = ("name", "ring", "bundle", "online", "chains")

    def __init__(self, name: str, ring: KeyRing | None,
                 bundle: PrekeyBundle | None) -> None:
        self.name = name
        self.ring = ring
        self.bundle = bundle
        self.online = True
        # peer name -> 32-byte edge chain, ratcheted to the current epoch.
        self.chains: dict[str, bytes] = {}


class KeyDirectory:
    """Key lifecycle authority for one fleet's masking ring."""

    def __init__(self, *, rng: random.Random, neighbors: int | None = 32,
                 agreement: str = AGREEMENT_X3DH,
                 group_secret: bytes | None = None) -> None:
        if agreement not in (AGREEMENT_X3DH, AGREEMENT_HASHED):
            raise ConfigurationError(f"unknown agreement mode {agreement!r}")
        if agreement == AGREEMENT_HASHED and group_secret is None:
            raise ConfigurationError(
                "hashed agreement needs an explicit group secret")
        if agreement == AGREEMENT_X3DH and group_secret is not None:
            raise ConfigurationError(
                "x3dh agreement takes no group secret")
        self.token = next(_DIRECTORY_IDS)
        self.neighbors = neighbors
        self.agreement = agreement
        self._group_secret = group_secret
        self._rng = rng
        self.epoch = 0
        #: Bumped on every membership change and epoch advance; part of
        #: every issued node's roster-memo token.
        self.generation = 0
        self.active = False
        self.revoked: set[str] = set()
        self._members: dict[str, _Member] = {}
        # (responder, initiator) -> (ephemeral public, epoch at agreement):
        # initiator-side agreements waiting for the responder to wake up.
        self._pending: dict[tuple[str, str], tuple[int, int]] = {}

    # -- roster ------------------------------------------------------------

    def roster(self) -> list[str]:
        """Active members, in enrollment order (the masking-ring order)."""
        return list(self._members)

    def is_online(self, name: str) -> bool:
        return self._member(name).online

    def pending_peers(self, name: str) -> list[str]:
        """Ring neighbors this member holds no completed chain for yet."""
        member = self._member(name)
        return [peer for peer in self._ring_peers(name)
                if peer not in member.chains]

    def _member(self, name: str) -> _Member:
        member = self._members.get(name)
        if member is None:
            if name in self.revoked:
                raise ProtocolError(f"member {name!r} is revoked")
            raise ProtocolError(f"unknown member {name!r}")
        return member

    def _positions(self) -> dict[str, int]:
        return {name: position for position, name in enumerate(self._members)}

    def _ring_peers(self, name: str,
                    names: list[str] | None = None,
                    positions: dict[str, int] | None = None) -> list[str]:
        """The names this member's masking edges touch, roster order.

        ``names``/``positions`` let bulk callers (``issue_all``) pay
        the roster walk once instead of per member.
        """
        if names is None:
            names = self.roster()
        degree = _effective_degree(len(names), self.neighbors)
        if degree is None:
            return [peer for peer in names if peer != name]
        position = (positions[name] if positions is not None
                    else names.index(name))
        return [names[p]
                for p in ring_neighbor_positions(position, len(names), degree)]

    def edges(self) -> list[tuple[str, str]]:
        """Current ring edges as (lower-position, higher-position) names."""
        names = self.roster()
        degree = _effective_degree(len(names), self.neighbors)
        result = []
        if degree is None:
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    result.append((a, b))
            return result
        for position, name in enumerate(names):
            for peer_position in ring_neighbor_positions(
                    position, len(names), degree):
                if position < peer_position:
                    result.append((name, names[peer_position]))
        return result

    # -- membership events -------------------------------------------------

    def enroll(self, name: str, ring: KeyRing | None = None, *,
               online: bool = True) -> None:
        """Admit a member. Requires a key ring (and publishes its prekey
        bundle) in x3dh mode; hashed mode admits bare names.

        Before :meth:`activate`, enrollments batch — no agreement runs
        until the fleet is activated at epoch 0. After activation a
        join is a fleet event: the ring is re-agreed around the joiner
        and the epoch advances, so the joiner cannot unmask any round
        that predates it.
        """
        if name in self.revoked:
            raise ProtocolError(
                f"member {name!r} was revoked and cannot re-enroll")
        if name in self._members:
            raise ProtocolError(f"member {name!r} already enrolled")
        bundle = None
        if self.agreement == AGREEMENT_X3DH:
            if ring is None:
                raise ConfigurationError(
                    "x3dh agreement needs each member's key ring")
            bundle = PrekeyBundle.publish(name, ring)
            bundle.require_valid()
        member = _Member(name, ring, bundle)
        member.online = online
        self._members[name] = member
        self.generation += 1
        _ENROLLMENTS.inc()
        _OBS.events.emit("keymgmt.enroll", name=name, epoch=self.epoch,
                         active=self.active)
        if self.active:
            self._advance(reason="join")

    def activate(self) -> None:
        """Finish batch enrollment: agree every ring edge at epoch 0."""
        if self.active:
            raise ProtocolError("directory already activated")
        if len(self._members) < 2:
            raise ConfigurationError("a masking ring needs >= 2 members")
        self.active = True
        self.generation += 1
        with _OBS.tracer.span("keymgmt.activate",
                              members=len(self._members)):
            self._agree_missing_edges()

    def leave(self, name: str) -> None:
        """Voluntary departure: excluded from future epochs, may rejoin."""
        self._remove(name, reason="leave")

    def revoke(self, name: str) -> None:
        """Eject a member and ban the name from every future epoch."""
        self._remove(name, reason="revoke")
        self.revoked.add(name)
        _REVOCATIONS.inc()

    def _remove(self, name: str, reason: str) -> None:
        self._member(name)  # raises for unknown/revoked names
        del self._members[name]
        for member in self._members.values():
            member.chains.pop(name, None)
        for edge in [e for e in self._pending if name in e]:
            del self._pending[edge]
        self.generation += 1
        _OBS.events.emit("keymgmt.remove", name=name, reason=reason,
                         epoch=self.epoch)
        if self.active:
            self._advance(reason=reason)

    def set_online(self, name: str, online: bool) -> None:
        """Directory-visible presence; waking completes pending edges."""
        member = self._member(name)
        member.online = online
        if online and self.active:
            self._complete_pending(name)
            self._agree_missing_edges()

    # -- epochs ------------------------------------------------------------

    def advance_epoch(self) -> int:
        """Ratchet every edge chain one epoch forward; returns the new
        epoch. Old mask keys cannot be re-derived from the new chains
        (the ratchet is one-way), and nodes issued earlier keep masking
        at their own epoch — callers swap in freshly issued nodes."""
        if not self.active:
            raise ProtocolError("activate the directory before rotating")
        return self._advance(reason="rotate")

    def _advance(self, reason: str) -> int:
        self.epoch += 1
        self.generation += 1
        with _OBS.tracer.span("keymgmt.rotate", epoch=self.epoch,
                              reason=reason):
            for member in self._members.values():
                for peer, chain in member.chains.items():
                    # Each endpoint ratchets its own copy (as real cells
                    # would); the chains stay equal by construction.
                    member.chains[peer] = sha256(b"km-ratchet|" + chain)
            self._agree_missing_edges()
        _ROTATIONS.inc()
        _OBS.events.emit("keymgmt.epoch", epoch=self.epoch, reason=reason,
                         members=len(self._members))
        return self.epoch

    # -- agreement ---------------------------------------------------------

    def _agree_missing_edges(self) -> None:
        for low, high in self.edges():
            if high in self._members[low].chains:
                continue
            if (low, high) in self._pending or (high, low) in self._pending:
                continue
            self._agree_edge(low, high)

    def _agree_edge(self, a: str, b: str) -> None:
        if self.agreement == AGREEMENT_HASHED:
            low, high = sorted((a, b))
            secret = sha256(
                b"km-edge|" + self._group_secret
                + low.encode() + b"|" + high.encode()
            )[:16]
            chain = hkdf(secret, f"km-chain|{self.epoch}", 32)
            self._members[a].chains[b] = chain
            self._members[b].chains[a] = chain
            _AGREEMENTS.labels(mode=self.agreement).inc()
            return
        member_a, member_b = self._members[a], self._members[b]
        if member_a.online:
            initiator, responder = member_a, member_b
        elif member_b.online:
            initiator, responder = member_b, member_a
        else:
            # Both asleep: nothing can initiate; retried on wake-up.
            _OBS.events.emit("keymgmt.agree.deferred", edge=[a, b],
                             epoch=self.epoch)
            return
        eph_secret, eph_public = generate_exchange_keypair(self._rng)
        secret = initiator.ring.x3dh_initiate(
            responder.bundle.identity_public,
            responder.bundle.signed_prekey_public,
            eph_secret,
        )
        chain = hkdf(secret, f"km-chain|{self.epoch}", 32)
        initiator.chains[responder.name] = chain
        if responder.online:
            self._respond(responder, initiator, eph_public, self.epoch)
        else:
            self._pending[(responder.name, initiator.name)] = (
                eph_public, self.epoch)
        _AGREEMENTS.labels(mode=self.agreement).inc()

    def _respond(self, responder: _Member, initiator: _Member,
                 eph_public: int, agreed_epoch: int) -> None:
        secret = responder.ring.x3dh_respond(
            initiator.bundle.identity_public, eph_public)
        chain = hkdf(secret, f"km-chain|{agreed_epoch}", 32)
        for _ in range(self.epoch - agreed_epoch):
            chain = sha256(b"km-ratchet|" + chain)
        responder.chains[initiator.name] = chain

    def _complete_pending(self, name: str) -> None:
        ready = [edge for edge in self._pending if edge[0] == name]
        for edge in ready:
            eph_public, agreed_epoch = self._pending.pop(edge)
            initiator = self._members.get(edge[1])
            if initiator is None:
                continue  # initiator left/revoked while we slept
            self._respond(self._members[name], initiator, eph_public,
                          agreed_epoch)
            _ASYNC_COMPLETIONS.inc()

    # -- key issue ---------------------------------------------------------

    def issue_node(self, name: str) -> EpochNode:
        """A fresh masking node for the current (epoch, generation).

        Raises for revoked/unknown members and when any of the member's
        ring edges is still awaiting its asynchronous completion.
        """
        return self._issue(name, None, None)

    def _issue(self, name: str, names: list[str] | None,
               positions: dict[str, int] | None) -> EpochNode:
        member = self._member(name)
        if not self.active:
            raise ProtocolError("activate the directory before issuing keys")
        peers = self._ring_peers(name, names, positions)
        missing = [peer for peer in peers if peer not in member.chains]
        if missing:
            raise ProtocolError(
                f"member {name!r} has un-agreed ring edges: {missing}")
        epoch_keys = {
            peer: hkdf(member.chains[peer], "km-mask") for peer in peers
        }
        _KEYS_ISSUED.inc(len(epoch_keys))
        return EpochNode(name, self.epoch, self.generation, self.token,
                         epoch_keys)

    def issue_all(self) -> dict[str, EpochNode]:
        """Fresh nodes for the whole active roster."""
        names = self.roster()
        positions = self._positions()
        return {name: self._issue(name, names, positions) for name in names}
