"""The untrusted-network half of the key lifecycle.

The :class:`KeyDirectory` mutates synchronously inside trusted
hardware; what crosses the untrusted network are *lifecycle notices*:

* ``km.rotate`` — directory -> member: "epoch ``e`` is current, these
  names are excluded". Carries **no key material** (members ratchet
  their chains locally; the notice only tells them when). Broadcast on
  every rotation, join, leave and revocation.
* ``km.ack`` — member -> directory: "I am at epoch ``e``".

A revocation is only *operationally* complete once every remaining
member acknowledged the new epoch — a member still masking at the old
epoch would pair with the revoked cell's stale keys. Under the
``churning`` fault profile members sleep through notices, so the
service re-sends to the unacknowledged remainder on a
:class:`~repro.faults.retry.RetryPolicy` backoff ladder sized to
outlast typical offline windows. The quiet no-fault path stays clean:
first sends land, acks return before the check fires, and no retry
instrument records anything.

The service also journals every pending notice and ack (see
:class:`~repro.fedquery.journal.QueryJournal`) so the rotation and
revocation guarantees survive a directory *service* restart: a crashed
service comes back, rebuilds each unfinished rotation's pending set
from the journal, and re-sends to the unacknowledged remainder. The
trusted :class:`KeyDirectory` itself lives inside trusted hardware and
is not what crashes here — only its untrusted-network front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import CellOfflineError, ProtocolError
from ..faults.retry import RetryPolicy, schedule_retry
from ..infrastructure.network import Network
from ..sim.world import World
from .directory import KeyDirectory

DIRECTORY_ADDRESS = "km-directory"

MSG_ROTATE = "km.rotate"
MSG_ACK = "km.ack"

#: Sized against FaultPlan.churning's default 900 s mean offline
#: window: the ladder spans hours of simulated time before giving up.
ROTATION_RETRY = RetryPolicy(
    max_attempts=10, base_delay_s=60.0, multiplier=2.0,
    max_delay_s=1800.0, jitter=0.1,
)


def rotate_message(tag: str, epoch: int, generation: int,
                   revoked: list[str], reason: str) -> dict[str, Any]:
    return {"kind": MSG_ROTATE, "tag": tag, "epoch": epoch,
            "generation": generation, "revoked": sorted(revoked),
            "reason": reason}


def ack_message(tag: str, name: str, epoch: int) -> dict[str, Any]:
    return {"kind": MSG_ACK, "tag": tag, "name": name, "epoch": epoch}


def _wire_size(message: dict[str, Any]) -> int:
    import json
    return len(json.dumps(message, separators=(",", ":")))


class KeyClient:
    """A member cell's lifecycle endpoint: tracks the current epoch."""

    def __init__(self, world: World, network: Network, name: str, *,
                 directory_address: str = DIRECTORY_ADDRESS,
                 latency_ms: float = 20.0) -> None:
        self.world = world
        self.network = network
        self.name = name
        self.directory_address = directory_address
        self.epoch = 0
        self.excluded: set[str] = set()
        network.register(name, self._on_message, latency_ms=latency_ms)

    def _on_message(self, source: str, payload: dict[str, Any]) -> None:
        if payload.get("kind") != MSG_ROTATE:
            return
        # Notices can arrive duplicated or out of order (fault plane);
        # the epoch is monotone and exclusions only grow.
        self.epoch = max(self.epoch, payload["epoch"])
        self.excluded.update(payload["revoked"])
        ack = ack_message(payload["tag"], self.name, self.epoch)
        try:
            self.network.send(self.name, source, ack,
                              size_bytes=_wire_size(ack))
        except CellOfflineError:
            pass  # the retry ladder will re-elicit the ack


@dataclass
class RotationStatus:
    """Progress of one rotation notice across the fleet."""

    tag: str
    epoch: int
    reason: str
    started_at: int
    pending: set[str]
    retry_index: int = 0
    completed_at: int | None = None
    exhausted: bool = False
    acks: int = 0
    revoked: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class DirectoryService:
    """Fans lifecycle notices out of a :class:`KeyDirectory`."""

    def __init__(self, world: World, network: Network,
                 directory: KeyDirectory, *,
                 address: str = DIRECTORY_ADDRESS,
                 retry_policy: RetryPolicy = ROTATION_RETRY,
                 ack_timeout_s: int = 120,
                 latency_ms: float = 5.0,
                 journal=None) -> None:
        self.world = world
        self.network = network
        self.directory = directory
        self.address = address
        self.retry_policy = retry_policy
        self.ack_timeout_s = ack_timeout_s
        self.rotations: dict[str, RotationStatus] = {}
        if journal is None:
            # Lazy import: fedquery is a sibling package and the
            # journal module is dependency-free, but importing it at
            # module scope would couple the two packages' import order.
            from ..fedquery.journal import QueryJournal
            journal = QueryJournal()
        self.journal = journal
        self._crashed = False
        self._rng = world.rng(f"keymgmt.service.{address}")
        self._notices = world.obs.metrics.counter(
            "keymgmt.notices", help="lifecycle notices sent",
            labelnames=("kind",))
        self._acks = world.obs.metrics.counter(
            "keymgmt.acks", help="rotation acknowledgements received")
        self._retries = world.obs.metrics.counter(
            "retry.attempts",
            help="re-attempts after transient failures",
            labelnames=("op",))
        network.register(address, self._on_message, latency_ms=latency_ms)
        if network.fault_injector is not None:
            network.fault_injector.register_crashable(self)

    # -- lifecycle entry points -------------------------------------------

    def advance_epoch(self) -> str:
        """Rotate the directory and announce the new epoch."""
        self.directory.advance_epoch()
        return self._announce("rotate", [])

    def revoke(self, name: str) -> str:
        """Revoke ``name`` and announce its exclusion to the remainder.

        Returns the rotation tag; :meth:`exclusion_latency` reports how
        long the fleet took to fully converge on the new epoch.
        """
        self.directory.revoke(name)
        return self._announce("revoke", [name])

    def enroll(self, name: str, ring=None, **kwargs) -> str | None:
        """Enroll through the directory; announces when post-activation."""
        was_active = self.directory.active
        self.directory.enroll(name, ring, **kwargs)
        if was_active:
            return self._announce("join", [])
        return None

    # -- notice fan-out with retry ----------------------------------------

    def _announce(self, reason: str, revoked: list[str]) -> str:
        tag = f"km-{reason}-e{self.directory.epoch}-{len(self.rotations)}"
        status = RotationStatus(
            tag=tag, epoch=self.directory.epoch, reason=reason,
            started_at=self.world.now,
            pending=set(self.directory.roster()),
            revoked=list(revoked),
        )
        if not status.pending:
            raise ProtocolError("no members left to notify")
        # Journal-before-send: a service crash between the directory
        # mutation and the fan-out must still deliver the notice after
        # a restart (the revocation has already happened in hardware).
        self.journal.append({
            "type": "rotation", "tag": tag, "epoch": status.epoch,
            "reason": reason, "revoked": list(revoked),
            "pending": sorted(status.pending), "at": status.started_at,
        })
        if self._crashed:
            return tag  # crashed mid-append; restart resumes the notice
        self.rotations[tag] = status
        with self.world.obs.tracer.span("keymgmt.announce", tag=tag,
                                        reason=reason):
            self._send_round(status)
        self.world.loop.schedule_in(
            self.ack_timeout_s, lambda: self._check(tag),
            label=f"km-ack-check:{tag}")
        return tag

    def _send_round(self, status: RotationStatus) -> None:
        message = rotate_message(status.tag, status.epoch,
                                 self.directory.generation, status.revoked,
                                 status.reason)
        size = _wire_size(message)
        for name in sorted(status.pending):
            self._notices.labels(kind=status.reason).inc()
            try:
                self.network.send(self.address, name, message,
                                  size_bytes=size)
            except CellOfflineError:
                pass  # sleeping member; the retry ladder covers it

    def _check(self, tag: str) -> None:
        status = self.rotations.get(tag)
        if status is None or not status.pending:
            return  # resolved, or the state died with a crash
        handle = schedule_retry(
            self.world, self.retry_policy, status.retry_index + 1,
            lambda: self._resend(tag), rng=self._rng,
            label=f"km.rotate:{status.reason}")
        if handle is None:
            status.exhausted = True
            self.journal.append({"type": "exhausted", "tag": tag})
            self.world.obs.events.emit(
                "keymgmt.rotate.exhausted", tag=tag,
                unreachable=sorted(status.pending))
            return
        status.retry_index += 1
        self._retries.labels(op=f"km.rotate:{status.reason}").inc()
        self.world.obs.events.emit(
            "keymgmt.rotate.retry", tag=tag, attempt=status.retry_index,
            unacked=len(status.pending))

    def _resend(self, tag: str) -> None:
        status = self.rotations.get(tag)
        if status is None or not status.pending:
            return  # resolved, or the state died with a crash
        self._send_round(status)
        self.world.loop.schedule_in(
            self.ack_timeout_s, lambda: self._check(tag),
            label=f"km-ack-check:{tag}")

    def _on_message(self, source: str, payload: dict[str, Any]) -> None:
        if self._crashed:
            return  # a delivery already in flight when the service died
        if payload.get("kind") != MSG_ACK:
            return
        status = self.rotations.get(payload["tag"])
        if status is None:
            return
        self.journal.append({
            "type": "ack", "tag": payload["tag"], "name": source,
            "epoch": payload["epoch"],
        })
        if self._crashed:
            return  # the journal hook crashed us mid-append
        self._acks.inc()
        status.acks += 1
        if payload["epoch"] < status.epoch:
            return  # stale ack from a reordered older notice
        status.pending.discard(source)
        if not status.pending and status.completed_at is None:
            status.completed_at = self.world.now
            self.journal.append({
                "type": "complete", "tag": status.tag,
                "at": status.completed_at,
            })
            self.world.obs.events.emit(
                "keymgmt.rotate.complete", tag=status.tag,
                epoch=status.epoch, reason=status.reason,
                latency_s=status.completed_at - status.started_at)

    # -- crash and restart -------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Kill the service: every in-flight rotation's in-memory state
        dies; the journal (durable by contract) and the trusted
        :class:`KeyDirectory` (hardware-resident) survive."""
        if self._crashed:
            return
        self._crashed = True
        self.rotations.clear()
        if self.network.is_online(self.address):
            self.network.set_online(self.address, False)
        self.world.obs.events.emit(
            "crash.down", address=self.address, journal=len(self.journal))

    def restart(self) -> None:
        """Rebuild every rotation from the journal; re-send to the
        unacknowledged remainder of unfinished ones. The retry ladder
        restarts with the process (``retry_index`` resets) — the
        convergence guarantee is unchanged, only re-dated."""
        if not self._crashed:
            return
        self._crashed = False
        if not self.network.is_online(self.address):
            self.network.set_online(self.address, True)
        self._replay_journal()

    def _replay_journal(self) -> None:
        for tag, records in self.journal.by_tag().items():
            start = records[0]
            if start["type"] != "rotation":
                continue
            status = RotationStatus(
                tag=tag, epoch=int(start["epoch"]), reason=start["reason"],
                started_at=int(start["at"]),
                pending=set(start["pending"]),
                revoked=list(start["revoked"]),
            )
            for record in records[1:]:
                kind = record["type"]
                if kind == "ack":
                    status.acks += 1
                    if record["epoch"] >= status.epoch:
                        status.pending.discard(record["name"])
                elif kind == "complete":
                    status.completed_at = int(record["at"])
                elif kind == "exhausted":
                    status.exhausted = True
            self.rotations[tag] = status
            if not status.pending and status.completed_at is None:
                # The last ack hit the journal but the crash beat the
                # completion record: the fleet *had* converged; re-date
                # the completion to the restart.
                status.completed_at = self.world.now
                self.journal.append({
                    "type": "complete", "tag": tag,
                    "at": status.completed_at,
                })
            if status.complete or status.exhausted:
                continue
            self.world.obs.events.emit(
                "crash.recovered", address=self.address, tag=tag,
                records=len(records), pending=len(status.pending))
            self._send_round(status)
            self.world.loop.schedule_in(
                self.ack_timeout_s, lambda t=tag: self._check(t),
                label=f"km-ack-check:{tag} (resumed)")

    # -- reporting ---------------------------------------------------------

    def exclusion_latency(self, tag: str) -> float | None:
        """Seconds from the announcement to full fleet convergence."""
        status = self.rotations[tag]
        if status.completed_at is None:
            return None
        return float(status.completed_at - status.started_at)
