"""Key lifecycle for trusted-cell fleets.

Scalable pairwise key agreement along the masking-ring edges (X3DH
over prekey bundles, O(N·k) — never N²), epoch-based ratcheted
rotation, and join/leave/revocation as first-class fleet events. See
``docs/protocols.md`` ("Key lifecycle") and ``docs/threat-model.md``
(epoch containment).

* :class:`KeyDirectory` / :class:`EpochNode` — the trusted-side
  authority and the nodes it issues (:mod:`repro.keymgmt.directory`).
* :class:`PrekeyBundle` — the published agreement material
  (:mod:`repro.keymgmt.prekeys`).
* :class:`DirectoryService` / :class:`KeyClient` — rotation notices
  and acks over the untrusted network, with retry under churn
  (:mod:`repro.keymgmt.service`).
"""

from .directory import (
    AGREEMENT_HASHED,
    AGREEMENT_X3DH,
    EpochNode,
    KeyDirectory,
)
from .prekeys import PrekeyBundle
from .service import (
    DIRECTORY_ADDRESS,
    ROTATION_RETRY,
    DirectoryService,
    KeyClient,
    RotationStatus,
)

__all__ = [
    "AGREEMENT_HASHED",
    "AGREEMENT_X3DH",
    "DIRECTORY_ADDRESS",
    "DirectoryService",
    "EpochNode",
    "KeyClient",
    "KeyDirectory",
    "PrekeyBundle",
    "ROTATION_RETRY",
    "RotationStatus",
]
