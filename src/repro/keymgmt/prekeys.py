"""Prekey bundles: the published half of asynchronous key agreement.

A cell that wants to be agreed-with while offline publishes a
*prekey bundle* — its long-term identity elements plus a signed
prekey — to the key directory (the X3DH pattern, following the
TDS-context key-exchange design of arXiv:1509.03646). Any peer can
then run the initiator side of :meth:`~repro.crypto.keys.KeyRing.
x3dh_initiate` against the bundle at any time; the sleeping cell
completes its side from the initiator's ephemeral element whenever it
next wakes up.

The Schnorr signature over the prekey element stops a malicious
directory from substituting its own prekey (which would let it sit in
the middle of every agreement it brokered).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.keys import KeyRing, prekey_signing_bytes
from ..crypto.signing import Signature, VerifyKey
from ..errors import IntegrityError


@dataclass(frozen=True)
class PrekeyBundle:
    """One cell's published agreement material."""

    name: str
    #: Long-term DH identity element (``KeyRing.exchange_public``).
    identity_public: int
    #: Schnorr verification element (``KeyRing.verify_key.element``).
    verify_element: int
    #: The signed prekey element ``g^spk``.
    signed_prekey_public: int
    #: Schnorr signature over the prekey element, wire form.
    prekey_signature: bytes

    @classmethod
    def publish(cls, name: str, ring: KeyRing) -> "PrekeyBundle":
        """Build this cell's bundle from its key ring."""
        return cls(
            name=name,
            identity_public=ring.exchange_public,
            verify_element=ring.verify_key.element,
            signed_prekey_public=ring.signed_prekey_public,
            prekey_signature=ring.sign_prekey().to_bytes(),
        )

    def require_valid(self) -> None:
        """Raise :class:`IntegrityError` unless the prekey signature
        verifies under the bundle's own identity key."""
        VerifyKey(self.verify_element).require_valid(
            prekey_signing_bytes(self.signed_prekey_public),
            Signature.from_bytes(self.prekey_signature),
        )

    def verify(self) -> bool:
        try:
            self.require_valid()
        except IntegrityError:
            return False
        return True

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> dict:
        """JSON-safe form (group elements as hex) for directory messages."""
        return {
            "name": self.name,
            "identity": format(self.identity_public, "x"),
            "verify": format(self.verify_element, "x"),
            "prekey": format(self.signed_prekey_public, "x"),
            "signature": self.prekey_signature.hex(),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "PrekeyBundle":
        return cls(
            name=payload["name"],
            identity_public=int(payload["identity"], 16),
            verify_element=int(payload["verify"], 16),
            signed_prekey_public=int(payload["prekey"], 16),
            prekey_signature=bytes.fromhex(payload["signature"]),
        )
