"""Asynchronous secure aggregation through the untrusted cloud.

The synchronous protocols in :mod:`repro.commons.aggregation` assume
everyone is reachable in the same instant — exactly what the paper says
cells are *not*. This variant uses the infrastructure the way the paper
prescribes ("participate to distributed computations (e.g., store
intermediate results)"):

1. the initiator posts a collection request naming the roster, the
   round tag and a submission deadline;
2. each cell, **whenever it next comes online**, posts its pairwise-
   masked contribution to a cloud mailbox — the stored intermediate
   result. The cloud learns nothing: every value is masked over the
   full roster;
3. at the deadline the aggregator drains the mailbox. If some cells
   never showed up, it posts a recovery request; each *submitted* cell
   answers at its next wake-up with the net mask it shared with the
   missing cells (protecting nobody: the missing contributed nothing);
4. the aggregate completes when all recovery answers are in.

Graceful degradation (``recovery_timeout`` set): recovery runs in
bounded *rounds*. Each round re-requests net masks from every still-
active submitter against the full current missing set; a submitter
that does not answer within the round window is **demoted** — its
contribution is excluded and it joins the missing set — and a fresh
round re-requests masks for the enlarged set. The aggregate then
completes as a *partial* result over the surviving cells (flagged
``partial=True``) instead of hanging forever. A privacy floor aborts
the round when fewer than two active cells remain: a "sum" over one
cell would reveal that cell's value.

With ``recovery_timeout=None`` the legacy strict behaviour is kept:
no submissions or a survivor that never returns raise
:class:`~repro.errors.ProtocolError`, and recovery polls indefinitely.

Everything runs on the simulation event loop, so completion time under
a given availability pattern is a measured output, not an assumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..crypto import shamir
from ..errors import ConfigurationError, ProtocolError, TransientCloudError
from ..faults.retry import RetryPolicy, retry_call
from ..infrastructure.cloud import CloudProvider
from ..sim.world import World
from .aggregation import AggregationNode, _effective_degree, _masking_peers

_FIELD_ELEMENT_BYTES = 16


@dataclass
class AsyncResult:
    """Outcome of one asynchronous aggregation round.

    ``partial`` marks a degraded completion: ``demoted`` lists the
    submitters whose contributions had to be excluded because they
    stopped answering recovery requests. ``failure`` is set (and
    ``total`` stays None) when the round had to be abandoned —
    the reason string says why.
    """

    total: int | None = None
    submitted: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    demoted: list[str] = field(default_factory=list)
    partial: bool = False
    failure: str | None = None
    completed_at: int | None = None
    messages: int = 0
    bytes: int = 0

    @property
    def complete(self) -> bool:
        return self.total is not None

    def signed_total(self) -> int:
        if self.total is None:
            raise ProtocolError("aggregation has not completed")
        return shamir.decode_signed(self.total)


class AsyncMaskedAggregation:
    """One asynchronous masked-sum round over cloud mailboxes."""

    def __init__(
        self,
        world: World,
        cloud: CloudProvider,
        nodes: list[AggregationNode],
        values: dict[str, int],
        round_tag: str,
        deadline: int,
        wake_times: dict[str, list[int]],
        poll_period: int = 300,
        neighbors: int | None = None,
        recovery_timeout: int | None = None,
        max_recovery_rounds: int = 3,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        """``wake_times[name]`` lists the instants a cell is online;
        an empty list models a cell that never shows up.
        ``neighbors=k`` masks over the k-regular ring graph (see
        :class:`~repro.commons.aggregation.MaskedSum`).
        ``recovery_timeout`` (seconds) bounds each recovery round and
        enables demotion/partial fallback; ``retry_policy`` retries
        transient cloud failures on every mailbox round-trip."""
        if len(nodes) < 2:
            raise ConfigurationError("need at least two participants")
        if deadline <= world.now:
            raise ConfigurationError("deadline must be in the future")
        if recovery_timeout is not None and recovery_timeout < 1:
            raise ConfigurationError("recovery_timeout must be >= 1 second")
        if max_recovery_rounds < 1:
            raise ConfigurationError("max_recovery_rounds must be >= 1")
        self.world = world
        self.cloud = cloud
        self.nodes = nodes
        self.values = values
        self.round_tag = round_tag
        self.deadline = deadline
        self.wake_times = wake_times
        self.poll_period = poll_period
        self.recovery_timeout = recovery_timeout
        self.max_recovery_rounds = max_recovery_rounds
        self.retry_policy = retry_policy
        self._retry_rng = world.rng(f"agg-retry:{round_tag}")
        self._degree = _effective_degree(len(nodes), neighbors)
        self.result = AsyncResult()
        self._order = {node.name: i for i, node in enumerate(nodes)}
        self._by_name = {node.name: node for node in nodes}
        self._contributions: dict[str, int] = {}
        self._active: set[str] = set()
        self._round = 0
        self._round_answers: dict[str, int] = {}
        self._recovery_needed: set[str] = set()
        self._recovery_total = 0

    # -- mailbox names ------------------------------------------------------

    @property
    def _contrib_box(self) -> str:
        return f"agg/{self.round_tag}/contrib"

    @property
    def _recovery_box(self) -> str:
        return f"agg/{self.round_tag}/recovery"

    # -- resilient mailbox I/O ----------------------------------------------

    def _cloud_post(self, mailbox: str, sender: str, payload: bytes) -> None:
        if self.retry_policy is None:
            self.cloud.post_message(mailbox, sender, payload)
            return
        retry_call(
            lambda: self.cloud.post_message(mailbox, sender, payload),
            policy=self.retry_policy, obs=self.world.obs,
            rng=self._retry_rng, operation="agg.post",
        )

    def _cloud_fetch(self, mailbox: str) -> list[tuple[str, bytes]]:
        if self.retry_policy is None:
            return self.cloud.fetch_messages(mailbox)
        return retry_call(
            lambda: self.cloud.fetch_messages(mailbox),
            policy=self.retry_policy, obs=self.world.obs,
            rng=self._retry_rng, operation="agg.fetch",
        )

    # -- node-side behaviour --------------------------------------------------

    def _masked_value(self, node: AggregationNode) -> int:
        position = self._order[node.name]
        masked = shamir.encode_signed(self.values[node.name])
        for peer in _masking_peers(self.nodes, position, self._degree):
            mask = node.pairwise_mask(peer, self.round_tag)
            if position < self._order[peer.name]:
                masked = (masked + mask) % shamir.PRIME
            else:
                masked = (masked - mask) % shamir.PRIME
        return masked

    def _net_recovery_mask(self, node: AggregationNode, missing: list[str]) -> int:
        """The signed net mask ``node`` shared with its missing *graph
        neighbors* (on the complete graph: all missing peers). The
        cached round keystream answers without fresh derivations."""
        position = self._order[node.name]
        missing_set = set(missing)
        net = 0
        for gone in _masking_peers(self.nodes, position, self._degree):
            if gone.name not in missing_set:
                continue
            mask = node.pairwise_mask(gone, self.round_tag)
            if position < self._order[gone.name]:
                net = (net + mask) % shamir.PRIME
            else:
                net = (net - mask) % shamir.PRIME
        return net

    def _submit(self, node: AggregationNode) -> None:
        if self.world.now > self.deadline:
            return  # too late; this cell counts as missing
        with self.world.obs.tracer.span(
            "agg.async.submit", node=node.name, round_tag=self.round_tag
        ):
            payload = json.dumps(
                {"from": node.name, "masked": self._masked_value(node)}
            ).encode()
            try:
                self._cloud_post(self._contrib_box, node.name, payload)
            except TransientCloudError:
                self._resubmit_later(node)
                return
        self.result.messages += 1
        self.result.bytes += _FIELD_ELEMENT_BYTES
        self.world.obs.events.emit(
            "agg.async.submit", node=node.name, round_tag=self.round_tag
        )

    def _resubmit_later(self, node: AggregationNode) -> None:
        """Retries an exhausted submission at the cell's next wake-up
        before the deadline; with none left the cell goes missing."""
        upcoming = [
            t for t in sorted(self.wake_times.get(node.name, ()))
            if self.world.now < t <= self.deadline
        ]
        self.world.obs.events.emit(
            "agg.async.submit_failed", node=node.name,
            round_tag=self.round_tag, will_retry=bool(upcoming),
        )
        if upcoming:
            self.world.loop.schedule_at(
                upcoming[0], lambda: self._submit(node),
                label=f"resubmit {node.name}",
            )

    def _answer_recovery(
        self,
        node: AggregationNode,
        missing: list[str],
        round_index: int | None = None,
    ) -> None:
        if round_index is not None and (
            round_index != self._round or node.name not in self._active
        ):
            return  # stale request: a later round superseded this one
        body = {"from": node.name, "net_mask": self._net_recovery_mask(node, missing)}
        if round_index is not None:
            body["round"] = round_index
        try:
            self._cloud_post(
                self._recovery_box, node.name, json.dumps(body).encode()
            )
        except TransientCloudError:
            # counts as a non-answer; round-close demotes or next poll
            # never sees it — the fault plane recorded the failure
            return
        self.result.messages += 1
        self.result.bytes += _FIELD_ELEMENT_BYTES
        self.world.obs.events.emit(
            "agg.async.recovery", node=node.name, round_tag=self.round_tag,
            missing=len(missing),
        )

    # -- orchestration ---------------------------------------------------------

    def start(self) -> None:
        """Schedule every cell's wake-ups and the aggregator's deadline."""
        for node in self.nodes:
            wakes = sorted(self.wake_times.get(node.name, ()))
            pre_deadline = [t for t in wakes if t <= self.deadline]
            if pre_deadline:
                self.world.loop.schedule_at(
                    pre_deadline[0], lambda n=node: self._submit(n),
                    label=f"submit {node.name}",
                )
        self.world.loop.schedule_at(
            self.deadline, self._close_submissions, label="aggregate deadline"
        )

    def _close_submissions(self) -> None:
        try:
            contributions = self._cloud_fetch(self._contrib_box)
        except TransientCloudError:
            # the mailbox persists; close again after a poll period
            self.world.obs.events.emit(
                "agg.async.close_deferred", round_tag=self.round_tag
            )
            self.world.loop.schedule_in(
                self.poll_period, self._close_submissions,
                label="aggregate deadline (deferred)",
            )
            return
        for _, payload in contributions:
            body = json.loads(payload.decode())
            self._contributions[body["from"]] = body["masked"]
        self.result.submitted = sorted(self._contributions)
        self.result.missing = sorted(
            set(self._order) - set(self.result.submitted)
        )
        if not self.result.missing:
            total = 0
            for masked in self._contributions.values():
                total = (total + masked) % shamir.PRIME
            self._finish(total)
            return
        if not self.result.submitted:
            if self.recovery_timeout is None:
                raise ProtocolError("no cell submitted before the deadline")
            self._abandon("no cell submitted before the deadline")
            return
        if self.recovery_timeout is None:
            self._legacy_recovery()
            return
        self._active = set(self.result.submitted)
        self._start_recovery_round()

    # -- strict (legacy) recovery ---------------------------------------------

    def _legacy_recovery(self) -> None:
        total = 0
        for masked in self._contributions.values():
            total = (total + masked) % shamir.PRIME
        self._recovery_total = total
        # ask every submitted cell for its net mask with the missing set
        self._recovery_needed = set(self.result.submitted)
        for name in self.result.submitted:
            node = self._by_name[name]
            post_deadline = [
                t for t in sorted(self.wake_times.get(name, ()))
                if t > self.deadline
            ]
            if not post_deadline:
                raise ProtocolError(
                    f"survivor {name!r} never returns; recovery impossible"
                )
            self.world.loop.schedule_at(
                post_deadline[0],
                lambda n=node: self._answer_recovery(n, self.result.missing),
                label=f"recovery {name}",
            )
        self._poll_recovery()

    def _poll_recovery(self) -> None:
        try:
            messages = self._cloud_fetch(self._recovery_box)
        except TransientCloudError:
            messages = []  # the next poll will pick them up
        for _, payload in messages:
            body = json.loads(payload.decode())
            self._recovery_total = (
                self._recovery_total - body["net_mask"]
            ) % shamir.PRIME
            self._recovery_needed.discard(body["from"])
        if not self._recovery_needed:
            self._finish(self._recovery_total)
            return
        self.world.loop.schedule_in(
            self.poll_period, self._poll_recovery, label="recovery poll"
        )

    # -- bounded (degrading) recovery -------------------------------------------

    def _current_missing(self) -> list[str]:
        return sorted(set(self._order) - self._active)

    def _start_recovery_round(self) -> None:
        self._round += 1
        if self._round > self.max_recovery_rounds:
            self._abandon(
                f"recovery exceeded {self.max_recovery_rounds} rounds"
            )
            return
        if len(self._active) < 2:
            self._abandon(
                "fewer than two active cells remain (privacy floor)"
            )
            return
        missing = self._current_missing()
        self._round_answers = {}
        round_index = self._round
        start = self.world.now
        close_at = start + self.recovery_timeout
        self.world.obs.events.emit(
            "agg.async.rerequest", round_tag=self.round_tag,
            round=round_index, active=len(self._active), missing=len(missing),
        )
        for name in sorted(self._active):
            node = self._by_name[name]
            in_window = [
                t for t in sorted(self.wake_times.get(name, ()))
                if start < t <= close_at
            ]
            if in_window:
                self.world.loop.schedule_at(
                    in_window[0],
                    lambda n=node, m=missing, r=round_index:
                        self._answer_recovery(n, m, r),
                    label=f"recovery r{round_index} {name}",
                )
            # no wake in the window: the round deadline will demote it
        self.world.loop.schedule_at(
            close_at, lambda r=round_index: self._close_recovery_round(r),
            label=f"recovery round {round_index} deadline",
        )

    def _close_recovery_round(self, round_index: int) -> None:
        if self.result.complete or self.result.failure is not None:
            return
        if round_index != self._round:
            return  # a deferred close raced a newer round
        try:
            messages = self._cloud_fetch(self._recovery_box)
        except TransientCloudError:
            # answers persist in the mailbox; extend the round slightly
            self.world.loop.schedule_in(
                self.poll_period,
                lambda: self._close_recovery_round(round_index),
                label=f"recovery round {round_index} deadline (deferred)",
            )
            return
        for _, payload in messages:
            body = json.loads(payload.decode())
            if body.get("round") != round_index:
                continue  # answer to a superseded missing set
            if body["from"] not in self._active:
                continue
            self._round_answers[body["from"]] = body["net_mask"]
        laggards = self._active - set(self._round_answers)
        if not laggards:
            total = 0
            for name in self._active:
                total = (total + self._contributions[name]) % shamir.PRIME
            for net_mask in self._round_answers.values():
                total = (total - net_mask) % shamir.PRIME
            self.result.missing = self._current_missing()
            self.result.partial = bool(self.result.demoted)
            self._finish(total)
            return
        demoted_metric = self.world.obs.metrics.counter(
            "agg.async.demoted",
            help="submitters excluded after missing a recovery round",
        )
        for name in sorted(laggards):
            self._active.discard(name)
            self.result.demoted.append(name)
            demoted_metric.inc()
            self.world.obs.events.emit(
                "agg.async.demote", round_tag=self.round_tag, node=name,
                round=round_index,
            )
        self._start_recovery_round()

    # -- terminal states ---------------------------------------------------------

    def _abandon(self, reason: str) -> None:
        self.result.failure = reason
        self.result.partial = True
        self.result.missing = (
            self._current_missing() if self._active or self.result.demoted
            else sorted(self._order)
        )
        self.world.obs.events.emit(
            "agg.async.abandoned", round_tag=self.round_tag, reason=reason,
            demoted=len(self.result.demoted),
        )
        self.world.obs.metrics.counter(
            "agg.async.abandoned", help="async aggregations abandoned"
        ).inc()

    def _finish(self, total: int) -> None:
        self.result.total = total
        self.result.completed_at = self.world.now
        self.world.obs.events.emit(
            "agg.async.complete", round_tag=self.round_tag,
            submitted=len(self.result.submitted),
            missing=len(self.result.missing),
            partial=self.result.partial,
            messages=self.result.messages,
        )
        metrics = self.world.obs.metrics
        metrics.counter(
            "agg.async.completed", help="async aggregations completed"
        ).inc()
        if self.result.partial:
            metrics.counter(
                "agg.async.partial",
                help="async aggregations completed degraded (partial roster)",
            ).inc()
        metrics.counter(
            "agg.async.messages", help="async aggregation mailbox messages"
        ).inc(self.result.messages)
