"""Asynchronous secure aggregation through the untrusted cloud.

The synchronous protocols in :mod:`repro.commons.aggregation` assume
everyone is reachable in the same instant — exactly what the paper says
cells are *not*. This variant uses the infrastructure the way the paper
prescribes ("participate to distributed computations (e.g., store
intermediate results)"):

1. the initiator posts a collection request naming the roster, the
   round tag and a submission deadline;
2. each cell, **whenever it next comes online**, posts its pairwise-
   masked contribution to a cloud mailbox — the stored intermediate
   result. The cloud learns nothing: every value is masked over the
   full roster;
3. at the deadline the aggregator drains the mailbox. If some cells
   never showed up, it posts a recovery request; each *submitted* cell
   answers at its next wake-up with the net mask it shared with the
   missing cells (protecting nobody: the missing contributed nothing);
4. the aggregate completes when all recovery answers are in.

Everything runs on the simulation event loop, so completion time under
a given availability pattern is a measured output, not an assumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..crypto import shamir
from ..errors import ConfigurationError, ProtocolError
from ..infrastructure.cloud import CloudProvider
from ..sim.world import World
from .aggregation import AggregationNode, _effective_degree, _masking_peers

_FIELD_ELEMENT_BYTES = 16


@dataclass
class AsyncResult:
    """Outcome of one asynchronous aggregation round."""

    total: int | None = None
    submitted: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    completed_at: int | None = None
    messages: int = 0
    bytes: int = 0

    @property
    def complete(self) -> bool:
        return self.total is not None

    def signed_total(self) -> int:
        if self.total is None:
            raise ProtocolError("aggregation has not completed")
        return shamir.decode_signed(self.total)


class AsyncMaskedAggregation:
    """One asynchronous masked-sum round over cloud mailboxes."""

    def __init__(
        self,
        world: World,
        cloud: CloudProvider,
        nodes: list[AggregationNode],
        values: dict[str, int],
        round_tag: str,
        deadline: int,
        wake_times: dict[str, list[int]],
        poll_period: int = 300,
        neighbors: int | None = None,
    ) -> None:
        """``wake_times[name]`` lists the instants a cell is online;
        an empty list models a cell that never shows up.
        ``neighbors=k`` masks over the k-regular ring graph (see
        :class:`~repro.commons.aggregation.MaskedSum`)."""
        if len(nodes) < 2:
            raise ConfigurationError("need at least two participants")
        if deadline <= world.now:
            raise ConfigurationError("deadline must be in the future")
        self.world = world
        self.cloud = cloud
        self.nodes = nodes
        self.values = values
        self.round_tag = round_tag
        self.deadline = deadline
        self.wake_times = wake_times
        self.poll_period = poll_period
        self._degree = _effective_degree(len(nodes), neighbors)
        self.result = AsyncResult()
        self._order = {node.name: i for i, node in enumerate(nodes)}
        self._by_name = {node.name: node for node in nodes}
        self._recovery_needed: set[str] = set()
        self._recovery_total = 0

    # -- mailbox names ------------------------------------------------------

    @property
    def _contrib_box(self) -> str:
        return f"agg/{self.round_tag}/contrib"

    @property
    def _recovery_box(self) -> str:
        return f"agg/{self.round_tag}/recovery"

    # -- node-side behaviour --------------------------------------------------

    def _masked_value(self, node: AggregationNode) -> int:
        position = self._order[node.name]
        masked = shamir.encode_signed(self.values[node.name])
        for peer in _masking_peers(self.nodes, position, self._degree):
            mask = node.pairwise_mask(peer, self.round_tag)
            if position < self._order[peer.name]:
                masked = (masked + mask) % shamir.PRIME
            else:
                masked = (masked - mask) % shamir.PRIME
        return masked

    def _net_recovery_mask(self, node: AggregationNode, missing: list[str]) -> int:
        """The signed net mask ``node`` shared with its missing *graph
        neighbors* (on the complete graph: all missing peers). The
        cached round keystream answers without fresh derivations."""
        position = self._order[node.name]
        missing_set = set(missing)
        net = 0
        for gone in _masking_peers(self.nodes, position, self._degree):
            if gone.name not in missing_set:
                continue
            mask = node.pairwise_mask(gone, self.round_tag)
            if position < self._order[gone.name]:
                net = (net + mask) % shamir.PRIME
            else:
                net = (net - mask) % shamir.PRIME
        return net

    def _submit(self, node: AggregationNode) -> None:
        if self.world.now > self.deadline:
            return  # too late; this cell counts as missing
        with self.world.obs.tracer.span(
            "agg.async.submit", node=node.name, round_tag=self.round_tag
        ):
            payload = json.dumps(
                {"from": node.name, "masked": self._masked_value(node)}
            ).encode()
            self.cloud.post_message(self._contrib_box, node.name, payload)
        self.result.messages += 1
        self.result.bytes += _FIELD_ELEMENT_BYTES
        self.world.obs.events.emit(
            "agg.async.submit", node=node.name, round_tag=self.round_tag
        )

    def _answer_recovery(self, node: AggregationNode, missing: list[str]) -> None:
        payload = json.dumps(
            {"from": node.name, "net_mask": self._net_recovery_mask(node, missing)}
        ).encode()
        self.cloud.post_message(self._recovery_box, node.name, payload)
        self.result.messages += 1
        self.result.bytes += _FIELD_ELEMENT_BYTES
        self.world.obs.events.emit(
            "agg.async.recovery", node=node.name, round_tag=self.round_tag,
            missing=len(missing),
        )

    # -- orchestration ---------------------------------------------------------

    def start(self) -> None:
        """Schedule every cell's wake-ups and the aggregator's deadline."""
        for node in self.nodes:
            wakes = sorted(self.wake_times.get(node.name, ()))
            pre_deadline = [t for t in wakes if t <= self.deadline]
            if pre_deadline:
                self.world.loop.schedule_at(
                    pre_deadline[0], lambda n=node: self._submit(n),
                    label=f"submit {node.name}",
                )
        self.world.loop.schedule_at(
            self.deadline, self._close_submissions, label="aggregate deadline"
        )

    def _close_submissions(self) -> None:
        contributions = self.cloud.fetch_messages(self._contrib_box)
        total = 0
        for _, payload in contributions:
            body = json.loads(payload.decode())
            total = (total + body["masked"]) % shamir.PRIME
            self.result.submitted.append(body["from"])
        self.result.submitted.sort()
        self.result.missing = sorted(
            set(self._order) - set(self.result.submitted)
        )
        self._recovery_total = total
        if not self.result.missing:
            self._finish(total)
            return
        if not self.result.submitted:
            raise ProtocolError("no cell submitted before the deadline")
        # ask every submitted cell for its net mask with the missing set
        self._recovery_needed = set(self.result.submitted)
        for name in self.result.submitted:
            node = self._by_name[name]
            post_deadline = [
                t for t in sorted(self.wake_times.get(name, ()))
                if t > self.deadline
            ]
            if not post_deadline:
                raise ProtocolError(
                    f"survivor {name!r} never returns; recovery impossible"
                )
            self.world.loop.schedule_at(
                post_deadline[0],
                lambda n=node: self._answer_recovery(n, self.result.missing),
                label=f"recovery {name}",
            )
        self._poll_recovery()

    def _poll_recovery(self) -> None:
        for _, payload in self.cloud.fetch_messages(self._recovery_box):
            body = json.loads(payload.decode())
            self._recovery_total = (
                self._recovery_total - body["net_mask"]
            ) % shamir.PRIME
            self._recovery_needed.discard(body["from"])
        if not self._recovery_needed:
            self._finish(self._recovery_total)
            return
        self.world.loop.schedule_in(
            self.poll_period, self._poll_recovery, label="recovery poll"
        )

    def _finish(self, total: int) -> None:
        self.result.total = total
        self.result.completed_at = self.world.now
        self.world.obs.events.emit(
            "agg.async.complete", round_tag=self.round_tag,
            submitted=len(self.result.submitted),
            missing=len(self.result.missing),
            messages=self.result.messages,
        )
        metrics = self.world.obs.metrics
        metrics.counter(
            "agg.async.completed", help="async aggregations completed"
        ).inc()
        metrics.counter(
            "agg.async.messages", help="async aggregation mailbox messages"
        ).inc(self.result.messages)
