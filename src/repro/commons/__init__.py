"""Shared commons: secure aggregation, DP, anonymization, global queries."""

from .aggregation import (
    AggregationNode,
    AggregationResult,
    CleartextSum,
    MaskedSum,
    ShamirSum,
    masked_histogram,
    ring_neighbor_positions,
)
from .async_aggregation import AsyncMaskedAggregation, AsyncResult
from .anonymize import (
    GeneralizedRecord,
    distinct_sensitive_values,
    generalize,
    is_k_anonymous,
    k_anonymize,
    mondrian_partition,
    ncp,
)
from .dp import (
    central_dp_sum,
    distributed_dp_sum,
    dp_mean_absolute_error,
    gamma_noise_share,
    laplace_noise,
    laplace_scale,
)
from .quantiles import (
    bucket_midpoint,
    bucketize,
    quantile_from_counts,
    secure_median,
    secure_quantiles,
)
from .orchestrator import (
    TRANSFORM_DP,
    TRANSFORM_EXACT,
    TRANSFORM_KANON,
    CommonsCoordinator,
    CommonsMember,
    GlobalQuery,
    GlobalQueryResult,
)

__all__ = [
    "AsyncMaskedAggregation",
    "AsyncResult",
    "AggregationNode",
    "AggregationResult",
    "CleartextSum",
    "MaskedSum",
    "ShamirSum",
    "masked_histogram",
    "ring_neighbor_positions",
    "GeneralizedRecord",
    "distinct_sensitive_values",
    "generalize",
    "is_k_anonymous",
    "k_anonymize",
    "mondrian_partition",
    "ncp",
    "central_dp_sum",
    "distributed_dp_sum",
    "dp_mean_absolute_error",
    "gamma_noise_share",
    "laplace_noise",
    "laplace_scale",
    "bucket_midpoint",
    "bucketize",
    "quantile_from_counts",
    "secure_median",
    "secure_quantiles",
    "TRANSFORM_DP",
    "TRANSFORM_EXACT",
    "TRANSFORM_KANON",
    "CommonsCoordinator",
    "CommonsMember",
    "GlobalQuery",
    "GlobalQueryResult",
]
