"""k-anonymity by Mondrian multidimensional partitioning.

The other named transformation for the shared commons is
"anonymization": before records (not just aggregates) are released for
an epidemiological study, quasi-identifiers must be generalized so that
every released record is identical — on those attributes — to at least
``k − 1`` others.

Implementation: the greedy Mondrian algorithm. Recursively split the
record set on the quasi-identifier with the widest normalized range, at
the median, as long as both halves keep at least ``k`` records; then
generalize each leaf partition to attribute ranges. Information loss is
reported as NCP (normalized certainty penalty), the standard metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError


@dataclass(frozen=True)
class GeneralizedRecord:
    """One released record: QI ranges plus untouched sensitive values."""

    ranges: dict[str, tuple[float, float]]
    sensitive: dict[str, Any]


def _attribute_spread(records: list[dict], attribute: str) -> float:
    values = [record[attribute] for record in records]
    return max(values) - min(values)


def mondrian_partition(
    records: list[dict],
    quasi_identifiers: list[str],
    k: int,
) -> list[list[dict]]:
    """Split records into partitions of size >= k (greedy Mondrian)."""
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    if not quasi_identifiers:
        raise ConfigurationError("need at least one quasi-identifier")
    for attribute in quasi_identifiers:
        for record in records:
            if not isinstance(record.get(attribute), (int, float)):
                raise ConfigurationError(
                    f"quasi-identifier {attribute!r} must be numeric in all records"
                )
    if len(records) < k:
        raise ConfigurationError(
            f"cannot {k}-anonymize {len(records)} records"
        )
    # Global spans for normalized spread comparisons.
    spans = {
        attribute: max(_attribute_spread(records, attribute), 1e-12)
        for attribute in quasi_identifiers
    }

    def split(partition: list[dict]) -> list[list[dict]]:
        best_attribute = max(
            quasi_identifiers,
            key=lambda attribute: _attribute_spread(partition, attribute)
            / spans[attribute],
        )
        if _attribute_spread(partition, best_attribute) == 0:
            return [partition]
        ordered = sorted(partition, key=lambda record: record[best_attribute])
        median = len(ordered) // 2
        # Move the split point off ties so both sides are well-defined.
        split_value = ordered[median][best_attribute]
        left = [r for r in ordered if r[best_attribute] < split_value]
        right = [r for r in ordered if r[best_attribute] >= split_value]
        if len(left) < k or len(right) < k:
            return [partition]
        return split(left) + split(right)

    return split(list(records))


def generalize(
    partitions: list[list[dict]],
    quasi_identifiers: list[str],
    sensitive_attributes: list[str],
) -> list[GeneralizedRecord]:
    """Replace each record's QIs with its partition's ranges."""
    released = []
    for partition in partitions:
        ranges = {
            attribute: (
                float(min(record[attribute] for record in partition)),
                float(max(record[attribute] for record in partition)),
            )
            for attribute in quasi_identifiers
        }
        for record in partition:
            released.append(
                GeneralizedRecord(
                    ranges=dict(ranges),
                    sensitive={name: record[name] for name in sensitive_attributes},
                )
            )
    return released


def k_anonymize(
    records: list[dict],
    quasi_identifiers: list[str],
    sensitive_attributes: list[str],
    k: int,
) -> list[GeneralizedRecord]:
    """Full pipeline: partition then generalize."""
    partitions = mondrian_partition(records, quasi_identifiers, k)
    return generalize(partitions, quasi_identifiers, sensitive_attributes)


def is_k_anonymous(released: list[GeneralizedRecord], k: int) -> bool:
    """Verify the anonymity property on a released set."""
    groups: dict[tuple, int] = {}
    for record in released:
        signature = tuple(sorted(record.ranges.items()))
        groups[signature] = groups.get(signature, 0) + 1
    return all(count >= k for count in groups.values()) if released else True


def ncp(
    released: list[GeneralizedRecord],
    original: list[dict],
    quasi_identifiers: list[str],
) -> float:
    """Normalized certainty penalty in [0, 1]: 0 = no generalization,
    1 = every QI generalized to its full domain."""
    if not released:
        return 0.0
    spans = {
        attribute: max(_attribute_spread(original, attribute), 1e-12)
        for attribute in quasi_identifiers
    }
    total = 0.0
    for record in released:
        for attribute in quasi_identifiers:
            low, high = record.ranges[attribute]
            total += (high - low) / spans[attribute]
    return total / (len(released) * len(quasi_identifiers))


def distinct_sensitive_values(released: list[GeneralizedRecord],
                              attribute: str) -> dict[tuple, int]:
    """Per-equivalence-class count of distinct sensitive values
    (the l-diversity statistic)."""
    groups: dict[tuple, set] = {}
    for record in released:
        signature = tuple(sorted(record.ranges.items()))
        groups.setdefault(signature, set()).add(record.sensitive.get(attribute))
    return {signature: len(values) for signature, values in groups.items()}
