"""Secure aggregation among trusted cells.

The "shared commons" requirement: privacy must not hinder societal
benefit, so cells participate in global computations — sums, averages,
histograms — without exposing individual contributions. The paper
anticipates "atypical distributed protocols ... on one side a very
large number of highly secure, low power and weakly available trusted
cells and on the other side a highly powerful, highly available but
untrusted infrastructure".

Three protocols, matched to experiment E9:

* :class:`CleartextSum` — the no-privacy baseline: everyone posts their
  value to the aggregator.
* :class:`MaskedSum` — SecAgg-style pairwise masking. Every pair of
  cells derives a common mask from their Diffie-Hellman key; cell *i*
  submits ``value + Σ_{j>i} m_ij − Σ_{j<i} m_ij``. Masks cancel in the
  sum, so the untrusted aggregator learns only the total. Dropouts are
  recovered by asking survivors to reveal their pairwise masks *with
  the dropped cells only* (those cells contributed nothing, so the
  revealed masks protect nothing).
* :class:`ShamirSum` — each cell Shamir-shares its value across a small
  committee of cells; committee members sum the shares they hold and
  publish one partial sum each; any ``threshold`` partials reconstruct
  the total. Tolerates committee dropouts up to the threshold without
  any recovery round.

All protocols work over the integer field of :mod:`repro.crypto.shamir`
(values are scaled integers; negative values use the signed embedding)
and report message/byte/round accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto import shamir
from ..crypto.keys import KeyRing
from ..crypto.primitives import hmac_sha256
from ..errors import ConfigurationError, ProtocolError

_FIELD_ELEMENT_BYTES = 16  # one PRIME-field element on the wire


class AggregationNode:
    """One participant: a name, a value source, and key material."""

    def __init__(self, name: str, key_ring: KeyRing) -> None:
        self.name = name
        self.keys = key_ring
        # Pairwise keys are established once per peer (one DH exchange),
        # then reused across rounds — exactly as a real deployment would.
        self._pairwise_cache: dict[str, bytes] = {}

    @classmethod
    def from_cell(cls, cell) -> "AggregationNode":
        """Wrap a :class:`~repro.core.cell.TrustedCell`."""
        return cls(cell.name, cell.tee.keys)

    @classmethod
    def standalone(cls, name: str, rng: random.Random) -> "AggregationNode":
        """A lightweight node for large-N protocol experiments."""
        return cls(name, KeyRing.generate(rng))

    def pairwise_mask(self, peer: "AggregationNode", round_tag: str,
                      component: int = 0) -> int:
        """The shared mask between this node and ``peer`` for a round."""
        key = self._pairwise_cache.get(peer.name)
        if key is None:
            key = self.keys.pairwise_key(peer.keys.exchange_public)
            self._pairwise_cache[peer.name] = key
        digest = hmac_sha256(key, f"mask|{round_tag}|{component}".encode())
        return int.from_bytes(digest, "big") % shamir.PRIME


@dataclass
class AggregationResult:
    """Outcome and cost accounting of one aggregation round."""

    total: int
    participants: int
    dropped: int
    messages: int
    bytes: int
    rounds: int
    protocol: str
    aggregator_view: list[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        contributing = self.participants - self.dropped
        if contributing == 0:
            raise ProtocolError("no contributions to average")
        return shamir.decode_signed(self.total) / contributing


def _signed_total(total_mod_p: int) -> int:
    return total_mod_p % shamir.PRIME


class CleartextSum:
    """Baseline: the aggregator sees every individual value."""

    name = "cleartext"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
    ) -> AggregationResult:
        online = online if online is not None else {node.name for node in nodes}
        submissions = [
            shamir.encode_signed(values[node.name])
            for node in nodes
            if node.name in online
        ]
        total = sum(submissions) % shamir.PRIME
        return AggregationResult(
            total=_signed_total(total),
            participants=len(nodes),
            dropped=len(nodes) - len(submissions),
            messages=len(submissions),
            bytes=len(submissions) * _FIELD_ELEMENT_BYTES,
            rounds=1,
            protocol=self.name,
            aggregator_view=submissions,  # full leakage, by construction
        )


class MaskedSum:
    """Pairwise-masked aggregation with dropout recovery."""

    name = "masked"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
    ) -> AggregationResult:
        if len(nodes) < 2:
            raise ConfigurationError("masked sum needs at least two nodes")
        online = online if online is not None else {node.name for node in nodes}
        survivors = [node for node in nodes if node.name in online]
        dropped = [node for node in nodes if node.name not in online]
        if not survivors:
            raise ProtocolError("all participants dropped out")
        order = {node.name: position for position, node in enumerate(nodes)}

        messages = 0
        total_bytes = 0
        # Round 1: every survivor submits its masked value.
        masked_submissions = []
        for node in survivors:
            masked = shamir.encode_signed(values[node.name])
            for peer in nodes:
                if peer.name == node.name:
                    continue
                mask = node.pairwise_mask(peer, round_tag)
                if order[node.name] < order[peer.name]:
                    masked = (masked + mask) % shamir.PRIME
                else:
                    masked = (masked - mask) % shamir.PRIME
            masked_submissions.append(masked)
            messages += 1
            total_bytes += _FIELD_ELEMENT_BYTES
        rounds = 1

        total = sum(masked_submissions) % shamir.PRIME

        # Round 2 (only if needed): unmask the dropped cells' edges.
        if dropped:
            rounds += 1
            for node in survivors:
                for gone in dropped:
                    mask = node.pairwise_mask(gone, round_tag)
                    if order[node.name] < order[gone.name]:
                        total = (total - mask) % shamir.PRIME
                    else:
                        total = (total + mask) % shamir.PRIME
                    messages += 1  # one revealed mask per (survivor, dropped)
                    total_bytes += _FIELD_ELEMENT_BYTES

        return AggregationResult(
            total=_signed_total(total),
            participants=len(nodes),
            dropped=len(dropped),
            messages=messages,
            bytes=total_bytes,
            rounds=rounds,
            protocol=self.name,
            aggregator_view=masked_submissions,
        )


class ShamirSum:
    """Committee-based aggregation over Shamir shares."""

    name = "shamir"

    def __init__(self, committee_size: int = 5, threshold: int = 3,
                 rng: random.Random | None = None) -> None:
        if threshold > committee_size:
            raise ConfigurationError("threshold cannot exceed committee size")
        self.committee_size = committee_size
        self.threshold = threshold
        self._rng = rng or random.Random(0)

    @property
    def name_with_params(self) -> str:
        return f"shamir({self.threshold}/{self.committee_size})"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
        committee_online: set[int] | None = None,
    ) -> AggregationResult:
        if len(nodes) < 1:
            raise ConfigurationError("need at least one node")
        online = online if online is not None else {node.name for node in nodes}
        survivors = [node for node in nodes if node.name in online]
        messages = 0
        total_bytes = 0

        # Round 1: each contributor sends one share to each committee member.
        partials = [0] * self.committee_size
        for node in survivors:
            shares = shamir.split_secret(
                shamir.encode_signed(values[node.name]),
                shares=self.committee_size,
                threshold=self.threshold,
                rng=self._rng,
            )
            for position, share in enumerate(shares):
                partials[position] = (partials[position] + share.y) % shamir.PRIME
                messages += 1
                total_bytes += _FIELD_ELEMENT_BYTES

        # Round 2: surviving committee members publish partial sums.
        committee_online = (
            committee_online
            if committee_online is not None
            else set(range(self.committee_size))
        )
        published = [
            shamir.Share(x=position + 1, y=partials[position])
            for position in range(self.committee_size)
            if position in committee_online
        ]
        messages += len(published)
        total_bytes += len(published) * _FIELD_ELEMENT_BYTES
        if len(published) < self.threshold:
            raise ProtocolError(
                f"only {len(published)} committee partials; "
                f"threshold is {self.threshold}"
            )
        total = shamir.reconstruct_secret(published[: self.threshold])
        return AggregationResult(
            total=_signed_total(total),
            participants=len(nodes),
            dropped=len(nodes) - len(survivors),
            messages=messages,
            bytes=total_bytes,
            rounds=2,
            protocol=self.name_with_params,
            aggregator_view=[share.y for share in published],
        )


def masked_histogram(
    nodes: list[AggregationNode],
    bucket_of: dict[str, int],
    bucket_count: int,
    online: set[str] | None = None,
    round_tag: str = "hist-0",
) -> tuple[list[int], AggregationResult]:
    """Privacy-preserving histogram via per-component masked sums.

    ``bucket_of[name]`` is each node's bucket index; the aggregator
    learns only the per-bucket totals. Returns ``(counts, accounting)``.
    """
    if bucket_count < 1:
        raise ConfigurationError("need at least one bucket")
    online = online if online is not None else {node.name for node in nodes}
    survivors = [node for node in nodes if node.name in online]
    dropped = [node for node in nodes if node.name not in online]
    order = {node.name: position for position, node in enumerate(nodes)}
    messages = 0
    total_bytes = 0
    sums = [0] * bucket_count
    for node in survivors:
        if not 0 <= bucket_of[node.name] < bucket_count:
            raise ConfigurationError(
                f"bucket {bucket_of[node.name]} out of range for {node.name!r}"
            )
        vector = [0] * bucket_count
        vector[bucket_of[node.name]] = 1
        for component in range(bucket_count):
            masked = vector[component]
            for peer in nodes:
                if peer.name == node.name:
                    continue
                mask = node.pairwise_mask(peer, round_tag, component)
                if order[node.name] < order[peer.name]:
                    masked = (masked + mask) % shamir.PRIME
                else:
                    masked = (masked - mask) % shamir.PRIME
            sums[component] = (sums[component] + masked) % shamir.PRIME
        messages += 1
        total_bytes += bucket_count * _FIELD_ELEMENT_BYTES
    rounds = 1
    if dropped:
        rounds += 1
        for node in survivors:
            for gone in dropped:
                for component in range(bucket_count):
                    mask = node.pairwise_mask(gone, round_tag, component)
                    if order[node.name] < order[gone.name]:
                        sums[component] = (sums[component] - mask) % shamir.PRIME
                    else:
                        sums[component] = (sums[component] + mask) % shamir.PRIME
                messages += 1
                total_bytes += bucket_count * _FIELD_ELEMENT_BYTES
    counts = [shamir.decode_signed(component) for component in sums]
    accounting = AggregationResult(
        total=sum(counts),
        participants=len(nodes),
        dropped=len(dropped),
        messages=messages,
        bytes=total_bytes,
        rounds=rounds,
        protocol="masked-histogram",
    )
    return counts, accounting
