"""Secure aggregation among trusted cells.

The "shared commons" requirement: privacy must not hinder societal
benefit, so cells participate in global computations — sums, averages,
histograms — without exposing individual contributions. The paper
anticipates "atypical distributed protocols ... on one side a very
large number of highly secure, low power and weakly available trusted
cells and on the other side a highly powerful, highly available but
untrusted infrastructure".

Three protocols, matched to experiment E9:

* :class:`CleartextSum` — the no-privacy baseline: everyone posts their
  value to the aggregator.
* :class:`MaskedSum` — SecAgg-style pairwise masking. Every pair of
  cells derives a common mask from their Diffie-Hellman key; cell *i*
  submits ``value + Σ_{j>i} m_ij − Σ_{j<i} m_ij``. Masks cancel in the
  sum, so the untrusted aggregator learns only the total. Dropouts are
  recovered by asking survivors to reveal their pairwise masks *with
  the dropped cells only* (those cells contributed nothing, so the
  revealed masks protect nothing).
* :class:`ShamirSum` — each cell Shamir-shares its value across a small
  committee of cells; committee members sum the shares they hold and
  publish one partial sum each; any ``threshold`` partials reconstruct
  the total. Tolerates committee dropouts up to the threshold without
  any recovery round.

Two scaling levers keep the masked protocols viable at large N:

* **Keystream mask expansion** — each (pair, round) derives *one* HMAC
  seed and expands it into as many field elements as the round needs
  (one for a scalar sum, B for a B-bucket histogram) via counter-mode
  blocks (:func:`repro.crypto.primitives.counter_stream`). This
  collapses :func:`masked_histogram` from N²·B keyed derivations to N²
  and lets the dropout-recovery round reuse the cached per-round masks
  instead of re-deriving them.
* **k-regular masking graph** — with ``neighbors=k`` each cell masks
  only against its k deterministic ring-neighbors (k/2 on each side),
  turning per-round cost from O(N²) into O(N·k). Masks still cancel
  exactly because the edge set is symmetric. The complete graph stays
  the default and the correctness oracle; the sparse graph weakens the
  collusion bound from N−2 to k−1 colluding neighbors (see
  ``docs/protocols.md``).

All protocols work over the integer field of :mod:`repro.crypto.shamir`
(values are scaled integers; negative values use the signed embedding)
and report message/byte/round accounting.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field

from ..crypto import shamir
from ..crypto.keys import KeyRing
from ..crypto.primitives import KEY_SIZE, counter_stream, hmac_sha256, sha256
from ..errors import ConfigurationError, ProtocolError
from ..obs import get_default as _obs_default
from . import kernels

_FIELD_ELEMENT_BYTES = 16  # one PRIME-field element on the wire
_MASK_ELEMENT_BYTES = 16  # keystream bytes consumed per mask element

# Synchronous protocols run without a World, so their rounds land in
# the process-default observability scope (one span + one event per
# *round*, never per node — the hot loops stay uninstrumented).
_OBS = _obs_default()
_ROUNDS = _OBS.metrics.counter(
    "agg.rounds", help="aggregation rounds executed", labelnames=("protocol",)
)
_MESSAGES = _OBS.metrics.counter(
    "agg.messages", help="aggregation protocol messages")
_BYTES = _OBS.metrics.counter(
    "agg.bytes", help="aggregation protocol payload bytes")


def _record_round(result: "AggregationResult") -> None:
    """One bookkeeping call at the end of every protocol run."""
    _ROUNDS.labels(protocol=result.protocol).inc()
    _MESSAGES.inc(result.messages)
    _BYTES.inc(result.bytes)
    _OBS.events.emit(
        "agg.round", protocol=result.protocol, participants=result.participants,
        dropped=result.dropped, messages=result.messages,
        bytes=result.bytes, rounds=result.rounds,
    )


def ring_neighbor_positions(position: int, size: int, degree: int) -> list[int]:
    """The ``degree`` ring-neighbors of ``position`` in a roster of
    ``size``: the ``degree/2`` predecessors and ``degree/2`` successors
    modulo ``size``. The edge set is symmetric (j is a neighbor of i
    iff i is a neighbor of j), which is exactly what makes pairwise
    masks cancel on the sparse graph."""
    half = degree // 2
    neighbors = set()
    for distance in range(1, half + 1):
        neighbors.add((position + distance) % size)
        neighbors.add((position - distance) % size)
    neighbors.discard(position)
    return sorted(neighbors)


def _effective_degree(size: int, neighbors: int | None) -> int | None:
    """Normalize a requested masking degree; ``None`` means complete."""
    if neighbors is None:
        return None
    if neighbors < 2 or neighbors % 2:
        raise ConfigurationError(
            f"masking degree must be an even integer >= 2, got {neighbors}"
        )
    if neighbors >= size - 1:
        return None  # the ring closes into the complete graph
    return neighbors


def _masking_peers(nodes: list["AggregationNode"], position: int,
                   degree: int | None):
    """The peers node ``nodes[position]`` masks against."""
    if degree is None:
        node = nodes[position]
        for peer in nodes:
            if peer is not node:
                yield peer
    else:
        for peer_position in ring_neighbor_positions(position, len(nodes), degree):
            yield nodes[peer_position]


# One-shot flag for the preshared deprecation notice (tests reset it).
_PRESHARED_WARNED = [False]


class AggregationNode:
    """One participant: a name, a value source, and key material."""

    def __init__(self, name: str, key_ring: KeyRing | None, *,
                 cache_masks: bool = True) -> None:
        self.name = name
        self.keys = key_ring
        # Pairwise keys are established once per peer (one DH exchange),
        # then reused across rounds — exactly as a real deployment would.
        self._pairwise_cache: dict[str, bytes] = {}
        self._preshared: bytes | None = None
        # Bumped whenever this node's key material changes universe
        # (key rotation); part of the roster-memo token below.
        self.generation = 0
        # Per-(peer, round) keystream cache: seed plus the expanded
        # field elements. The dropout-recovery round re-reads masks
        # from here instead of re-deriving them.
        self.cache_masks = cache_masks
        self._mask_cache: dict[tuple[str, str], tuple[bytes, list[int]]] = {}

    def roster_token(self):
        """Hashable identity of this node's key-material universe.

        Two nodes with equal tokens resolve any roster to equivalent
        peers, so gate-level roster resolution may be memoized under
        it. ``None`` means resolution through this node must never be
        cached (per-ring DH nodes: each object is its own universe).
        """
        if self._preshared is not None:
            return ("preshared", self._preshared, self.generation)
        return None

    @classmethod
    def from_cell(cls, cell) -> "AggregationNode":
        """Wrap a :class:`~repro.core.cell.TrustedCell`."""
        return cls(cell.name, cell.tee.keys)

    @classmethod
    def standalone(cls, name: str, rng: random.Random) -> "AggregationNode":
        """A lightweight node for large-N protocol experiments."""
        return cls(name, KeyRing.generate(rng))

    @classmethod
    def preshared(cls, name: str, group_secret: bytes, *,
                  cache_masks: bool = True) -> "AggregationNode":
        """A node whose pairwise keys derive from ``group_secret``.

        Skips Diffie-Hellman entirely: the key for a pair is hashed on
        demand from the secret and the two names, so a population of
        thousands costs O(1) memory per node. For protocol benchmarks
        and scale tests where key *establishment* is out of scope (a
        deployment pays it once per peer, then reuses the key across
        every round). All nodes of a population must share the secret.

        .. deprecated::
            The hashed group secret is a single point of class break —
            one leak unmasks every fleet round. New code should obtain
            nodes from :class:`repro.keymgmt.KeyDirectory`, which does
            real ring-edge key agreement with epoch rotation and
            revocation. This constructor keeps working for legacy
            benches and emits a one-time :class:`DeprecationWarning`.
        """
        if not _PRESHARED_WARNED[0]:
            _PRESHARED_WARNED[0] = True
            warnings.warn(
                "AggregationNode.preshared hashes every pairwise key from "
                "one group secret (a single point of class break); use "
                "repro.keymgmt.KeyDirectory for agreed, rotatable, "
                "revocable ring keys",
                DeprecationWarning,
                stacklevel=2,
            )
        return cls._with_group_secret(name, group_secret,
                                      cache_masks=cache_masks)

    @classmethod
    def _with_group_secret(cls, name: str, group_secret: bytes, *,
                           cache_masks: bool = True) -> "AggregationNode":
        """Internal preshared constructor (no deprecation notice).

        The engine still synthesizes preshared stubs on legacy paths
        (sharded fleets resolving out-of-shard names); those calls are
        implementation detail, not user-facing API choice.
        """
        node = cls(name, None, cache_masks=cache_masks)
        node._preshared = group_secret
        return node

    def _pairwise_key_for(self, peer: "AggregationNode") -> bytes:
        key = self._pairwise_cache.get(peer.name)
        if key is not None:
            return key
        if self._preshared is not None:
            low, high = sorted((self.name, peer.name))
            key = sha256(
                b"preshared|" + self._preshared
                + low.encode() + b"|" + high.encode()
            )[:KEY_SIZE]
        else:
            if self.keys is None:
                raise ConfigurationError(
                    f"node {self.name!r} has neither a key ring nor a "
                    "preshared group secret"
                )
            key = self.keys.pairwise_key(peer.keys.exchange_public)
        # Cache preshared derivations too: a fleet asking the same
        # roster a second query used to re-hash every pair from the
        # group secret on every mask call.
        self._pairwise_cache[peer.name] = key
        return key

    def mask_elements(self, peer: "AggregationNode", round_tag: str,
                      count: int) -> list[int]:
        """The first ``count`` shared mask elements for this (peer, round).

        One HMAC derives the per-(pair, round) seed; counter-mode
        expansion yields the elements, so asking for B elements costs
        the same single keyed derivation as asking for one. Both ends
        of the pair compute identical values (the pairwise key and the
        expansion are symmetric).
        """
        cache_key = (peer.name, round_tag)
        cached = self._mask_cache.get(cache_key)
        if cached is not None:
            seed, elements = cached
            if len(elements) >= count:
                return elements if len(elements) == count else elements[:count]
        else:
            seed = hmac_sha256(
                self._pairwise_key_for(peer), f"mask|{round_tag}".encode()
            )
        stream = counter_stream(seed, count * _MASK_ELEMENT_BYTES)
        elements = [
            int.from_bytes(stream[offset:offset + _MASK_ELEMENT_BYTES], "big")
            % shamir.PRIME
            for offset in range(0, count * _MASK_ELEMENT_BYTES, _MASK_ELEMENT_BYTES)
        ]
        if self.cache_masks:
            self._mask_cache[cache_key] = (seed, elements)
        return elements

    def mask_elements_many(
        self,
        peers: list["AggregationNode"],
        round_tag: str,
        count: int,
    ) -> list[list[int]]:
        """Mask elements against *every* peer in one batch call.

        The vectorized counterpart of calling :meth:`mask_elements`
        per peer: cached (peer, round) keystreams are reused, every
        missing one is derived (one HMAC per fresh pair — the keyed
        derivation count is identical to the scalar path) and expanded
        in a single :func:`~repro.commons.kernels.expand_streams`
        pass.  Returns the element lists aligned with ``peers``,
        bit-for-bit equal to the scalar loop.
        """
        by_name: dict[str, list[int]] = {}
        fresh_names: list[str] = []
        fresh_seeds: list[bytes] = []
        for peer in peers:
            cached = self._mask_cache.get((peer.name, round_tag))
            if cached is not None and len(cached[1]) >= count:
                elements = cached[1]
                by_name[peer.name] = (
                    elements if len(elements) == count else elements[:count]
                )
                continue
            seed = cached[0] if cached is not None else hmac_sha256(
                self._pairwise_key_for(peer), f"mask|{round_tag}".encode()
            )
            fresh_names.append(peer.name)
            fresh_seeds.append(seed)
        if fresh_seeds:
            expanded = kernels.expand_streams(fresh_seeds, count)
            for name, seed, elements in zip(fresh_names, fresh_seeds, expanded):
                by_name[name] = elements
                if self.cache_masks:
                    self._mask_cache[(name, round_tag)] = (seed, elements)
        return [by_name[peer.name] for peer in peers]

    def pairwise_mask(self, peer: "AggregationNode", round_tag: str,
                      component: int = 0) -> int:
        """The shared mask between this node and ``peer`` for a round."""
        return self.mask_elements(peer, round_tag, component + 1)[component]

    def flush_masks(self, round_tag: str | None = None) -> None:
        """Drop cached round masks (all rounds, or one round's)."""
        if round_tag is None:
            self._mask_cache.clear()
        else:
            for key in [k for k in self._mask_cache if k[1] == round_tag]:
                del self._mask_cache[key]


@dataclass
class AggregationResult:
    """Outcome and cost accounting of one aggregation round."""

    total: int
    participants: int
    dropped: int
    messages: int
    bytes: int
    rounds: int
    protocol: str
    # What the untrusted aggregator saw: one entry per published
    # message — an int for scalar protocols, a vector (list of ints)
    # for masked histograms.
    aggregator_view: list = field(default_factory=list)

    @property
    def mean(self) -> float:
        contributing = self.participants - self.dropped
        if contributing == 0:
            raise ProtocolError("no contributions to average")
        return shamir.decode_signed(self.total) / contributing


class CleartextSum:
    """Baseline: the aggregator sees every individual value."""

    name = "cleartext"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
    ) -> AggregationResult:
        online = online if online is not None else {node.name for node in nodes}
        submissions = [
            shamir.encode_signed(values[node.name])
            for node in nodes
            if node.name in online
        ]
        # Every submission is already reduced mod PRIME, so the running
        # sum stays in the field.
        total = sum(submissions) % shamir.PRIME
        result = AggregationResult(
            total=total,
            participants=len(nodes),
            dropped=len(nodes) - len(submissions),
            messages=len(submissions),
            bytes=len(submissions) * _FIELD_ELEMENT_BYTES,
            rounds=1,
            protocol=self.name,
            aggregator_view=submissions,  # full leakage, by construction
        )
        _record_round(result)
        return result


class MaskedSum:
    """Pairwise-masked aggregation with dropout recovery.

    ``neighbors=k`` (even, >= 2) switches from the complete masking
    graph to the k-regular ring graph: each cell masks only against its
    k ring-neighbors, so a round costs O(N·k) derivations instead of
    O(N²). A degree of ``None`` (the default) or ``k >= N-1`` is the
    complete graph.
    """

    name = "masked"

    def __init__(self, neighbors: int | None = None) -> None:
        if neighbors is not None and (neighbors < 2 or neighbors % 2):
            raise ConfigurationError(
                f"masking degree must be an even integer >= 2, got {neighbors}"
            )
        self.neighbors = neighbors

    @property
    def name_with_params(self) -> str:
        if self.neighbors is None:
            return self.name
        return f"masked(k={self.neighbors})"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
    ) -> AggregationResult:
        with _OBS.tracer.span(
            "agg.round", protocol=self.name_with_params, n=len(nodes),
            round_tag=round_tag,
        ) as span:
            result = self._run(nodes, values, online, round_tag)
            span.annotate(dropped=result.dropped, messages=result.messages)
        _record_round(result)
        return result

    def _run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None,
        round_tag: str,
    ) -> AggregationResult:
        if len(nodes) < 2:
            raise ConfigurationError("masked sum needs at least two nodes")
        online = online if online is not None else {node.name for node in nodes}
        survivors = [node for node in nodes if node.name in online]
        dropped = [node for node in nodes if node.name not in online]
        dropped_names = {node.name for node in dropped}
        if not survivors:
            raise ProtocolError("all participants dropped out")
        order = {node.name: position for position, node in enumerate(nodes)}
        degree = _effective_degree(len(nodes), self.neighbors)

        messages = 0
        total_bytes = 0
        # Round 1: every survivor submits its masked value. A cell does
        # not yet know who else is online, so it masks against *all*
        # its graph neighbors — dropped edges are repaired in round 2.
        # Each survivor's masks are derived and applied in one batch
        # kernel call per roster instead of one field op per peer.
        masked_submissions = []
        for node in survivors:
            position = order[node.name]
            peers = list(_masking_peers(nodes, position, degree))
            elements = node.mask_elements_many(peers, round_tag, 1)
            plus = [row[0] for peer, row in zip(peers, elements)
                    if position < order[peer.name]]
            minus = [row[0] for peer, row in zip(peers, elements)
                     if position > order[peer.name]]
            masked_submissions.append(kernels.signed_accumulate(
                shamir.encode_signed(values[node.name]), plus, minus
            ))
            messages += 1
            total_bytes += _FIELD_ELEMENT_BYTES
        rounds = 1

        total = kernels.accumulate(masked_submissions)

        # Round 2 (only if needed): unmask the dropped cells' edges.
        # Each survivor reveals only the masks it shares with dropped
        # *graph neighbors*; the cached round keystream answers without
        # re-deriving anything.
        if dropped:
            rounds += 1
            with _OBS.tracer.span("agg.recovery", dropped=len(dropped)):
                reveal_plus: list[int] = []
                reveal_minus: list[int] = []
                for node in survivors:
                    position = order[node.name]
                    gone_peers = [
                        gone for gone in _masking_peers(nodes, position, degree)
                        if gone.name in dropped_names
                    ]
                    elements = node.mask_elements_many(
                        gone_peers, round_tag, 1
                    )
                    for gone, row in zip(gone_peers, elements):
                        if position < order[gone.name]:
                            reveal_minus.append(row[0])
                        else:
                            reveal_plus.append(row[0])
                        messages += 1  # one revealed mask per (survivor, dropped)
                        total_bytes += _FIELD_ELEMENT_BYTES
                total = kernels.signed_accumulate(
                    total, reveal_plus, reveal_minus
                )

        return AggregationResult(
            total=total,
            participants=len(nodes),
            dropped=len(dropped),
            messages=messages,
            bytes=total_bytes,
            rounds=rounds,
            protocol=self.name_with_params,
            aggregator_view=masked_submissions,
        )


class ShamirSum:
    """Committee-based aggregation over Shamir shares."""

    name = "shamir"

    def __init__(self, committee_size: int = 5, threshold: int = 3,
                 rng: random.Random | None = None) -> None:
        if threshold > committee_size:
            raise ConfigurationError("threshold cannot exceed committee size")
        self.committee_size = committee_size
        self.threshold = threshold
        self._rng = rng or random.Random(0)

    @property
    def name_with_params(self) -> str:
        return f"shamir({self.threshold}/{self.committee_size})"

    def run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None = None,
        round_tag: str = "round-0",
        committee_online: set[int] | None = None,
    ) -> AggregationResult:
        with _OBS.tracer.span(
            "agg.round", protocol=self.name_with_params, n=len(nodes),
            round_tag=round_tag,
        ) as span:
            result = self._run(nodes, values, online, committee_online)
            span.annotate(dropped=result.dropped, messages=result.messages)
        _record_round(result)
        return result

    def _run(
        self,
        nodes: list[AggregationNode],
        values: dict[str, int],
        online: set[str] | None,
        committee_online: set[int] | None,
    ) -> AggregationResult:
        if len(nodes) < 1:
            raise ConfigurationError("need at least one node")
        online = online if online is not None else {node.name for node in nodes}
        survivors = [node for node in nodes if node.name in online]
        messages = 0
        total_bytes = 0

        # Round 1: each contributor sends one share to each committee member.
        partials = [0] * self.committee_size
        for node in survivors:
            shares = shamir.split_secret(
                shamir.encode_signed(values[node.name]),
                shares=self.committee_size,
                threshold=self.threshold,
                rng=self._rng,
            )
            for position, share in enumerate(shares):
                partials[position] = (partials[position] + share.y) % shamir.PRIME
                messages += 1
                total_bytes += _FIELD_ELEMENT_BYTES

        # Round 2: surviving committee members publish partial sums.
        committee_online = (
            committee_online
            if committee_online is not None
            else set(range(self.committee_size))
        )
        published = [
            shamir.Share(x=position + 1, y=partials[position])
            for position in range(self.committee_size)
            if position in committee_online
        ]
        messages += len(published)
        total_bytes += len(published) * _FIELD_ELEMENT_BYTES
        if len(published) < self.threshold:
            raise ProtocolError(
                f"only {len(published)} committee partials; "
                f"threshold is {self.threshold}"
            )
        total = shamir.reconstruct_secret(published[: self.threshold])
        return AggregationResult(
            total=total,
            participants=len(nodes),
            dropped=len(nodes) - len(survivors),
            messages=messages,
            bytes=total_bytes,
            rounds=2,
            protocol=self.name_with_params,
            aggregator_view=[share.y for share in published],
        )


def masked_histogram(
    nodes: list[AggregationNode],
    bucket_of: dict[str, int],
    bucket_count: int,
    online: set[str] | None = None,
    round_tag: str = "hist-0",
    neighbors: int | None = None,
) -> tuple[list[int], AggregationResult]:
    """Privacy-preserving histogram via per-component masked sums.

    ``bucket_of[name]`` is each node's bucket index; the aggregator
    learns only the per-bucket totals. One keyed derivation per (pair,
    round) covers all ``bucket_count`` components (keystream
    expansion); ``neighbors=k`` masks over the k-regular ring graph
    instead of the complete graph. Returns ``(counts, accounting)``.
    """
    with _OBS.tracer.span(
        "agg.round", protocol="masked-histogram", n=len(nodes),
        buckets=bucket_count, round_tag=round_tag,
    ) as span:
        counts, accounting = _masked_histogram(
            nodes, bucket_of, bucket_count, online, round_tag, neighbors
        )
        span.annotate(dropped=accounting.dropped, messages=accounting.messages)
    _record_round(accounting)
    return counts, accounting


def _masked_histogram(
    nodes: list[AggregationNode],
    bucket_of: dict[str, int],
    bucket_count: int,
    online: set[str] | None,
    round_tag: str,
    neighbors: int | None,
) -> tuple[list[int], AggregationResult]:
    if bucket_count < 1:
        raise ConfigurationError("need at least one bucket")
    online = online if online is not None else {node.name for node in nodes}
    survivors = [node for node in nodes if node.name in online]
    dropped = [node for node in nodes if node.name not in online]
    dropped_names = {node.name for node in dropped}
    order = {node.name: position for position, node in enumerate(nodes)}
    degree = _effective_degree(len(nodes), neighbors)
    messages = 0
    total_bytes = 0
    sums = [0] * bucket_count
    published_vectors: list[list[int]] = []
    for node in survivors:
        if not 0 <= bucket_of[node.name] < bucket_count:
            raise ConfigurationError(
                f"bucket {bucket_of[node.name]} out of range for {node.name!r}"
            )
        position = order[node.name]
        base = [0] * bucket_count
        base[bucket_of[node.name]] = 1
        peers = list(_masking_peers(nodes, position, degree))
        elements = node.mask_elements_many(peers, round_tag, bucket_count)
        vector = kernels.accumulate_columns(
            base,
            [row for peer, row in zip(peers, elements)
             if position < order[peer.name]],
            [row for peer, row in zip(peers, elements)
             if position > order[peer.name]],
        )
        published_vectors.append(vector)
        messages += 1
        total_bytes += bucket_count * _FIELD_ELEMENT_BYTES
    sums = kernels.accumulate_columns(sums, published_vectors, [])
    rounds = 1
    if dropped:
        rounds += 1
        with _OBS.tracer.span("agg.recovery", dropped=len(dropped)):
            reveal_plus: list[list[int]] = []
            reveal_minus: list[list[int]] = []
            for node in survivors:
                position = order[node.name]
                gone_peers = [
                    gone for gone in _masking_peers(nodes, position, degree)
                    if gone.name in dropped_names
                ]
                # Cached keystream: revealing the whole vector of masks
                # costs zero fresh derivations.
                elements = node.mask_elements_many(
                    gone_peers, round_tag, bucket_count
                )
                for gone, row in zip(gone_peers, elements):
                    if position < order[gone.name]:
                        reveal_minus.append(row)
                    else:
                        reveal_plus.append(row)
                    messages += 1
                    total_bytes += bucket_count * _FIELD_ELEMENT_BYTES
            sums = kernels.accumulate_columns(sums, reveal_plus, reveal_minus)
    counts = [shamir.decode_signed(component) for component in sums]
    accounting = AggregationResult(
        total=sum(counts),
        participants=len(nodes),
        dropped=len(dropped),
        messages=messages,
        bytes=total_bytes,
        rounds=rounds,
        protocol="masked-histogram" if degree is None
        else f"masked-histogram(k={degree})",
        aggregator_view=published_vectors,
    )
    return counts, accounting
