"""Differential privacy: output perturbation for the shared commons.

The paper names "output perturbation" as one of the "appropriate
transformations" a cell applies before delivering data to recipients of
limited trustworthiness. Two deployment modes:

* **central** — a single trusted point adds Laplace noise to the exact
  aggregate. In the trusted-cells architecture there *is* no such
  point (that would be the untrusted infrastructure), so this mode is
  the accuracy reference, not the deployment story.
* **distributed** — each cell adds a small share of noise before the
  secure aggregation; the *sum* of shares is exactly Laplace-
  distributed. This uses the infinite divisibility of the Laplace
  distribution: Laplace(b) = Σ_{i=1..n} (G1_i − G2_i) with
  G ~ Gamma(1/n, b). No individual cell's noise protects anything by
  itself, but the cells never reveal unaggregated values anyway — the
  masking protocol hides them, and the summed noise protects the
  *output*.
"""

from __future__ import annotations

import math
import random

from ..errors import ConfigurationError


def laplace_noise(rng: random.Random, scale: float) -> float:
    """One draw from Laplace(0, scale) by inverse-CDF sampling."""
    if scale <= 0:
        raise ConfigurationError("Laplace scale must be positive")
    uniform = rng.random() - 0.5
    return -scale * math.copysign(math.log(1 - 2 * abs(uniform)), uniform)


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """The Laplace scale for an ε-DP release of a query with the given
    L1 sensitivity."""
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if sensitivity <= 0:
        raise ConfigurationError("sensitivity must be positive")
    return sensitivity / epsilon


def central_dp_sum(
    values: list[float], sensitivity: float, epsilon: float, rng: random.Random
) -> float:
    """Exact sum plus central Laplace noise (the accuracy reference)."""
    return sum(values) + laplace_noise(rng, laplace_scale(sensitivity, epsilon))


def gamma_noise_share(rng: random.Random, participants: int, scale: float) -> float:
    """One cell's additive noise share for distributed Laplace.

    The difference of two Gamma(1/n, scale) draws; summing ``n`` such
    shares yields exactly Laplace(0, scale).
    """
    if participants < 1:
        raise ConfigurationError("need at least one participant")
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    shape = 1.0 / participants
    return rng.gammavariate(shape, scale) - rng.gammavariate(shape, scale)


def distributed_dp_sum(
    values: list[float],
    sensitivity: float,
    epsilon: float,
    rng: random.Random,
    dropout_rate: float = 0.0,
) -> float:
    """Sum with per-cell Gamma noise shares.

    ``dropout_rate`` models cells that contributed noise calibrated for
    ``n`` participants but then dropped: the surviving noise total is
    slightly *under*-dispersed. (Deployments over-provision by
    calibrating for the minimum expected survivors; experiment E10
    quantifies the effect instead of hiding it.)
    """
    if not 0.0 <= dropout_rate < 1.0:
        raise ConfigurationError("dropout rate must be in [0, 1)")
    scale = laplace_scale(sensitivity, epsilon)
    count = len(values)
    total = 0.0
    for value in values:
        if dropout_rate and rng.random() < dropout_rate:
            continue
        total += value + gamma_noise_share(rng, count, scale)
    return total


def dp_mean_absolute_error(
    true_value: float,
    release: "callable",
    trials: int,
    rng: random.Random,
) -> float:
    """Empirical mean absolute error of a randomized release function."""
    if trials < 1:
        raise ConfigurationError("need at least one trial")
    total_error = 0.0
    for _ in range(trials):
        total_error += abs(release(rng) - true_value)
    return total_error / trials
