"""Distribution statistics over the commons: quantiles and medians.

Sums and counts are not the only "global treatments" the paper's
shared commons needs — census-style queries want medians and
percentiles ("what is the median household consumption?"). Exact
order statistics cannot be computed by additive aggregation, but a
*bucketized* quantile can: cells place their value into one of B
buckets, the bucket counts are computed with the masked-histogram
protocol (no individual value revealed), and the quantile is read off
the cumulative histogram with a ±bucket-width error bound.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError, ProtocolError
from .aggregation import AggregationNode, AggregationResult, masked_histogram


def bucketize(value: float, low: float, high: float, buckets: int) -> int:
    """The bucket index of ``value`` in [low, high] split into
    ``buckets`` equal bins (clamped at the edges)."""
    if buckets < 1:
        raise ConfigurationError("need at least one bucket")
    if high <= low:
        raise ConfigurationError("bucket range is empty")
    if value <= low:
        return 0
    if value >= high:
        return buckets - 1
    return int((value - low) / (high - low) * buckets)


def bucket_midpoint(index: int, low: float, high: float, buckets: int) -> float:
    width = (high - low) / buckets
    return low + (index + 0.5) * width


def quantile_from_counts(
    counts: list[int], q: float, low: float, high: float
) -> float:
    """The q-quantile estimate from a histogram (bucket midpoint)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("q must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        raise ProtocolError("empty histogram")
    target = q * total
    running = 0
    for index, count in enumerate(counts):
        running += count
        if running >= target and count > 0:
            return bucket_midpoint(index, low, high, len(counts))
    # q == 0 with leading empty buckets, or rounding at the top
    for index in reversed(range(len(counts))):
        if counts[index] > 0:
            return bucket_midpoint(index, low, high, len(counts))
    raise ProtocolError("empty histogram")  # pragma: no cover


def secure_quantiles(
    nodes: list[AggregationNode],
    values: dict[str, float],
    quantiles: list[float],
    low: float,
    high: float,
    buckets: int = 32,
    online: set[str] | None = None,
    round_tag: str = "quantiles-0",
    neighbors: int | None = None,
) -> tuple[dict[float, float], AggregationResult]:
    """Estimate quantiles without revealing any individual value.

    Error bound: half a bucket width, i.e. ``(high-low)/(2*buckets)``.
    ``neighbors=k`` masks over the k-regular ring graph (see
    :func:`~repro.commons.aggregation.masked_histogram`).
    Returns ``({q: estimate}, protocol accounting)``.
    """
    bucket_of = {
        node.name: bucketize(values[node.name], low, high, buckets)
        for node in nodes
    }
    counts, accounting = masked_histogram(
        nodes, bucket_of, bucket_count=buckets, online=online,
        round_tag=round_tag, neighbors=neighbors,
    )
    estimates = {
        q: quantile_from_counts(counts, q, low, high) for q in quantiles
    }
    return estimates, accounting


def secure_median(
    nodes: list[AggregationNode],
    values: dict[str, float],
    low: float,
    high: float,
    buckets: int = 32,
    online: set[str] | None = None,
    rng: random.Random | None = None,
) -> tuple[float, AggregationResult]:
    """Convenience wrapper: the 0.5-quantile."""
    estimates, accounting = secure_quantiles(
        nodes, values, [0.5], low, high, buckets, online,
    )
    return estimates[0.5], accounting
