"""Global queries over a population of trusted cells.

Ties the shared-commons pieces together: a recipient (census bureau,
epidemiology institute, energy distributor) issues a query; each cell
decides participation from its own opt-in policy; the transformation
applied "depend[s] on the trustworthiness of the recipient(s) and the
expected usage":

* ``aggregate-dp`` — the recipient gets only a differentially private
  total, computed with the masked-sum protocol plus distributed noise;
* ``records-kanon`` — a trusted recipient gets record-level data,
  k-anonymized collectively;
* ``aggregate-exact`` — a certified recipient (the utility receiving
  monthly billing totals) gets the exact masked-sum aggregate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, ProtocolError
from .aggregation import AggregationNode, AggregationResult, MaskedSum
from .anonymize import GeneralizedRecord, k_anonymize
from .dp import gamma_noise_share, laplace_scale

TRANSFORM_DP = "aggregate-dp"
TRANSFORM_KANON = "records-kanon"
TRANSFORM_EXACT = "aggregate-exact"
TRANSFORMS = (TRANSFORM_DP, TRANSFORM_KANON, TRANSFORM_EXACT)


@dataclass(frozen=True)
class GlobalQuery:
    """A query from a recipient to the commons."""

    recipient: str
    purpose: str
    transform: str
    epsilon: float = 1.0
    k: int = 5
    scale: int = 1  # fixed-point scaling for fractional values

    def __post_init__(self) -> None:
        if self.transform not in TRANSFORMS:
            raise ConfigurationError(f"unknown transform {self.transform!r}")


@dataclass
class CommonsMember:
    """One household's participation profile."""

    node: AggregationNode
    value: float = 0.0  # the member's answer to numeric queries
    record: dict[str, Any] = field(default_factory=dict)  # for record releases
    opted_in_purposes: set[str] = field(default_factory=set)
    online: bool = True


@dataclass
class GlobalQueryResult:
    """What the recipient receives, plus accounting."""

    transform: str
    participants: int
    opted_out: int
    offline: int
    value: float | None = None
    records: list[GeneralizedRecord] | None = None
    aggregation: AggregationResult | None = None


class CommonsCoordinator:
    """Runs global queries over a member population."""

    def __init__(self, members: list[CommonsMember], rng: random.Random) -> None:
        if not members:
            raise ConfigurationError("the commons needs at least one member")
        self._members = members
        self._rng = rng

    def run(self, query: GlobalQuery) -> GlobalQueryResult:
        willing = [
            member for member in self._members
            if query.purpose in member.opted_in_purposes
        ]
        opted_out = len(self._members) - len(willing)
        online = [member for member in willing if member.online]
        offline = len(willing) - len(online)
        if not online:
            raise ProtocolError("no participant is opted in and online")

        if query.transform == TRANSFORM_KANON:
            records = [dict(member.record) for member in online]
            quasi = sorted(
                key for key in records[0] if key.startswith("qi_")
            )
            sensitive = sorted(
                key for key in records[0] if not key.startswith("qi_")
            )
            released = k_anonymize(records, quasi, sensitive, query.k)
            return GlobalQueryResult(
                transform=query.transform,
                participants=len(online),
                opted_out=opted_out,
                offline=offline,
                records=released,
            )

        # numeric aggregate paths share the masked-sum machinery
        nodes = [member.node for member in willing]
        values: dict[str, int] = {}
        for member in willing:
            contribution = member.value
            if query.transform == TRANSFORM_DP:
                contribution += gamma_noise_share(
                    self._rng,
                    participants=len(online),
                    scale=laplace_scale(1.0, query.epsilon),
                )
            values[member.node.name] = round(contribution * query.scale)
        online_names = {member.node.name for member in online}
        protocol = MaskedSum() if len(nodes) >= 2 else None
        if protocol is None:
            from ..crypto import shamir

            only = willing[0]
            aggregation = AggregationResult(
                total=shamir.encode_signed(values[only.node.name]),
                participants=1, dropped=0, messages=1,
                bytes=16, rounds=1, protocol="single",
            )
        else:
            aggregation = protocol.run(
                nodes, values, online=online_names,
                round_tag=f"{query.recipient}|{query.purpose}",
            )
        from ..crypto import shamir

        value = shamir.decode_signed(aggregation.total) / query.scale
        return GlobalQueryResult(
            transform=query.transform,
            participants=len(online),
            opted_out=opted_out,
            offline=offline,
            value=value,
            aggregation=aggregation,
        )
