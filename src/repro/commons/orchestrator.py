"""Global queries over a population of trusted cells.

Historically this module computed global queries by calling member
objects directly in memory. It is now a thin, API-compatible adapter
over the federated query engine (:mod:`repro.fedquery`): every
:meth:`CommonsCoordinator.run` builds a quiet simulated network, wraps
each member in a :class:`~repro.fedquery.cell.CellQueryAgent` backed by
a :class:`~repro.fedquery.cell.ValueSource`, fans the plan out through
an untrusted :class:`~repro.fedquery.coordinator.Coordinator`, and
converts the engine's result back to the legacy shape. The recipient-
facing semantics are unchanged:

* ``aggregate-dp`` — the recipient gets only a differentially private
  total, computed with the masked-sum protocol plus distributed noise;
* ``records-kanon`` — a trusted recipient gets record-level data,
  k-anonymized collectively;
* ``aggregate-exact`` — a certified recipient (the utility receiving
  monthly billing totals) gets the exact masked-sum aggregate.

Randomness: pass ``seeds=`` (a :class:`~repro.sim.rng.SeedSequence`)
and the whole run — network schedule, retry jitter, every cell's DP
noise stream — derives from that one root, reproducibly. The legacy
``rng=`` argument is still accepted: it becomes the shared noise
source, drawn in deterministic delivery order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, ProtocolError
from ..fedquery.cell import CellQueryAgent, ValueSource
from ..fedquery.coordinator import Coordinator, open_release
from ..fedquery.gate import recipient_key
from ..fedquery.spec import (
    TRANSFORM_DP,
    TRANSFORM_EXACT,
    TRANSFORM_KANON,
    TRANSFORMS,
    FedQuerySpec,
)
from ..infrastructure.network import Network
from ..sim.rng import SeedSequence
from ..sim.world import World
from .aggregation import AggregationNode, AggregationResult
from .anonymize import GeneralizedRecord

__all__ = [
    "TRANSFORM_DP",
    "TRANSFORM_KANON",
    "TRANSFORM_EXACT",
    "TRANSFORMS",
    "GlobalQuery",
    "CommonsMember",
    "GlobalQueryResult",
    "CommonsCoordinator",
]

_FLEET_SECRET = b"commons-adapter-fleet"


@dataclass(frozen=True)
class GlobalQuery:
    """A query from a recipient to the commons."""

    recipient: str
    purpose: str
    transform: str
    epsilon: float = 1.0
    k: int = 5
    scale: int = 1  # fixed-point scaling for fractional values

    def __post_init__(self) -> None:
        if self.transform not in TRANSFORMS:
            raise ConfigurationError(f"unknown transform {self.transform!r}")


@dataclass
class CommonsMember:
    """One household's participation profile."""

    node: AggregationNode
    value: float = 0.0  # the member's answer to numeric queries
    record: dict[str, Any] = field(default_factory=dict)  # for record releases
    opted_in_purposes: set[str] = field(default_factory=set)
    online: bool = True


@dataclass
class GlobalQueryResult:
    """What the recipient receives, plus accounting."""

    transform: str
    participants: int
    opted_out: int
    offline: int
    value: float | None = None
    records: list[GeneralizedRecord] | None = None
    aggregation: AggregationResult | None = None


class CommonsCoordinator:
    """Runs global queries over a member population.

    ``rng`` is the legacy shared randomness source (kept for
    compatibility); prefer ``seeds`` — the whole run then derives from
    one root seed through the :mod:`repro.sim.rng` stream discipline.
    """

    def __init__(self, members: list[CommonsMember],
                 rng: random.Random | None = None, *,
                 seeds: SeedSequence | None = None) -> None:
        if not members:
            raise ConfigurationError("the commons needs at least one member")
        self._members = members
        self._rng = rng
        self._seeds = seeds if seeds is not None else (
            None if rng is not None else SeedSequence(0)
        )
        self._runs = 0

    def run(self, query: GlobalQuery) -> GlobalQueryResult:
        willing = [
            member for member in self._members
            if query.purpose in member.opted_in_purposes
        ]
        opted_out = len(self._members) - len(willing)
        online = [member for member in willing if member.online]
        offline = len(willing) - len(online)
        if not online:
            raise ProtocolError("no participant is opted in and online")

        self._runs += 1
        result = self._run_engine(query, willing)

        if query.transform == TRANSFORM_KANON:
            if result.abandoned:
                released = sum(
                    1 for member in online if member.record
                )
                raise ConfigurationError(
                    f"cannot {query.k}-anonymize {released} records"
                )
            records = open_release(
                result, recipient_key(query.recipient, _FLEET_SECRET),
                k=query.k,
            )
            return GlobalQueryResult(
                transform=query.transform,
                participants=len(online),
                opted_out=opted_out,
                offline=offline,
                records=records,
            )

        if result.abandoned:  # pragma: no cover - quiet network never does
            raise ProtocolError(
                f"federated aggregate failed: {result.failure}"
            )
        aggregation = AggregationResult(
            total=result.field_total,
            participants=result.roster_size,
            dropped=len(result.demoted) + result.declined + result.floored,
            messages=result.messages,
            bytes=result.bytes,
            rounds=1 + result.recovery_rounds,
            protocol="fedquery",
            aggregator_view=result.coordinator_view,
        )
        return GlobalQueryResult(
            transform=query.transform,
            participants=len(online),
            opted_out=opted_out,
            offline=offline,
            value=result.value,
            aggregation=aggregation,
        )

    # -- engine plumbing -------------------------------------------------------

    def _run_engine(self, query: GlobalQuery, willing: list[CommonsMember]):
        seed = (
            self._seeds.child_seed(f"commons-run-{self._runs}")
            if self._seeds is not None else 0
        )
        world = World(seed=seed)
        network = Network(world)
        coordinator = Coordinator(world, network, address="commons-recipient")
        directory = {member.node.name: member.node for member in willing}
        for member in willing:
            CellQueryAgent(
                world, network, member.node.name, member.node,
                ValueSource(member.value, member.record),
                purposes={query.purpose},
                directory=directory,
                fleet_secret=_FLEET_SECRET,
                # Legacy mode: every cell draws noise from the caller's
                # shared rng, in deterministic delivery order.
                noise_rng=self._rng,
            )
            if not member.online:
                network.set_online(member.node.name, False)
        spec = FedQuerySpec(
            recipient=query.recipient,
            purpose=query.purpose,
            transform=query.transform,
            collection="member",
            value_field="value",
            epsilon=query.epsilon,
            k=query.k,
            scale=query.scale,
            # Legacy semantics released single-member aggregates; keep
            # that contract (the engine's default floor is 2).
            min_cohort=1,
        )
        roster = [member.node.name for member in willing]
        return coordinator.run(
            spec, roster,
            round_tag=f"{query.recipient}|{query.purpose}",
        )
