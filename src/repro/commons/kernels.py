"""Array-backed batch kernels for the secure-aggregation hot loops.

The mask algebra of :mod:`repro.commons.aggregation` and the fedquery
egress gate is pure per-element field arithmetic: expand a keystream,
fold each 16-byte chunk into GF(2^127 - 1), add or subtract it from a
running total mod PRIME. Done one element at a time (one slice, one
``int.from_bytes``, one ``%`` per element, one ``%`` per accumulation
step) that is the dominant pure-Python cost of a round at large N.

This module batches those three steps over whole rosters:

* :func:`expand_streams` — counter-mode keystream expansion for *many*
  seeds in one call (the per-block SHA-256 stays in C either way; the
  batching is in the single buffer assembly and the single fold pass);
* :func:`fold_elements` — 16-byte chunks of one contiguous buffer to
  field elements in one pass.  When NumPy is available the 128-bit
  reduction is done as a vectorized Mersenne fold over two 64-bit
  lanes (2^127 ≡ 1 mod PRIME, so ``x mod PRIME`` is a shift, a mask
  and one conditional subtract — no per-element big-int ``%``);
* :func:`accumulate` / :func:`signed_accumulate` /
  :func:`accumulate_columns` — modular accumulation with a *single*
  reduction at the end instead of one ``%`` per element (``sum`` runs
  in C over Python ints; congruence is preserved exactly).

Every kernel is **bit-for-bit identical** to the scalar reference path
(:func:`expand_stream_reference`, pinned by
``tests/test_kernels.py``).  The scalar implementations remain the
correctness oracle; the batch kernels are the production path.  NumPy
is optional — without it every kernel falls back to the scalar loop,
same results, fewer constant factors.
"""

from __future__ import annotations

from ..crypto import shamir
from ..crypto.primitives import counter_stream

try:  # pragma: no cover - exercised implicitly by the fallback tests
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the batteries-included image has it
    _np = None
    HAVE_NUMPY = False

PRIME = shamir.PRIME

_ELEMENT_BYTES = 16  # one field element consumes 16 keystream bytes
_MASK63 = (1 << 63) - 1


# -- keystream expansion -----------------------------------------------------


def expand_stream_reference(seed: bytes, count: int) -> list[int]:
    """Scalar reference: one seed to ``count`` field elements.

    This is exactly the historical per-element loop of
    :meth:`AggregationNode.mask_elements` — slice 16 bytes, big-endian
    ``int.from_bytes``, reduce mod PRIME — kept as the oracle the
    batch kernels are pinned against.
    """
    stream = counter_stream(seed, count * _ELEMENT_BYTES)
    return [
        int.from_bytes(stream[offset:offset + _ELEMENT_BYTES], "big")
        % shamir.PRIME
        for offset in range(0, count * _ELEMENT_BYTES, _ELEMENT_BYTES)
    ]


def fold_elements(buffer: bytes) -> list[int]:
    """Fold a buffer of concatenated 16-byte chunks into field elements.

    Vectorized Mersenne reduction: with ``PRIME = 2^127 - 1`` and a
    chunk ``x = hi·2^64 + lo`` (``hi``, ``lo`` unsigned 64-bit),

        x = (hi >> 63)·2^127 + (hi & (2^63-1))·2^64 + lo
          ≡ (hi >> 63) + y  (mod PRIME),   y = (hi & (2^63-1))·2^64 + lo

    where ``y <= PRIME``, so the result needs at most one subtract.
    The shift/mask runs across the whole buffer in NumPy; only the
    final 128-bit assembly touches Python ints.
    """
    if len(buffer) % _ELEMENT_BYTES:
        raise ValueError("buffer must be a whole number of 16-byte elements")
    if not HAVE_NUMPY:
        return [
            int.from_bytes(buffer[offset:offset + _ELEMENT_BYTES], "big")
            % PRIME
            for offset in range(0, len(buffer), _ELEMENT_BYTES)
        ]
    if not buffer:
        return []
    lanes = _np.frombuffer(buffer, dtype=">u8").reshape(-1, 2)
    carry = (lanes[:, 0] >> 63).tolist()
    hi = (lanes[:, 0] & _MASK63).tolist()
    lo = lanes[:, 1].tolist()
    out = []
    for h, l, c in zip(hi, lo, carry):
        value = ((h << 64) | l) + c
        out.append(value - PRIME if value >= PRIME else value)
    return out


def expand_streams(seeds: list[bytes], count: int) -> list[list[int]]:
    """Batch keystream expansion: ``count`` elements for every seed.

    One buffer assembly plus one :func:`fold_elements` pass replaces
    the per-seed, per-element scalar loop.  Bit-for-bit equal to
    ``[expand_stream_reference(seed, count) for seed in seeds]``.
    """
    if count < 0:
        raise ValueError("element count must be non-negative")
    if not seeds or count == 0:
        return [[] for _ in seeds]
    length = count * _ELEMENT_BYTES
    buffer = b"".join(counter_stream(seed, length) for seed in seeds)
    flat = fold_elements(buffer)
    return [
        flat[index * count:(index + 1) * count]
        for index in range(len(seeds))
    ]


# -- modular accumulation ----------------------------------------------------


def accumulate(values, start: int = 0) -> int:
    """``(start + Σ values) mod PRIME`` with a single final reduction.

    Python's ``sum`` loops in C over arbitrary-precision ints, so this
    is both the fastest and the simplest correct form; congruence
    makes it bit-for-bit equal to reducing after every addition.
    """
    return (start + sum(values)) % PRIME


def signed_accumulate(base: int, plus, minus) -> int:
    """``(base + Σ plus − Σ minus) mod PRIME`` in one reduction."""
    return (base + sum(plus) - sum(minus)) % PRIME


def accumulate_columns(
    base: list[int],
    plus_rows: list[list[int]],
    minus_rows: list[list[int]],
) -> list[int]:
    """Column-wise signed accumulation for vector (histogram) rounds.

    ``base`` is the starting vector; every row in ``plus_rows`` is
    added component-wise and every row in ``minus_rows`` subtracted,
    mod PRIME, with one reduction per component instead of one per
    (row, component) pair.
    """
    width = len(base)
    for rows in (plus_rows, minus_rows):
        for row in rows:
            if len(row) != width:
                raise ValueError("row width does not match the base vector")
    plus_cols = zip(*plus_rows) if plus_rows else [()] * width
    minus_cols = zip(*minus_rows) if minus_rows else [()] * width
    return [
        (value + sum(plus) - sum(minus)) % PRIME
        for value, plus, minus in zip(base, plus_cols, minus_cols)
    ]
