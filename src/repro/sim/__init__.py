"""Deterministic simulation kernel: clock, event loop, RNG discipline."""

from .clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SECONDS_PER_MONTH,
    SimClock,
    day_start,
    month_start,
)
from .events import EventHandle, EventLoop
from .rng import SeedSequence
from .world import World

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_MONTH",
    "SimClock",
    "day_start",
    "month_start",
    "EventHandle",
    "EventLoop",
    "SeedSequence",
    "World",
]
