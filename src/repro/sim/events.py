"""Discrete-event scheduler.

The platform's distributed protocols (sync, secure aggregation, message
delivery with latency) run on a classic event-driven simulation loop:
callbacks are scheduled at absolute simulated timestamps and executed in
timestamp order, with a monotonically increasing sequence number as a
deterministic tie-breaker.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ConfigurationError
from .clock import SimClock


@dataclass(order=True)
class _ScheduledEvent:
    timestamp: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancelling."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def timestamp(self) -> int:
        return self._event.timestamp


class EventLoop:
    """Deterministic discrete-event loop bound to a :class:`SimClock`.

    Events scheduled for the same timestamp run in scheduling order.
    Callbacks may schedule further events, including at the current
    timestamp (which run within the same :meth:`run_until` call).
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._queue: list[_ScheduledEvent] = []
        self._sequence = 0
        self._events_executed = 0

    @property
    def events_executed(self) -> int:
        """Total callbacks executed; useful as a progress metric."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(
        self, timestamp: int, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``timestamp``."""
        if timestamp < self.clock.now:
            raise ConfigurationError(
                f"cannot schedule event at {timestamp}, now is {self.clock.now}"
            )
        event = _ScheduledEvent(int(timestamp), self._sequence, callback, label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError("delay must be non-negative")
        return self.schedule_at(self.clock.now + int(delay), callback, label)

    def schedule_every(
        self,
        period: int,
        callback: Callable[[], Any],
        label: str = "",
        first_at: int | None = None,
    ) -> EventHandle:
        """Schedule ``callback`` periodically, forever (until cancelled).

        Returns the handle for the *first* occurrence; cancelling it
        stops the whole series (each occurrence re-checks the flag).
        """
        if period <= 0:
            raise ConfigurationError("period must be positive")
        start = self.clock.now + period if first_at is None else first_at
        event = _ScheduledEvent(int(start), self._sequence, lambda: None, label)
        self._sequence += 1
        handle = EventHandle(event)

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                self.schedule_at(self.clock.now + period, fire, label)

        event.callback = fire
        heapq.heappush(self._queue, event)
        return handle

    def run_until(self, timestamp: int, max_events: int | None = None) -> int:
        """Execute all events up to and including ``timestamp``.

        Advances the clock to each event's time, then to ``timestamp``.
        Returns the number of callbacks executed. ``max_events`` guards
        against runaway self-rescheduling loops in tests.
        """
        executed = 0
        while self._queue and self._queue[0].timestamp <= timestamp:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if max_events is not None and executed >= max_events:
                heapq.heappush(self._queue, event)
                break
            self.clock.advance_to(event.timestamp)
            event.callback()
            executed += 1
            self._events_executed += 1
        if self.clock.now < timestamp:
            self.clock.advance_to(timestamp)
        return executed

    def run_for(self, seconds: int, max_events: int | None = None) -> int:
        """Execute all events within the next ``seconds`` of simulated time."""
        return self.run_until(self.clock.now + int(seconds), max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events``)."""
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.timestamp)
            event.callback()
            executed += 1
            self._events_executed += 1
        return executed
