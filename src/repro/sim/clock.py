"""Simulated time.

All platform components take their notion of "now" from a
:class:`SimClock` rather than the wall clock, so that experiments are
deterministic and so that time-based policy conditions (e.g. "accessible
in the course of 2012") can be tested at any speed.

Time is measured in integer **seconds** since the simulation epoch.
The epoch is arbitrary; helpers convert to calendar-like units assuming
the epoch falls at midnight on day 0.
"""

from __future__ import annotations

from ..errors import ConfigurationError

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400
DAYS_PER_MONTH = 30  # simulation months are uniform 30-day blocks
SECONDS_PER_MONTH = SECONDS_PER_DAY * DAYS_PER_MONTH


class SimClock:
    """A monotonically advancing simulated clock.

    The clock only moves forward; protocols that need causality (audit
    logs, version counters, certificate validity) rely on this.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before the epoch")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError("time cannot move backwards")
        self._now += int(seconds)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move time forward to an absolute ``timestamp``.

        Raises :class:`ConfigurationError` if the timestamp is in the
        past, because silently rewinding time would corrupt audit-log
        ordering.
        """
        if timestamp < self._now:
            raise ConfigurationError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = int(timestamp)
        return self._now

    # -- calendar helpers -------------------------------------------------

    def day(self) -> int:
        """Index of the current simulation day (day 0 starts at epoch)."""
        return self._now // SECONDS_PER_DAY

    def month(self) -> int:
        """Index of the current simulation month (30-day blocks)."""
        return self._now // SECONDS_PER_MONTH

    def seconds_into_day(self) -> int:
        """Seconds elapsed since the most recent midnight."""
        return self._now % SECONDS_PER_DAY

    def hour_of_day(self) -> int:
        """Hour of the current day, 0-23."""
        return self.seconds_into_day() // SECONDS_PER_HOUR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now}, day={self.day()})"


def day_start(day: int) -> int:
    """Timestamp of midnight at the start of simulation day ``day``."""
    return day * SECONDS_PER_DAY


def month_start(month: int) -> int:
    """Timestamp of the start of simulation month ``month``."""
    return month * SECONDS_PER_MONTH
