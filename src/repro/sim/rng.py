"""Deterministic randomness discipline.

Every stochastic component draws from a named stream derived from a
single experiment seed, so that (a) whole experiments are reproducible
bit-for-bit and (b) changing how one component consumes randomness does
not perturb the draws seen by the others.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent, stable child seeds from a root seed.

    Child seeds are derived by hashing ``(root_seed, name)`` so the same
    name always yields the same stream regardless of derivation order.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def child_seed(self, name: str) -> int:
        """A 64-bit seed unique to ``name`` under this root seed."""
        material = f"{self._root_seed}:{name}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """A fresh :class:`random.Random` for the named stream."""
        return random.Random(self.child_seed(name))

    def spawn(self, name: str) -> "SeedSequence":
        """A child sequence, for components that themselves fan out."""
        return SeedSequence(self.child_seed(name))
