"""The simulation world: shared clock, event loop and seed registry.

A :class:`World` is the container every experiment builds first; all
cells, sensors, networks and adversaries are constructed against the
same world so they share one timeline and one randomness root.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from ..obs import Observability
from .clock import SimClock
from .events import EventLoop
from .rng import SeedSequence


class World:
    """Top-level simulation context.

    Also acts as a lightweight entity registry so experiments can look
    up components by name when wiring scenarios (e.g. the Figure 1
    walkthrough registers Alice's gateway as ``"alice-gateway"``).
    """

    def __init__(self, seed: int = 0, start_time: int = 0,
                 obs: Observability | None = None) -> None:
        self.clock = SimClock(start_time)
        self.loop = EventLoop(self.clock)
        self.seeds = SeedSequence(seed)
        # Per-world observability scope, stamped with *simulated* time;
        # pass a shared instance to merge several worlds into one view.
        self.obs = obs if obs is not None else Observability(
            clock=lambda: float(self.clock.now)
        )
        self._entities: dict[str, Any] = {}

    @property
    def now(self) -> int:
        return self.clock.now

    def register(self, name: str, entity: Any) -> Any:
        """Register ``entity`` under a unique ``name`` and return it."""
        if name in self._entities:
            raise ConfigurationError(f"entity name already registered: {name!r}")
        self._entities[name] = entity
        return entity

    def lookup(self, name: str) -> Any:
        """Return the entity registered under ``name``."""
        try:
            return self._entities[name]
        except KeyError:
            raise ConfigurationError(f"no entity registered as {name!r}") from None

    def entities(self) -> dict[str, Any]:
        """A copy of the registry (name -> entity)."""
        return dict(self._entities)

    def rng(self, stream: str):
        """Deterministic random stream named ``stream``."""
        return self.seeds.stream(stream)
