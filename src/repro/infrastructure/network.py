"""Simulated network between cells and the cloud.

Endpoints register a handler under an address; messages are delivered
through the event loop after a latency computed from the sender's
uplink bandwidth and base latency. Endpoints can be taken offline to
model the paper's "weakly available trusted cells"; sends to an offline
endpoint either fail fast or are queued until it returns, at the
sender's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import CellOfflineError, ConfigurationError, NetworkError
from ..sim.world import World

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector

Handler = Callable[[str, Any], None]  # (sender_address, payload)


@dataclass
class NetworkStats:
    """Cumulative traffic counters (the unit experiment E9 reports).

    ``per_link`` keeps its historical meaning (message counts);
    ``per_link_bytes`` tracks the bytes each directed link carried,
    which is what the E9 traffic tables actually bill.
    """

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    queued: int = 0
    lost: int = 0  # fault-injected silent losses (sender unaware)
    duplicated: int = 0  # fault-injected duplicate deliveries
    per_link: dict[tuple[str, str], int] = field(default_factory=dict)
    per_link_bytes: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, source: str, destination: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        link = (source, destination)
        self.per_link[link] = self.per_link.get(link, 0) + 1
        self.per_link_bytes[link] = self.per_link_bytes.get(link, 0) + size


#: Outcome strings returned by :meth:`Network.send`.
SEND_SCHEDULED = "scheduled"
SEND_QUEUED = "queued"


@dataclass
class BroadcastReport:
    """Per-destination outcome of one :meth:`Network.broadcast`.

    ``scheduled`` destinations had the message put on the wire (it may
    still be lost by the fault plane — loss is silent by design),
    ``queued`` ones were offline but will receive it when they return,
    ``dropped`` ones were offline and the message was rejected.
    """

    scheduled: list[str] = field(default_factory=list)
    queued: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)

    @property
    def offline(self) -> list[str]:
        """Every destination that was offline, queued or not."""
        return self.queued + self.dropped


class Network:
    """A star network: every endpoint can reach every other endpoint.

    Latency model: ``base_latency + size / uplink_bandwidth`` using the
    sender's link parameters (registered per endpoint).
    """

    def __init__(self, world: World) -> None:
        self.world = world
        self._handlers: dict[str, Handler] = {}
        self._online: dict[str, bool] = {}
        self._latency_s: dict[str, float] = {}
        self._bandwidth: dict[str, float] = {}
        self._queues: dict[str, list[tuple[str, Any, int]]] = {}
        self.stats = NetworkStats()
        self.fault_injector: FaultInjector | None = None
        metrics = world.obs.metrics
        self._events = world.obs.events
        self._messages_metric = metrics.counter(
            "net.messages", help="messages delivered")
        self._bytes_metric = metrics.counter(
            "net.bytes", help="payload bytes delivered")
        self._dropped_metric = metrics.counter(
            "net.dropped", help="sends rejected: destination offline")
        self._queued_metric = metrics.counter(
            "net.queued", help="sends parked for an offline destination")
        self._lost_metric = metrics.counter(
            "net.lost", help="messages silently lost by the fault plane")

    def register(
        self,
        address: str,
        handler: Handler,
        latency_ms: float = 20.0,
        bandwidth_bytes_per_s: float = 1e6,
    ) -> None:
        """Attach an endpoint to the network."""
        if address in self._handlers:
            raise ConfigurationError(f"address already registered: {address!r}")
        self._handlers[address] = handler
        self._online[address] = True
        self._latency_s[address] = latency_ms / 1000.0
        self._bandwidth[address] = bandwidth_bytes_per_s
        self._queues[address] = []

    def is_registered(self, address: str) -> bool:
        return address in self._handlers

    def is_online(self, address: str) -> bool:
        return self._online.get(address, False)

    def set_online(self, address: str, online: bool) -> None:
        """Change endpoint availability; flushes its queue on return.

        Queued messages already paid the sender's transfer time when
        they were first sent, so the flush delivers them in strict
        enqueue order as one zero-delay scheduled event per message —
        re-applying each sender's *current* latency here would let a
        fast sender's late message overtake a slow sender's earlier one.
        """
        if address not in self._handlers:
            raise ConfigurationError(f"unknown address {address!r}")
        was_online = self._online[address]
        self._online[address] = online
        if online and not was_online:
            pending, self._queues[address] = self._queues[address], []
            if pending:
                by_source: dict[str, int] = {}
                for source, _, _ in pending:
                    by_source[source] = by_source.get(source, 0) + 1
                self._events.emit(
                    "network.flush", address=address, count=len(pending),
                    by_source=by_source,
                )
            handler = self._handlers[address]
            for source, payload, size in pending:
                self.stats.record(source, address, size)
                self._messages_metric.inc()
                self._bytes_metric.inc(size)
                self.world.loop.schedule_in(
                    0,
                    lambda h=handler, s=source, p=payload: h(s, p),
                    label=f"flush {source}->{address}",
                )

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size_bytes: int = 0,
        queue_if_offline: bool = False,
    ) -> str:
        """Send ``payload`` from ``source`` to ``destination``.

        ``size_bytes`` drives the latency/traffic accounting (payloads
        are Python objects; their serialized size is declared by the
        protocol layer, which knows it exactly for sealed blobs).
        Returns :data:`SEND_SCHEDULED` or :data:`SEND_QUEUED`.
        """
        if source not in self._handlers:
            raise NetworkError(f"unregistered sender {source!r}")
        if destination not in self._handlers:
            raise NetworkError(f"unregistered destination {destination!r}")
        if not self._online[source]:
            raise CellOfflineError(f"sender {source!r} is offline")
        if not self._online[destination]:
            if queue_if_offline:
                self._queues[destination].append((source, payload, size_bytes))
                self.stats.queued += 1
                self._queued_metric.inc()
                self._events.emit(
                    "network.queue", source=source, destination=destination,
                    size=size_bytes,
                )
                return SEND_QUEUED
            self.stats.dropped += 1
            self._dropped_metric.inc()
            self._events.emit(
                "network.drop", source=source, destination=destination,
                size=size_bytes,
            )
            raise CellOfflineError(f"destination {destination!r} is offline")
        self._deliver(source, destination, payload, size_bytes)
        return SEND_SCHEDULED

    def _deliver(self, source: str, destination: str, payload: Any, size: int) -> None:
        extra_delay = 0
        copies = 1
        injector = self.fault_injector
        if injector is not None:
            decision = injector.link_decision(source, destination, size)
            if decision is not None:
                if decision.drop:
                    # silent loss: the sender already believes it sent;
                    # nothing is billed because nothing reached the wire's
                    # far end (the injector recorded the fault)
                    self.stats.lost += 1
                    self._lost_metric.inc()
                    return
                copies = decision.copies
                extra_delay = decision.extra_delay_s
        transfer_seconds = self._latency_s[source] + (
            size / self._bandwidth[source] if size else 0.0
        )
        delay = max(1, round(transfer_seconds)) if transfer_seconds > 0.5 else 0
        delay += extra_delay
        handler = self._handlers[destination]
        for copy_index in range(copies):
            self.stats.record(source, destination, size)
            self._messages_metric.inc()
            self._bytes_metric.inc(size)
            if copy_index > 0:
                self.stats.duplicated += 1
            self.world.loop.schedule_in(
                delay, lambda: handler(source, payload),
                label=f"msg {source}->{destination}",
            )

    def broadcast(
        self,
        source: str,
        destinations: list[str],
        payload: Any,
        size_bytes: int = 0,
        queue_if_offline: bool = False,
    ) -> BroadcastReport:
        """Send to many endpoints; reports each destination's outcome.

        Offline destinations are *queued* when ``queue_if_offline`` is
        set and *dropped* otherwise — the report distinguishes the two,
        because a queued message still arrives (late) while a dropped
        one never will.
        """
        if source in self._handlers and not self._online[source]:
            raise CellOfflineError(f"sender {source!r} is offline")
        report = BroadcastReport()
        for destination in destinations:
            try:
                outcome = self.send(
                    source, destination, payload, size_bytes,
                    queue_if_offline=queue_if_offline,
                )
            except CellOfflineError:
                report.dropped.append(destination)
                continue
            if outcome == SEND_QUEUED:
                report.queued.append(destination)
            else:
                report.scheduled.append(destination)
        return report
