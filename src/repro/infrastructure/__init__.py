"""Untrusted infrastructure: cloud provider, network, adversaries."""

from .adversary import (
    Adversary,
    AdversaryStats,
    CuriousAdversary,
    WeaklyMaliciousAdversary,
)
from .cloud import CloudProvider, StoredObject
from .network import Network, NetworkStats

__all__ = [
    "Adversary",
    "AdversaryStats",
    "CuriousAdversary",
    "WeaklyMaliciousAdversary",
    "CloudProvider",
    "StoredObject",
    "Network",
    "NetworkStats",
]
