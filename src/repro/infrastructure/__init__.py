"""Untrusted infrastructure: cloud provider, network, adversaries."""

from .adversary import (
    Adversary,
    AdversaryStats,
    CuriousAdversary,
    WeaklyMaliciousAdversary,
)
from .cloud import CloudProvider, StoredObject
from .network import (
    SEND_QUEUED,
    SEND_SCHEDULED,
    BroadcastReport,
    Network,
    NetworkStats,
)

__all__ = [
    "Adversary",
    "AdversaryStats",
    "CuriousAdversary",
    "WeaklyMaliciousAdversary",
    "CloudProvider",
    "StoredObject",
    "BroadcastReport",
    "Network",
    "NetworkStats",
    "SEND_QUEUED",
    "SEND_SCHEDULED",
]
