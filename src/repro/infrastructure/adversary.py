"""Adversary models for the untrusted infrastructure.

The paper's threat model: "The primary adversary is the infrastructure.
The infrastructure may deviate from the protocols it is expected to
implement with the objective to breach the confidentiality of the
outsourced data. ... The infrastructure is assumed trying to cheat only
if it cannot be convicted as an adversary by any trusted cell"
(a *weakly malicious* adversary, citing Zhang & Zhao).

Adversaries intercept the cloud's read path (confidentiality attacks on
the write path are pointless: the adversary already stores the bytes).
Each strategy can:

* **observe** — record everything it sees (honest-but-curious);
* **tamper** — flip bytes in a returned object;
* **rollback** — return a stale version of an object (replay);
* **drop** — claim an object does not exist.

A weakly malicious adversary stops cheating once *convicted*: the first
time a cell files cryptographic evidence of misbehaviour, continuing
would expose the provider to "irreversible political/financial/legal
damage". Experiment E11 measures detection rates and time-to-conviction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass
class AdversaryStats:
    """What the adversary attempted and what it observed."""

    objects_observed: int = 0
    bytes_observed: int = 0
    plaintext_bytes_seen: int = 0  # bytes NOT protected by encryption
    tamper_attempts: int = 0
    rollback_attempts: int = 0
    drop_attempts: int = 0
    distinct_keys_seen: set = field(default_factory=set)


class Adversary:
    """Base adversary: honest passthrough with observation."""

    name = "honest"

    def __init__(self) -> None:
        self.stats = AdversaryStats()
        self.convicted = False
        self.convicted_at: int | None = None

    def observe(self, key: str, blob: bytes, is_plaintext: bool = False) -> None:
        """Called on every byte stream the provider handles."""
        self.stats.objects_observed += 1
        self.stats.bytes_observed += len(blob)
        self.stats.distinct_keys_seen.add(key)
        if is_plaintext:
            self.stats.plaintext_bytes_seen += len(blob)

    def convict(self, timestamp: int) -> None:
        """A cell filed verifiable evidence; the adversary must stop."""
        if not self.convicted:
            self.convicted = True
            self.convicted_at = timestamp

    # -- read-path interception -------------------------------------------

    def intercept_get(
        self, key: str, current: bytes, history: list[bytes]
    ) -> bytes | None:
        """Return the bytes to hand to the client.

        ``None`` means "claim the object does not exist". The honest
        adversary returns ``current`` unchanged.
        """
        return current


class CuriousAdversary(Adversary):
    """Honest-but-curious: follows the protocol, remembers everything.

    Used to measure *leakage*: after a run, ``stats.plaintext_bytes_seen``
    must be zero if the platform encrypted everything it outsourced.
    """

    name = "curious"


class WeaklyMaliciousAdversary(Adversary):
    """Active attacks at configurable rates, stopping on conviction."""

    name = "weakly-malicious"

    def __init__(
        self,
        rng: random.Random,
        tamper_rate: float = 0.0,
        rollback_rate: float = 0.0,
        drop_rate: float = 0.0,
    ) -> None:
        super().__init__()
        for rate in (tamper_rate, rollback_rate, drop_rate):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError("attack rates must be probabilities")
        self._rng = rng
        self.tamper_rate = tamper_rate
        self.rollback_rate = rollback_rate
        self.drop_rate = drop_rate

    def intercept_get(
        self, key: str, current: bytes, history: list[bytes]
    ) -> bytes | None:
        if self.convicted:
            return current
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.stats.drop_attempts += 1
            return None
        if roll < self.drop_rate + self.rollback_rate:
            if len(history) > 1:
                self.stats.rollback_attempts += 1
                return history[-2]  # previous version: a perfect replay
            return current  # no stale version to serve; stay honest
        if roll < self.drop_rate + self.rollback_rate + self.tamper_rate:
            if current:
                self.stats.tamper_attempts += 1
                position = self._rng.randrange(len(current))
                flipped = bytes(
                    [current[position] ^ (1 + self._rng.randrange(255))]
                )
                return current[:position] + flipped + current[position + 1 :]
        return current
