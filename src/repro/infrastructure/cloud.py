"""The untrusted cloud: versioned object store plus message bus.

Per the paper, the infrastructure must "(1) ensure a highly available
and resilient store for all data outsourced by trusted cells, (2)
provide communication facilities among cells and (3) participate to
distributed computations (e.g., store intermediate results)". It is
untrusted: everything it stores is bytes that an adversary model may
observe and — on the read path — manipulate.

Objects are versioned. Version history is retained deliberately: it is
what makes rollback attacks *possible* to express, so the sync layer's
anti-rollback defence has something real to defend against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import NotFoundError
from ..sim.world import World
from .adversary import Adversary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector


@dataclass
class StoredObject:
    """Current state of one key in the object store."""

    key: str
    version: int
    data: bytes
    stored_at: int


class CloudProvider:
    """A simulated cloud service with a pluggable adversary.

    The provider itself never raises security errors — it is the
    *client-side* checks (MACs, signatures, version counters, Merkle
    proofs) that turn a manipulated read into an
    :class:`~repro.errors.IntegrityError` and, from there, into
    evidence via :meth:`file_evidence`.
    """

    def __init__(self, world: World, adversary: Adversary | None = None) -> None:
        self.world = world
        self.adversary = adversary or Adversary()
        self._objects: dict[str, StoredObject] = {}
        self._history: dict[str, list[bytes]] = {}
        self._mailboxes: dict[str, list[tuple[str, bytes]]] = {}
        self.put_count = 0
        self.get_count = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.evidence_log: list[dict] = []
        # operational fault plane (distinct from the adversary: a fault
        # is transient and retryable, never evidence of misbehaviour)
        self.fault_injector: FaultInjector | None = None

    def _gate(self, op: str, key: str) -> None:
        """Let the fault plane fail this operation transiently."""
        if self.fault_injector is not None:
            self.fault_injector.cloud_op(op, key)

    # -- object store ---------------------------------------------------------

    def put_object(self, key: str, data: bytes, is_plaintext: bool = False) -> int:
        """Store a new version of ``key``; returns the version number.

        ``is_plaintext`` is a *measurement tag*, set by test harnesses
        that deliberately outsource unprotected data; the platform
        itself always stores sealed blobs and leaves it False.
        """
        self._gate("put", key)
        self.adversary.observe(key, data, is_plaintext=is_plaintext)
        previous = self._objects.get(key)
        version = (previous.version + 1) if previous else 1
        self._objects[key] = StoredObject(
            key=key, version=version, data=bytes(data), stored_at=self.world.now
        )
        self._history.setdefault(key, []).append(bytes(data))
        self.put_count += 1
        self.bytes_in += len(data)
        return version

    def get_object(self, key: str) -> bytes:
        """Fetch the current version of ``key`` — via the adversary.

        Raises :class:`NotFoundError` both for genuinely missing keys
        and for adversarial drops; the client cannot tell the
        difference from one response (it can from an audit trail).
        Transient operational failures raise
        :class:`~repro.errors.TransientCloudError` instead — those are
        retryable and carry no integrity implication.
        """
        self._gate("get", key)
        stored = self._objects.get(key)
        if stored is None:
            raise NotFoundError(f"no object {key!r}")
        returned = self.adversary.intercept_get(
            key, stored.data, self._history.get(key, [])
        )
        self.get_count += 1
        if returned is None:
            raise NotFoundError(f"no object {key!r}")
        self.bytes_out += len(returned)
        return returned

    def head_object(self, key: str) -> int:
        """Current version number of ``key`` (metadata read)."""
        stored = self._objects.get(key)
        if stored is None:
            raise NotFoundError(f"no object {key!r}")
        return stored.version

    def contains(self, key: str) -> bool:
        return key in self._objects

    def delete_object(self, key: str) -> None:
        """Delete a key (history retained: the adversary never forgets)."""
        if key not in self._objects:
            raise NotFoundError(f"no object {key!r}")
        del self._objects[key]

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._objects if key.startswith(prefix))

    @property
    def stored_bytes(self) -> int:
        return sum(len(stored.data) for stored in self._objects.values())

    # -- message bus -----------------------------------------------------------

    def post_message(self, mailbox: str, sender: str, message: bytes) -> None:
        """Append a message to a mailbox (also observed by the adversary)."""
        self._gate("put", f"mailbox:{mailbox}")
        self.adversary.observe(f"mailbox:{mailbox}", message)
        self._mailboxes.setdefault(mailbox, []).append((sender, bytes(message)))
        self.bytes_in += len(message)

    def fetch_messages(self, mailbox: str) -> list[tuple[str, bytes]]:
        """Drain and return all messages in a mailbox.

        An injected transient failure raises *before* the drain, so no
        messages are lost to a failed fetch.
        """
        self._gate("get", f"mailbox:{mailbox}")
        messages = self._mailboxes.pop(mailbox, [])
        self.bytes_out += sum(len(message) for _, message in messages)
        return messages

    def peek_mailbox(self, mailbox: str) -> int:
        """Number of waiting messages without draining."""
        return len(self._mailboxes.get(mailbox, ()))

    # -- accountability ---------------------------------------------------------

    def file_evidence(self, reporter: str, key: str, reason: str) -> None:
        """A cell files verifiable evidence of misbehaviour.

        This is the conviction mechanism of the threat model: the first
        piece of evidence convicts the adversary, who thereafter
        behaves honestly (cheating is only rational while deniable).
        """
        self.evidence_log.append(
            {
                "reporter": reporter,
                "key": key,
                "reason": reason,
                "timestamp": self.world.now,
            }
        )
        self.adversary.convict(self.world.now)

    @property
    def convicted(self) -> bool:
        return self.adversary.convicted
