"""Exception hierarchy for the Trusted Cells platform.

Every error raised by the library derives from :class:`TrustedCellsError`
so applications can catch platform failures with a single ``except``
clause while still distinguishing security violations (which should
never be silently swallowed) from operational failures.
"""

from __future__ import annotations


class TrustedCellsError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(TrustedCellsError):
    """A component was constructed or wired with invalid parameters."""


class SecurityError(TrustedCellsError):
    """Base class for violations of the platform's security guarantees.

    Raising (rather than returning) on security violations implements the
    paper's requirement that the reference monitor cannot be bypassed:
    callers cannot accidentally ignore a denied access.
    """


class AccessDenied(SecurityError):
    """The reference monitor denied an access or usage request."""


class AuthenticationError(SecurityError):
    """A principal failed to authenticate to a trusted cell."""


class IntegrityError(SecurityError):
    """Stored or transmitted data failed an integrity check.

    This is the signal the paper requires for convicting a weakly
    malicious infrastructure: tampering must be detected, never masked.
    """


class ReplayError(IntegrityError):
    """A stale or replayed object version was detected (anti-rollback)."""


class CredentialError(SecurityError):
    """A credential was missing, expired, forged or signed by an
    unknown authority."""


class PolicyError(SecurityError):
    """A sticky policy was malformed, unbound, or its binding MAC failed."""


class TamperedCellError(SecurityError):
    """An operation was attempted on a cell whose secure hardware has
    been breached by the physical attack model."""


class KeyError_(SecurityError):
    """A cryptographic key was unavailable, or key material left the
    tamper-resistant boundary illegally."""


class StorageError(TrustedCellsError):
    """The embedded store or the cloud store failed operationally."""


class TransientCloudError(StorageError):
    """A cloud operation failed operationally but may succeed on retry.

    This is the *benign* failure mode of the untrusted infrastructure
    (overload, restart, throttling), injected by the fault plane and
    distinct from the adversary model's malicious tampering: retrying
    is safe and no evidence should be filed.
    """


class CapacityError(StorageError):
    """A hardware resource budget (RAM, flash, tamper-resistant bytes)
    was exceeded."""


class NotFoundError(StorageError):
    """A requested object, record or key does not exist."""


class NetworkError(TrustedCellsError):
    """A message could not be delivered by the simulated network."""


class CellOfflineError(NetworkError):
    """The target cell is disconnected (weak-connectivity model)."""


class ProtocolError(TrustedCellsError):
    """A distributed protocol received an out-of-order or malformed
    message, or could not complete with the surviving participants."""


class QueryError(TrustedCellsError):
    """A query was malformed or referenced unknown fields."""
