"""E2 — privacy vs aggregation granularity.

Operationalizes: "At the 1Hz granularity ... most electrical appliances
have a distinctive energy signature ... at [15-minute] granularity one
cannot detect specific activities, but it is still possible to infer a
daily routine."

Sweep: for each externalization granularity, run the NILM appliance-
detection attack and the routine-inference attack against what a
recipient at that granularity would see. Expected shape: appliance F1
collapses between 1 s and 15 min; routine accuracy stays high at
15 min and collapses at daily/monthly statistics.
"""

from __future__ import annotations

import random

from ..attacks.nilm import appliance_detection_f1, infer_routine
from ..sim.clock import SECONDS_PER_DAY
from ..workloads.energy import STANDARD_APPLIANCES, HouseholdSimulator
from .tables import Table

GRANULARITIES = [
    ("1 s (raw Linky)", 1),
    ("1 min", 60),
    ("5 min", 300),
    ("15 min (household view)", 900),
    ("1 hour", 3600),
    ("daily statistics", SECONDS_PER_DAY),
]

RATED_POWERS = {
    appliance.name: appliance.power_watts for appliance in STANDARD_APPLIANCES
}


def run(seed: int = 0, days: int = 3) -> list[Table]:
    simulator = HouseholdSimulator(
        random.Random(seed), noise_watts=3.0, activity_scale=1.5
    )
    traces = simulator.simulate_days(0, days)

    table = Table(
        title="E2: NILM attack success vs externalization granularity",
        columns=[
            "granularity", "appliance precision", "appliance recall",
            "appliance F1", "routine accuracy",
        ],
    )
    for label, granularity in GRANULARITIES:
        precisions, recalls, f1s, routines = [], [], [], []
        for trace in traces:
            score = appliance_detection_f1(trace, granularity, RATED_POWERS)
            precisions.append(score.precision)
            recalls.append(score.recall)
            f1s.append(score.f1)
            routines.append(
                infer_routine(trace, granularity, simulator.base_load)
            )
        table.add_row(
            label,
            sum(precisions) / days,
            sum(recalls) / days,
            sum(f1s) / days,
            sum(routines) / days,
        )
    table.add_note(
        "paper claim: appliances identifiable at 1 s, not at 15 min; "
        "daily routine still inferable at 15 min"
    )

    # -- cyclic (multi-state) appliances: the harder signature class ----------
    from ..attacks.cycles import cycle_attack
    from ..workloads.multistate import STANDARD_CYCLES, CyclicHouseholdSimulator

    cycles_table = Table(
        title="E2a: phase-sequence NILM on cyclic appliances",
        columns=["granularity", "cycle F1"],
    )
    cyclic_days = []
    attempts = 0
    while len(cyclic_days) < days and attempts < days * 12:
        simulator_cyclic = CyclicHouseholdSimulator(
            random.Random(seed + 100 + attempts), noise_watts=3.0
        )
        trace, runs = simulator_cyclic.simulate_day(0)
        attempts += 1
        if runs:
            cyclic_days.append((simulator_cyclic, trace, runs))
    for label, granularity in GRANULARITIES:
        scores = [
            cycle_attack(trace, runs, list(STANDARD_CYCLES), granularity,
                         simulator_cyclic.base_load).f1
            for simulator_cyclic, trace, runs in cyclic_days
        ]
        cycles_table.add_row(label, sum(scores) / len(scores))
    cycles_table.add_note(
        "cycles (wash/heat/spin sequences) are a richer fingerprint at 1 s "
        "and dissolve under the same aggregation"
    )
    return [table, cycles_table]


def shape_holds(tables: list[Table]) -> bool:
    """The paper's qualitative claims as machine-checkable predicates."""
    table = tables[0]
    f1 = dict(zip(table.column("granularity"), table.column("appliance F1")))
    routine = dict(
        zip(table.column("granularity"), table.column("routine accuracy"))
    )
    cycles = dict(zip(tables[1].column("granularity"),
                      tables[1].column("cycle F1")))
    return (
        f1["1 s (raw Linky)"] > 0.6
        and f1["15 min (household view)"] < 0.25
        and routine["15 min (household view)"] > 0.75
        and routine["daily statistics"] <= 0.55
        # cycles: strong at 1 s (short of 1.0: temporally overlapping
        # cycles defeat single-signature matching), gone at 15 min
        and cycles["1 s (raw Linky)"] >= 0.6
        and cycles["15 min (household view)"] < 0.4
    )
