"""E10 — the shared commons' transformations: anonymization and DP.

Operationalizes: "her data suffers appropriate transformations (e.g.,
anonymization, output perturbation) depending on the trustworthiness of
the recipient(s)". Two sweeps on an epidemiology-style workload
(disease vs diet, the paper's "cross-analyzing diseases and
alimentation"):

* k-anonymity: information loss (NCP) vs k, plus utility of the
  released records for the diabetes-vs-sweets analysis;
* differential privacy: mean absolute error vs epsilon, central noise
  vs the distributed Gamma-share mechanism the cells actually use.
"""

from __future__ import annotations

import random

from ..commons.anonymize import is_k_anonymous, k_anonymize, ncp
from ..commons.dp import central_dp_sum, distributed_dp_sum, dp_mean_absolute_error
from ..workloads.records import assign_disease, generate_receipts, sweets_share
from .tables import Table


def _population(size: int, seed: int) -> list[dict]:
    rng = random.Random(seed)
    people = []
    for index in range(size):
        disease = assign_disease(rng)
        receipts = generate_receipts(rng, days=60, disease=disease)
        people.append(
            {
                "qi_age": rng.randint(18, 90),
                "qi_zip": rng.randint(75000, 75019),
                "disease": disease,
                "sweets_share": sweets_share(receipts),
            }
        )
    return people


def run(seed: int = 0, population: int = 300) -> list[Table]:
    people = _population(population, seed)
    records = [
        {"qi_age": p["qi_age"], "qi_zip": p["qi_zip"], "disease": p["disease"]}
        for p in people
    ]

    kanon_table = Table(
        title="E10: k-anonymity - information loss vs k",
        columns=["k", "NCP information loss", "k-anonymous"],
    )
    for k in (2, 5, 10, 25, 50):
        released = k_anonymize(records, ["qi_age", "qi_zip"], ["disease"], k)
        kanon_table.add_row(
            k,
            ncp(released, records, ["qi_age", "qi_zip"]),
            is_k_anonymous(released, k),
        )

    # The epidemiology signal: do diabetics buy fewer sweets?
    diabetic = [p["sweets_share"] for p in people if p["disease"] == "diabetes"]
    healthy = [p["sweets_share"] for p in people if p["disease"] == "none"]
    signal = Table(
        title="E10a: epidemiology utility - sweets share by condition",
        columns=["group", "n", "mean sweets share"],
    )
    signal.add_row("diabetes", len(diabetic),
                   sum(diabetic) / len(diabetic) if diabetic else float("nan"))
    signal.add_row("none", len(healthy),
                   sum(healthy) / len(healthy) if healthy else float("nan"))

    dp_table = Table(
        title="E10b: DP aggregate error vs epsilon (sum of sweets shares)",
        columns=["epsilon", "central MAE", "distributed MAE",
                 "relative error % (distributed)"],
    )
    values = [p["sweets_share"] for p in people]
    true_sum = sum(values)
    rng = random.Random(seed + 1)
    for epsilon in (0.1, 0.5, 1.0, 5.0):
        central = dp_mean_absolute_error(
            true_sum,
            lambda r, e=epsilon: central_dp_sum(values, 1.0, e, r),
            trials=200, rng=rng,
        )
        distributed = dp_mean_absolute_error(
            true_sum,
            lambda r, e=epsilon: distributed_dp_sum(values, 1.0, e, r),
            trials=200, rng=rng,
        )
        dp_table.add_row(
            epsilon, central, distributed, distributed / true_sum * 100
        )
    dp_table.add_note("distributed noise: per-cell Gamma shares summing to "
                      "Laplace; no trusted central noise adder exists")

    # -- order statistics without revealing values ----------------------------
    from ..commons.aggregation import AggregationNode
    from ..commons.quantiles import secure_quantiles

    rng_q = random.Random(seed + 2)
    nodes = [
        AggregationNode.standalone(f"q-{i}", rng_q) for i in range(len(people))
    ]
    share_values = {
        node.name: person["sweets_share"]
        for node, person in zip(nodes, people)
    }
    quantile_table = Table(
        title="E10c: secure quantiles of sugary-spend share "
              "(masked histogram, 32 buckets)",
        columns=["quantile", "secure estimate", "true value",
                 "error <= half bucket"],
    )
    estimates, accounting = secure_quantiles(
        nodes, share_values, [0.25, 0.5, 0.75], low=0.0, high=1.0, buckets=32,
    )
    ordered = sorted(share_values.values())
    half_bucket = 1.0 / 32 / 2
    for q in (0.25, 0.5, 0.75):
        import math

        rank = max(0, math.ceil(q * len(ordered)) - 1)
        truth = ordered[rank]
        quantile_table.add_row(
            q, estimates[q], truth, abs(estimates[q] - truth) <= half_bucket + 1e-9
        )
    quantile_table.add_note(
        f"{accounting.messages} masked messages; no individual value revealed"
    )
    return [kanon_table, signal, dp_table, quantile_table]


def shape_holds(tables: list[Table]) -> bool:
    kanon, signal, dp, quantiles = tables
    if not all(quantiles.column("error <= half bucket")):
        return False
    losses = kanon.column("NCP information loss")
    loss_monotone = all(a <= b + 1e-9 for a, b in zip(losses, losses[1:]))
    all_anonymous = all(kanon.column("k-anonymous"))
    means = signal.column("mean sweets share")
    epidemiology_signal = means[0] < means[1]  # diabetics buy fewer sweets
    central = dp.column("central MAE")
    distributed = dp.column("distributed MAE")
    error_decreases = all(a >= b for a, b in zip(central, central[1:]))
    modes_match = all(
        abs(c - d) / max(c, 1e-9) < 0.5 for c, d in zip(central, distributed)
    )
    return (loss_monotone and all_anonymous and epidemiology_signal
            and error_decreases and modes_match)
