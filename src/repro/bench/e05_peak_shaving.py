"""E5 — neighborhood peak-load shaving by secure exchange.

Operationalizes: "time series at required granularity are securely
exchanged with other trusted cells in their neighborhood to achieve
consumption peak load shaving." Coordination runs over the masked-
histogram protocol, so per-household schedules never leave their
cells; the comparison is uncoordinated vs coordinated at equal energy.
"""

from __future__ import annotations

from ..apps.peak_shaving import coordinate, make_neighborhood, peak_to_average
from .tables import Table


def run(seed: int = 0, sizes: list[int] | None = None,
        rounds: int = 3) -> list[Table]:
    sizes = sizes or [6, 12, 24]
    table = Table(
        title="E5: neighborhood peak shaving (coordinated vs not)",
        columns=[
            "households", "peak before kWh", "peak after kWh",
            "peak reduction %", "PAR before", "PAR after",
            "protocol msgs", "protocol KB",
        ],
    )
    for size in sizes:
        households = make_neighborhood(size=size, seed=seed)
        result = coordinate(households, rounds=rounds)
        table.add_row(
            size,
            max(result.uncoordinated_profile),
            max(result.coordinated_profile),
            result.peak_reduction * 100,
            peak_to_average(result.uncoordinated_profile),
            peak_to_average(result.coordinated_profile),
            result.protocol_messages,
            result.protocol_bytes / 1024,
        )
    table.add_note("total energy identical before/after by construction; "
                   "schedules exchanged only as masked aggregates")
    return [table]


def shape_holds(tables: list[Table]) -> bool:
    reductions = tables[0].column("peak reduction %")
    pars_before = tables[0].column("PAR before")
    pars_after = tables[0].column("PAR after")
    return all(r > 8.0 for r in reductions) and all(
        after < before for before, after in zip(pars_before, pars_after)
    )
