"""E8 — metadata queries on embedded hardware.

Operationalizes: "a significant amount of data and metadata is likely
to be embedded in some trusted cells and may need to be queried
efficiently. While it does not seem a major issue in powerful trusted
cells (e.g., a smart phone), it appears much more challenging when
facing low-end hardware devices like secure tokens."

For each hardware profile the same metadata workload is loaded into the
embedded catalog (flash cost model + profile CPU rate) and three query
shapes are timed: an indexed point lookup, an indexed range, and a
full-scan predicate. A second table sweeps selectivity to locate the
index-vs-scan crossover on the token profile.
"""

from __future__ import annotations

from ..hardware.flash import NandFlash
from ..hardware.profiles import HOME_GATEWAY, SMART_TOKEN, SMARTPHONE, HardwareProfile
from ..store.catalog import Catalog
from ..store.query import Between, Eq, Query
from .tables import Table

PROFILES = (SMART_TOKEN, SMARTPHONE, HOME_GATEWAY)


def _loaded_catalog(profile: HardwareProfile, records: int) -> Catalog:
    flash = NandFlash(profile.flash, capacity_bytes=min(
        profile.flash_bytes, 16 * 1024 * 1024
    ))
    catalog = Catalog(flash, profile)
    documents = catalog.collection("documents")
    documents.create_hash_index("kind")
    documents.create_ordered_index("created_at")
    kinds = ["photo", "mail", "bill", "medical", "gps-trace"]
    for index in range(records):
        documents.insert(
            f"doc-{index:06d}",
            {
                "kind": kinds[index % len(kinds)],
                "created_at": index * 60,
                "size": (index * 37) % 5000,
                "keywords": f"keyword-{index % 50}",
            },
        )
    catalog.store.flush()
    return catalog


def _timed(catalog: Catalog, profile: HardwareProfile, query: Query):
    flash = catalog.store.flash
    flash.reset_counters()
    result = catalog.query(query)
    io_us = flash.elapsed_us
    cpu_us = profile.cpu_seconds(result.records_examined * 50) * 1e6
    energy_uj = flash.energy_uj + profile.cpu_energy_uj(
        result.records_examined * 50
    )
    return result, io_us + cpu_us, energy_uj


def run(seed: int = 0, records: int = 1000) -> list[Table]:
    # 1000 records keep the directory within the smart token's 64 KiB
    # RAM budget — itself a finding: the token caps the metadata set
    # it can index (the paper's "tiny RAM" challenge made concrete).
    workloads = [
        ("point (kind = bill)", Query("documents", where=Eq("kind", "bill"))),
        ("range (1h of timestamps)",
         Query("documents", where=Between("created_at", 0, 3600))),
        ("scan (size = 37)", Query("documents", where=Eq("size", 37))),
    ]
    table = Table(
        title=f"E8: metadata query latency, {records} records",
        columns=["profile", "query", "plan", "flash reads", "latency ms",
                 "energy uJ"],
    )
    for profile in PROFILES:
        catalog = _loaded_catalog(profile, records)
        for label, query in workloads:
            result, latency_us, energy_uj = _timed(catalog, profile, query)
            table.add_row(
                profile.name, label, result.plan, result.flash_reads,
                latency_us / 1000.0, energy_uj,
            )
    table.add_note("latency = flash time (profile NAND timings) + CPU at "
                   "50 abstract ops/record")

    crossover = Table(
        title="E8a: index vs scan crossover on the smart token",
        columns=["selectivity %", "index latency ms", "scan latency ms",
                 "index wins"],
    )
    catalog = _loaded_catalog(SMART_TOKEN, records)
    documents = catalog.collection("documents")
    documents.create_hash_index("keywords")
    for matching_keywords in (1, 5, 10, 25, 50):
        selectivity = matching_keywords / 50
        low, high = 0, int(records * selectivity) * 60 - 1
        _, range_latency, __ = _timed(
            catalog, SMART_TOKEN,
            Query("documents", where=Between("created_at", low, high)),
        )
        flash = catalog.store.flash
        flash.reset_counters()
        scan_result = catalog.query(
            Query("documents", where=Between("size", -1, 10**9))
        )
        scan_latency = (
            flash.elapsed_us
            + SMART_TOKEN.cpu_seconds(scan_result.records_examined * 50) * 1e6
        )
        crossover.add_row(
            selectivity * 100,
            range_latency / 1000.0,
            scan_latency / 1000.0,
            range_latency < scan_latency,
        )

    # -- ablation: compaction strategy under sustained churn --------------------
    from ..store.log_store import LogStructuredStore

    gc_table = Table(
        title="E8b: compaction strategy ablation (token flash, churn workload)",
        columns=["strategy", "GC time ms", "GC energy mJ", "block erases",
                 "wear skew"],
    )
    for strategy in ("full", "incremental"):
        flash = NandFlash(SMART_TOKEN.flash, capacity_bytes=2 * 1024 * 1024)
        store = LogStructuredStore(flash)
        gc_time_us = 0.0
        gc_energy_uj = 0.0
        for round_number in range(200):
            for key_index in range(8):
                store.put(
                    f"r{key_index}",
                    {"round": round_number, "pad": b"\x00" * 900},
                )
            if round_number % 10 == 9:
                store.flush()
                before_us, before_uj = flash.elapsed_us, flash.energy_uj
                if strategy == "full":
                    store.compact()
                else:
                    store.compact_incremental(max_victims=4)
                gc_time_us += flash.elapsed_us - before_us
                gc_energy_uj += flash.energy_uj - before_uj
        gc_table.add_row(
            strategy,
            gc_time_us / 1000.0,
            gc_energy_uj / 1000.0,
            flash.erases,
            flash.wear_skew(),
        )
    gc_table.add_note("200 rounds x 8 hot records; GC every 10 rounds")
    return [table, crossover, gc_table]


def shape_holds(tables: list[Table]) -> bool:
    table = tables[0]
    by_key = {
        (row[0], row[1]): row[4] for row in table.rows
    }  # latency ms column
    token_scan = by_key[("smart-token", "scan (size = 37)")]
    token_point = by_key[("smart-token", "point (kind = bill)")]
    gateway_scan = by_key[("home-gateway", "scan (size = 37)")]
    crossover = tables[1]
    wins = crossover.column("index wins")
    gc = tables[2]
    gc_times = dict(zip(gc.column("strategy"), gc.column("GC time ms")))
    return (
        token_point < token_scan / 2  # indexes matter on the token
        and gateway_scan < token_scan  # better hardware is faster
        and wins[0]  # selective range: index wins
        and not wins[-1]  # full-range: scan wins (no index benefit)
        and gc_times["incremental"] < gc_times["full"]  # GC pays off on churn
    )
